//! Scoped span timers, structured instant events, and the global trace
//! buffer behind the Chrome-trace exporter.
//!
//! A [`Span`] is an RAII timer: created by [`crate::span`], it records
//! a `trace_event` *complete* event (`"ph":"X"`) when dropped. When
//! tracing is disabled the constructor returns an inert span — no
//! clock read, no allocation, nothing on drop — so instrumentation
//! left in hot paths costs one relaxed atomic load.
//!
//! Events carry a per-thread ordinal as their `tid`, assigned in
//! first-use order, so nested spans on one thread render as a proper
//! flame graph in `chrome://tracing` / Perfetto while scoped workers
//! (the parallel trainer spawns fresh threads per fit) each get their
//! own row.
//!
//! The buffer is bounded: past [`MAX_EVENTS`] events new records are
//! counted but dropped, turning a forgotten long-running trace into a
//! truncated file instead of unbounded memory growth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered trace events.
pub const MAX_EVENTS: usize = 1 << 20;

/// One buffered `trace_event` record.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub cat: &'static str,
    /// `trace_event` phase: `'X'` complete, `'i'` instant.
    pub phase: char,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (complete events only).
    pub dur_us: u64,
    pub tid: u64,
    /// Pre-rendered JSON object for the `args` field, or empty.
    pub args: String,
}

pub(crate) struct TraceBuffer {
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
}

static BUFFER: Mutex<TraceBuffer> = Mutex::new(TraceBuffer {
    events: Vec::new(),
    dropped: 0,
});

/// The instant all trace timestamps are measured from: first use of
/// the tracing layer in this process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use of the
/// tracing/flight layer). Public for subsystems that timestamp their
/// own records — request tracing in `serve`, the flight recorder.
pub fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// This thread's stable small-integer trace id, assigned on first use.
pub(crate) fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

pub(crate) fn push(event: TraceEvent) {
    let mut buffer = BUFFER.lock().expect("trace buffer lock");
    if buffer.events.len() >= MAX_EVENTS {
        buffer.dropped += 1;
    } else {
        buffer.events.push(event);
    }
}

pub(crate) fn with_buffer<T>(f: impl FnOnce(&TraceBuffer) -> T) -> T {
    f(&BUFFER.lock().expect("trace buffer lock"))
}

/// Number of buffered trace events.
pub fn event_count() -> usize {
    with_buffer(|b| b.events.len())
}

/// Clears the trace buffer (tests and per-command CLI traces).
pub fn reset() {
    let mut buffer = BUFFER.lock().expect("trace buffer lock");
    buffer.events.clear();
    buffer.dropped = 0;
}

/// An RAII span timer; see the [module docs](self). Obtain via
/// [`crate::span`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct Span {
    /// `None` when tracing was disabled at construction.
    active: Option<(&'static str, &'static str, Instant)>,
}

impl Span {
    #[inline]
    pub(crate) fn start(cat: &'static str, name: &'static str) -> Span {
        Span {
            active: crate::tracing_enabled().then(|| {
                epoch(); // pin the epoch before the span's own start
                (cat, name, Instant::now())
            }),
        }
    }

    /// True if this span is recording (tracing was enabled when it was
    /// created).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((cat, name, start)) = self.active.take() {
            let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let end_us = now_us();
            push(TraceEvent {
                name,
                cat,
                phase: 'X',
                ts_us: end_us.saturating_sub(dur_us),
                dur_us,
                tid: thread_ordinal(),
                args: String::new(),
            });
        }
    }
}

/// Records a complete event (`"ph":"X"`) with explicit timing and
/// structured args. For retroactive spans whose start is only known
/// after the fact (request tracing reconstructs parse/queue/batch
/// phases from recorded instants). `ts_us` is microseconds since the
/// trace epoch ([`now_us`]); fields render only when tracing is on.
pub fn complete(
    cat: &'static str,
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    fields: &[(&str, &dyn std::fmt::Display)],
) {
    if crate::tracing_enabled() {
        let args = if fields.is_empty() {
            String::new()
        } else {
            crate::export::render_args(fields)
        };
        push(TraceEvent {
            name,
            cat,
            phase: 'X',
            ts_us,
            dur_us,
            tid: thread_ordinal(),
            args,
        });
    }
}

/// Records a complete event spanning `started ..= now`, with args.
/// Convenience over [`complete`] for callers holding an `Instant`.
pub fn complete_since(
    cat: &'static str,
    name: &'static str,
    started: Instant,
    fields: &[(&str, &dyn std::fmt::Display)],
) {
    if crate::tracing_enabled() {
        let dur_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let end_us = now_us();
        complete(cat, name, end_us.saturating_sub(dur_us), dur_us, fields);
    }
}

/// Records a structured instant event (`"ph":"i"`) with the given
/// fields, and/or prints it as one structured stderr line. The two
/// sinks are independent: tracing captures the event into the trace
/// buffer whenever enabled, `log_to_stderr` mirrors it to stderr for
/// the human watching a run (the `SPECREPRO_PIPELINE_LOG` surface).
///
/// Fields are rendered only when a sink is active, so an inert call
/// does not format or allocate.
pub fn emit(
    cat: &'static str,
    name: &'static str,
    fields: &[(&str, &dyn std::fmt::Display)],
    log_to_stderr: bool,
) {
    if crate::tracing_enabled() {
        push(TraceEvent {
            name,
            cat,
            phase: 'i',
            ts_us: now_us(),
            dur_us: 0,
            tid: thread_ordinal(),
            args: crate::export::render_args(fields),
        });
    }
    if log_to_stderr {
        use std::fmt::Write as _;
        let mut line = format!("[{cat}] {name}");
        for (key, value) in fields {
            let _ = write!(line, " {key}={value}");
        }
        eprintln!("{line}");
    }
}
