//! Declarative SLO and drift monitors evaluated over metric
//! [`Snapshot`]s.
//!
//! A [`MonitorSet`] is a list of named [`Rule`]s, each wrapping one
//! [`Condition`]:
//!
//! * [`Condition::HistQuantileAbove`] — an SLO ceiling on a histogram
//!   quantile (p99 request latency), read from the log₂ buckets;
//! * [`Condition::RatioAbove`] — a rate ceiling on the ratio of two
//!   counters **over the deltas since the previous evaluation**
//!   (429s per request), so an old burst does not alert forever;
//! * [`Condition::FloatGaugeRegression`] — drift detection: the gauge
//!   value against a rolling baseline of its own recent history
//!   (refit holdout MAE regressing the way PAPER.md §VI's
//!   cross-generation transfer decay predicts).
//!
//! Evaluation is pull-based: callers (the serve `/healthz` handler,
//! stream refit tests) call [`MonitorSet::evaluate`] with a fresh
//! snapshot whenever they want a verdict. Every firing rule returns
//! an [`Alert`] and leaves three write-only telemetry footprints: the
//! `obs.monitor_fires` counter, a `monitor.fired` instant event, and
//! a [`FlightKind::MonitorFired`] flight-recorder record — so a 3 a.m.
//! page comes with its own post-mortem buffer already annotated.
//!
//! Like all of obskit, monitors are observers: nothing they compute
//! feeds back into training, prediction, or serving decisions.

use crate::metrics::{self, HistSnapshot, Metric, Snapshot};
use crate::ring::{self, FlightKind};
use crate::span;
use std::collections::VecDeque;

/// One monitored predicate over a metric snapshot.
#[derive(Debug, Clone)]
pub enum Condition {
    /// Fires when a histogram quantile exceeds `ceiling`. The
    /// quantile is resolved to a log₂ bucket upper bound, so the
    /// observed value is conservative (an upper bound on the true
    /// quantile within one power of two).
    HistQuantileAbove {
        /// Histogram export name (e.g. `"serve.request_ns"`).
        hist: &'static str,
        /// Quantile in `(0, 1]`, e.g. `0.99`.
        quantile: f64,
        /// Ceiling in the histogram's native unit.
        ceiling: u64,
        /// Minimum observations before the rule can fire.
        min_count: u64,
    },
    /// Fires when `numerator_delta / denominator_delta` since the
    /// previous evaluation exceeds `max_ratio`.
    RatioAbove {
        /// Numerator counter export name (e.g. `"serve.rejected_busy"`).
        numerator: &'static str,
        /// Denominator counter export name (e.g. `"serve.requests"`).
        denominator: &'static str,
        /// Ratio ceiling in `[0, 1]`-ish space (not clamped).
        max_ratio: f64,
        /// Minimum denominator delta before the rule can fire.
        min_denominator: u64,
    },
    /// Fires when a float gauge exceeds the mean of its own rolling
    /// baseline by more than `rel_margin` (0.5 = 50% worse). Each
    /// evaluation appends the current value to the baseline after
    /// comparing, so the baseline tracks slow change and alerts on
    /// abrupt regression.
    FloatGaugeRegression {
        /// Float-gauge export name (e.g. `"stream.refit_holdout_mae"`).
        gauge: &'static str,
        /// Rolling-baseline length (older samples fall off).
        window: usize,
        /// Minimum baseline samples before the rule can fire.
        min_samples: usize,
        /// Relative margin over the baseline mean.
        rel_margin: f64,
    },
}

/// A named monitor rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name, surfaced in alerts, `/healthz`, and the
    /// flight recorder.
    pub name: &'static str,
    /// The predicate.
    pub condition: Condition,
}

/// One firing rule from an evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The rule's name.
    pub rule: &'static str,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The effective threshold at evaluation time.
    pub threshold: f64,
}

/// Per-rule evaluation state (counter deltas, rolling baselines).
#[derive(Debug, Clone, Default)]
struct RuleState {
    last_numerator: u64,
    last_denominator: u64,
    baseline: VecDeque<f64>,
}

/// A set of rules plus their evaluation state.
#[derive(Debug, Default)]
pub struct MonitorSet {
    rules: Vec<(Rule, RuleState)>,
}

/// The value at `quantile` of a histogram snapshot, as the inclusive
/// upper bound of the bucket containing that rank; `None` for empty
/// histograms.
pub fn hist_quantile(hist: &HistSnapshot, quantile: f64) -> Option<u64> {
    if hist.count == 0 {
        return None;
    }
    let rank = ((quantile * hist.count as f64).ceil() as u64).clamp(1, hist.count);
    let mut seen = 0;
    for &(bound, count) in &hist.buckets {
        seen += count;
        if seen >= rank {
            return Some(bound);
        }
    }
    hist.buckets.last().map(|&(bound, _)| bound)
}

impl MonitorSet {
    /// An empty set: evaluation is a no-op returning no alerts.
    pub fn new() -> MonitorSet {
        MonitorSet::default()
    }

    /// A set with the given rules.
    pub fn with_rules(rules: Vec<Rule>) -> MonitorSet {
        MonitorSet {
            rules: rules
                .into_iter()
                .map(|r| (r, RuleState::default()))
                .collect(),
        }
    }

    /// The default serving SLO rules: p99 request latency under
    /// `p99_ceiling_ms`, and 429s under 50% of requests between
    /// evaluations.
    pub fn standard_serve(p99_ceiling_ms: u64) -> MonitorSet {
        MonitorSet::with_rules(vec![
            Rule {
                name: "serve-p99-request-latency",
                condition: Condition::HistQuantileAbove {
                    hist: "serve.request_ns",
                    quantile: 0.99,
                    ceiling: p99_ceiling_ms.saturating_mul(1_000_000),
                    min_count: 100,
                },
            },
            Rule {
                name: "serve-429-rate",
                condition: Condition::RatioAbove {
                    numerator: "serve.rejected_busy",
                    denominator: "serve.requests",
                    max_ratio: 0.5,
                    min_denominator: 100,
                },
            },
        ])
    }

    /// The default drift rule over stream refit holdout MAE: fires
    /// when a window's MAE exceeds the rolling baseline mean by
    /// `rel_margin`.
    pub fn refit_drift(window: usize, min_samples: usize, rel_margin: f64) -> MonitorSet {
        MonitorSet::with_rules(vec![Rule {
            name: "stream-refit-mae-drift",
            condition: Condition::FloatGaugeRegression {
                gauge: "stream.refit_holdout_mae",
                window,
                min_samples,
                rel_margin,
            },
        }])
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against `snap`, returning the firing
    /// alerts. Each alert also increments `obs.monitor_fires`, emits
    /// a `monitor.fired` instant event, and records a flight-recorder
    /// entry.
    pub fn evaluate(&mut self, snap: &Snapshot) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for (index, (rule, state)) in self.rules.iter_mut().enumerate() {
            let fired = match &rule.condition {
                Condition::HistQuantileAbove {
                    hist,
                    quantile,
                    ceiling,
                    min_count,
                } => snap
                    .hists
                    .iter()
                    .find(|h| h.name == *hist)
                    .filter(|h| h.count >= *min_count)
                    .and_then(|h| hist_quantile(h, *quantile))
                    .filter(|&q| q > *ceiling)
                    .map(|q| Alert {
                        rule: rule.name,
                        value: q as f64,
                        threshold: *ceiling as f64,
                    }),
                Condition::RatioAbove {
                    numerator,
                    denominator,
                    max_ratio,
                    min_denominator,
                } => {
                    let num = snap.get(numerator).unwrap_or(0);
                    let den = snap.get(denominator).unwrap_or(0);
                    let num_delta = num.saturating_sub(state.last_numerator);
                    let den_delta = den.saturating_sub(state.last_denominator);
                    state.last_numerator = num;
                    state.last_denominator = den;
                    if den_delta >= *min_denominator {
                        let ratio = num_delta as f64 / den_delta as f64;
                        (ratio > *max_ratio).then_some(Alert {
                            rule: rule.name,
                            value: ratio,
                            threshold: *max_ratio,
                        })
                    } else {
                        None
                    }
                }
                Condition::FloatGaugeRegression {
                    gauge,
                    window,
                    min_samples,
                    rel_margin,
                } => {
                    let alert = snap.get_f64(gauge).filter(|v| v.is_finite()).and_then(|v| {
                        let n = state.baseline.len();
                        if n < *min_samples || n == 0 {
                            None
                        } else {
                            let mean = state.baseline.iter().sum::<f64>() / n as f64;
                            let threshold = mean * (1.0 + rel_margin);
                            (mean > 0.0 && v > threshold).then_some(Alert {
                                rule: rule.name,
                                value: v,
                                threshold,
                            })
                        }
                    });
                    if let Some(v) = snap.get_f64(gauge).filter(|v| v.is_finite()) {
                        state.baseline.push_back(v);
                        while state.baseline.len() > (*window).max(1) {
                            state.baseline.pop_front();
                        }
                    }
                    alert
                }
            };
            if let Some(alert) = fired {
                metrics::incr(Metric::ObsMonitorFires);
                ring::record(
                    FlightKind::MonitorFired,
                    index as u64,
                    alert.value.to_bits(),
                    alert.threshold.to_bits(),
                );
                span::emit(
                    "monitor",
                    "monitor.fired",
                    &[
                        ("rule", &alert.rule),
                        ("value", &alert.value),
                        ("threshold", &alert.threshold),
                    ],
                    false,
                );
                alerts.push(alert);
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSnapshot;

    fn hist(name: &'static str, buckets: Vec<(u64, u64)>) -> HistSnapshot {
        let count = buckets.iter().map(|&(_, c)| c).sum();
        HistSnapshot {
            name,
            count,
            sum: 0,
            buckets,
        }
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let h = hist("h", vec![(1, 50), (3, 40), (1023, 10)]);
        assert_eq!(hist_quantile(&h, 0.5), Some(1));
        assert_eq!(hist_quantile(&h, 0.90), Some(3));
        assert_eq!(hist_quantile(&h, 0.99), Some(1023));
        assert_eq!(hist_quantile(&h, 1.0), Some(1023));
        assert_eq!(hist_quantile(&hist("h", vec![]), 0.99), None);
    }

    #[test]
    fn p99_rule_fires_only_past_ceiling_and_min_count() {
        let mut set = MonitorSet::with_rules(vec![Rule {
            name: "p99",
            condition: Condition::HistQuantileAbove {
                hist: "serve.request_ns",
                quantile: 0.99,
                ceiling: 1000,
                min_count: 10,
            },
        }]);
        let mut snap = Snapshot {
            hists: vec![hist("serve.request_ns", vec![(511, 98), (4095, 2)])],
            ..Snapshot::default()
        };
        let alerts = set.evaluate(&snap);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "p99");
        assert_eq!(alerts[0].value, 4095.0);
        // Under the count floor: silent.
        snap.hists = vec![hist("serve.request_ns", vec![(4095, 5)])];
        assert!(set.evaluate(&snap).is_empty());
        // Under the ceiling: silent.
        snap.hists = vec![hist("serve.request_ns", vec![(511, 100)])];
        assert!(set.evaluate(&snap).is_empty());
    }

    #[test]
    fn ratio_rule_uses_deltas_between_evaluations() {
        let mut set = MonitorSet::with_rules(vec![Rule {
            name: "429s",
            condition: Condition::RatioAbove {
                numerator: "serve.rejected_busy",
                denominator: "serve.requests",
                max_ratio: 0.5,
                min_denominator: 100,
            },
        }]);
        let mut snap = Snapshot {
            counters: vec![("serve.rejected_busy", 90), ("serve.requests", 100)],
            ..Snapshot::default()
        };
        // First evaluation: 90/100 fires.
        assert_eq!(set.evaluate(&snap).len(), 1);
        // No new traffic since: deltas are 0/0, silent even though the
        // absolute ratio is still high.
        assert!(set.evaluate(&snap).is_empty());
        // New healthy traffic: 10 rejections in 1000 requests.
        snap.counters = vec![("serve.rejected_busy", 100), ("serve.requests", 1100)];
        assert!(set.evaluate(&snap).is_empty());
    }

    #[test]
    fn drift_rule_fires_on_regression_over_rolling_baseline() {
        let mut set = MonitorSet::refit_drift(8, 3, 0.5);
        let mut snap = Snapshot {
            float_gauges: vec![("stream.refit_holdout_mae", 0.0)],
            ..Snapshot::default()
        };
        for mae in [0.050, 0.048, 0.052, 0.049] {
            snap.float_gauges = vec![("stream.refit_holdout_mae", mae)];
            assert!(set.evaluate(&snap).is_empty(), "baseline MAE {mae} fired");
        }
        // The paper's cross-generation decay: 0.049 → 0.123.
        snap.float_gauges = vec![("stream.refit_holdout_mae", 0.123)];
        let alerts = set.evaluate(&snap);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "stream-refit-mae-drift");
        assert!(alerts[0].value > alerts[0].threshold);
    }

    #[test]
    fn drift_rule_needs_min_samples() {
        let mut set = MonitorSet::refit_drift(8, 3, 0.5);
        let mut snap = Snapshot {
            float_gauges: vec![("stream.refit_holdout_mae", 0.05)],
            ..Snapshot::default()
        };
        assert!(set.evaluate(&snap).is_empty());
        snap.float_gauges = vec![("stream.refit_holdout_mae", 9.0)];
        // Only one baseline sample — below min_samples, silent.
        assert!(set.evaluate(&snap).is_empty());
    }
}
