//! The flight recorder: a fixed-size lock-free ring of recent
//! structured events, cheap enough to leave on in a serving process
//! and dumped only when something goes wrong.
//!
//! # Layout
//!
//! The ring is [`SEGMENTS`] independent segments of
//! [`SLOTS_PER_SEGMENT`] slots each, all statically allocated — there
//! is **no allocation after init** and no lock anywhere on the write
//! path. A writing thread picks its segment by thread ordinal, so
//! under steady load each server thread mostly owns a segment and the
//! only cross-thread traffic is the global ordering counter.
//!
//! # Write protocol (per-slot seqlock)
//!
//! Every slot carries a sequence word: even = stable, odd = a writer
//! is mid-record. A writer claims the next slot in its segment with a
//! single CAS (even → odd), stores the payload words, and releases
//! with an even store. If the CAS loses (another thread racing the
//! same segment) the writer advances to the next slot; after a few
//! failed claims the record is counted as dropped rather than spun
//! for — the recorder sheds, it never blocks.
//!
//! Readers ([`snapshot_events`]) load the sequence, copy the payload,
//! and re-check the sequence: any record whose sequence changed or is
//! odd is skipped, so a dump taken mid-flight can miss an in-progress
//! record but can never observe a torn one. Records carry a global
//! ordering ticket, so a dump is sorted into one coherent timeline
//! even though segments wrap independently.
//!
//! Everything here is safe Rust over `AtomicU64` cells — torn-record
//! protection comes from the seqlock discipline, not from `unsafe`.

use crate::metrics::{self, Metric};
use crate::span;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of independent ring segments (writer threads hash onto
/// these by thread ordinal).
pub const SEGMENTS: usize = 8;

/// Slots per segment; each slot holds one fixed-width record.
pub const SLOTS_PER_SEGMENT: usize = 256;

/// Total record capacity of the recorder.
pub const CAPACITY: usize = SEGMENTS * SLOTS_PER_SEGMENT;

/// How many claim attempts a writer makes before counting the record
/// as dropped.
const CLAIM_ATTEMPTS: usize = 8;

/// The JSON dump schema version (bumped on layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// What one flight record describes. Discriminants start at 1 so a
/// zeroed slot is recognizably empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightKind {
    /// A request entered the coalescer: `a`=request id, `b`=rows,
    /// `c`=request kind.
    RequestSubmitted = 1,
    /// A request's reply was resolved: `a`=request id, `b`=rows,
    /// `c`=wait µs.
    RequestResolved = 2,
    /// The coalescer flushed a batch: `a`=jobs, `b`=total rows,
    /// `c`=engine calls.
    BatchFlushed = 3,
    /// A request was shed with 429: `a`=request id, `b`=rows.
    LoadShed = 4,
    /// A model swap was applied: `a`=version fingerprint prefix.
    SwapApplied = 5,
    /// A model swap failed: `a`=HTTP status.
    SwapFailed = 6,
    /// An SLO/drift monitor rule fired: `a`=rule index,
    /// `b`=observed value bits, `c`=threshold bits.
    MonitorFired = 7,
    /// A stream refit window completed: `a`=window start row,
    /// `b`=window end row, `c`=holdout MAE bits.
    RefitWindow = 8,
    /// The recorder itself was dumped: `a`=dropped count at dump.
    Dump = 9,
    /// Synthetic record used by tests and benches.
    Probe = 10,
}

impl FlightKind {
    /// Stable dump name.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::RequestSubmitted => "request_submitted",
            FlightKind::RequestResolved => "request_resolved",
            FlightKind::BatchFlushed => "batch_flushed",
            FlightKind::LoadShed => "load_shed",
            FlightKind::SwapApplied => "swap_applied",
            FlightKind::SwapFailed => "swap_failed",
            FlightKind::MonitorFired => "monitor_fired",
            FlightKind::RefitWindow => "refit_window",
            FlightKind::Dump => "dump",
            FlightKind::Probe => "probe",
        }
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        Some(match code {
            1 => FlightKind::RequestSubmitted,
            2 => FlightKind::RequestResolved,
            3 => FlightKind::BatchFlushed,
            4 => FlightKind::LoadShed,
            5 => FlightKind::SwapApplied,
            6 => FlightKind::SwapFailed,
            7 => FlightKind::MonitorFired,
            8 => FlightKind::RefitWindow,
            9 => FlightKind::Dump,
            10 => FlightKind::Probe,
            _ => return None,
        })
    }
}

struct Slot {
    /// Seqlock word: 0 = never written, odd = write in flight, other
    /// even = stable record.
    seq: AtomicU64,
    /// Global ordering ticket (1-based).
    ord: AtomicU64,
    kind: AtomicU64,
    ts_us: AtomicU64,
    tid: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

struct Segment {
    cursor: AtomicU64,
    dropped: AtomicU64,
    slots: [Slot; SLOTS_PER_SEGMENT],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    ord: AtomicU64::new(0),
    kind: AtomicU64::new(0),
    ts_us: AtomicU64::new(0),
    tid: AtomicU64::new(0),
    a: AtomicU64::new(0),
    b: AtomicU64::new(0),
    c: AtomicU64::new(0),
};

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SEGMENT: Segment = Segment {
    cursor: AtomicU64::new(0),
    dropped: AtomicU64::new(0),
    slots: [EMPTY_SLOT; SLOTS_PER_SEGMENT],
};

static RING: [Segment; SEGMENTS] = [EMPTY_SEGMENT; SEGMENTS];

/// Global ordering tickets (1-based so `ord == 0` marks empty slots).
static NEXT_ORD: AtomicU64 = AtomicU64::new(1);

/// Records one event into the ring. One relaxed load and out when the
/// recorder is disabled; never blocks, never allocates.
#[inline]
pub fn record(kind: FlightKind, a: u64, b: u64, c: u64) {
    if crate::ring_enabled() {
        record_slow(kind, a, b, c);
    }
}

#[inline(never)]
fn record_slow(kind: FlightKind, a: u64, b: u64, c: u64) {
    let tid = span::thread_ordinal();
    let segment = &RING[(tid as usize) % SEGMENTS];
    let ord = NEXT_ORD.fetch_add(1, Ordering::Relaxed);
    let ts_us = span::now_us();
    for _ in 0..CLAIM_ATTEMPTS {
        let n = segment.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &segment.slots[(n as usize) % SLOTS_PER_SEGMENT];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            continue; // another writer mid-record; take the next slot
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        slot.ord.store(ord, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.tid.store(tid, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
        return;
    }
    segment.dropped.fetch_add(1, Ordering::Relaxed);
}

/// One stable record read out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global ordering ticket (ascending = chronological claim order).
    pub ord: u64,
    pub kind: FlightKind,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Recording thread's trace ordinal.
    pub tid: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

/// Copies every stable record out of the ring, sorted by ordering
/// ticket, along with the total dropped-record count. Records being
/// written while the snapshot runs are skipped, never torn.
pub fn snapshot_events() -> (Vec<FlightEvent>, u64) {
    let mut events = Vec::with_capacity(CAPACITY);
    let mut dropped = 0;
    for segment in &RING {
        dropped += segment.dropped.load(Ordering::Relaxed);
        for slot in &segment.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let record = (
                slot.ord.load(Ordering::Relaxed),
                slot.kind.load(Ordering::Relaxed),
                slot.ts_us.load(Ordering::Relaxed),
                slot.tid.load(Ordering::Relaxed),
                slot.a.load(Ordering::Relaxed),
                slot.b.load(Ordering::Relaxed),
                slot.c.load(Ordering::Relaxed),
            );
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten mid-copy
            }
            let (ord, kind, ts_us, tid, a, b, c) = record;
            let Some(kind) = FlightKind::from_code(kind) else {
                continue;
            };
            events.push(FlightEvent {
                ord,
                kind,
                ts_us,
                tid,
                a,
                b,
                c,
            });
        }
    }
    events.sort_unstable_by_key(|e| e.ord);
    (events, dropped)
}

/// The ring contents as a JSON document:
/// `{"obs": {...}, "capacity": N, "dropped": D, "events": [...]}`.
pub fn dump_json() -> String {
    use std::fmt::Write as _;
    let (events, dropped) = snapshot_events();
    let mut out = String::from("{\"obs\":");
    out.push_str(&crate::export::export_meta(SCHEMA_VERSION));
    let _ = write!(
        out,
        ",\"capacity\":{CAPACITY},\"segments\":{SEGMENTS},\"dropped\":{dropped},\"events\":["
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ord\":{},\"kind\":{},\"ts_us\":{},\"tid\":{},\"a\":{},\"b\":{},\"c\":{}}}",
            e.ord,
            crate::export::json_string(e.kind.name()),
            e.ts_us,
            e.tid,
            e.a,
            e.b,
            e.c
        );
    }
    out.push_str("]}");
    out
}

/// Writes [`dump_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_dump(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, dump_json() + "\n")
}

/// Where automatic dumps land: `SPECREPRO_FLIGHT_OUT` if set, else
/// `specrepro-flight.json` in the system temp directory.
pub fn autodump_path() -> PathBuf {
    match std::env::var("SPECREPRO_FLIGHT_OUT") {
        Ok(path) if !path.is_empty() => PathBuf::from(path),
        _ => std::env::temp_dir().join("specrepro-flight.json"),
    }
}

/// Minimum spacing between automatic dumps.
const AUTODUMP_MIN_INTERVAL_US: u64 = 5_000_000;

/// Dumps the ring to [`autodump_path`] in response to a fault
/// (load-shed burst, swap failure), rate-limited to one dump per
/// five seconds so a sustained storm produces one post-mortem file,
/// not disk churn. Returns the path when a dump was written.
pub fn autodump(reason: &str) -> Option<PathBuf> {
    if !crate::ring_enabled() {
        return None;
    }
    static LAST_DUMP_US: AtomicU64 = AtomicU64::new(0);
    // now_us() is 0 only in the first microsecond of the epoch; +1
    // keeps "never dumped" (0) distinguishable.
    let now = span::now_us() + 1;
    let last = LAST_DUMP_US.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < AUTODUMP_MIN_INTERVAL_US {
        return None;
    }
    if LAST_DUMP_US
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return None; // another thread claimed this dump window
    }
    let (_, dropped) = snapshot_events();
    record(FlightKind::Dump, dropped, 0, 0);
    let path = autodump_path();
    match write_dump(&path) {
        Ok(()) => {
            metrics::incr(Metric::ObsFlightDumps);
            span::emit(
                "obs",
                "flight.autodump",
                &[("reason", &reason), ("path", &path.display())],
                crate::log_env_enabled(),
            );
            Some(path)
        }
        Err(_) => None, // best-effort: telemetry must not take the server down
    }
}

/// Clears every slot and counter (tests and per-command CLI dumps).
pub fn reset() {
    for segment in &RING {
        segment.cursor.store(0, Ordering::Relaxed);
        segment.dropped.store(0, Ordering::Relaxed);
        for slot in &segment.slots {
            slot.seq.store(0, Ordering::Relaxed);
            slot.ord.store(0, Ordering::Relaxed);
        }
    }
    NEXT_ORD.store(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global ring state.
    static RING_TEST: std::sync::Mutex<()> = std::sync::Mutex::new(());

    struct Enabled {
        _guard: std::sync::MutexGuard<'static, ()>,
    }

    impl Enabled {
        fn lock() -> Enabled {
            let guard = RING_TEST.lock().unwrap_or_else(|e| e.into_inner());
            reset();
            crate::set_ring_enabled(true);
            Enabled { _guard: guard }
        }
    }

    impl Drop for Enabled {
        fn drop(&mut self) {
            crate::set_ring_enabled(false);
            reset();
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let _guard = RING_TEST.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        crate::set_ring_enabled(false);
        record(FlightKind::Probe, 1, 2, 3);
        let (events, dropped) = snapshot_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn records_round_trip_with_payload() {
        let _guard = Enabled::lock();
        record(FlightKind::LoadShed, 42, 4096, 7);
        let (events, _) = snapshot_events();
        let e = events
            .iter()
            .find(|e| e.kind == FlightKind::LoadShed)
            .expect("recorded event present");
        assert_eq!((e.a, e.b, e.c), (42, 4096, 7));
        assert!(e.ord > 0);
    }

    #[test]
    fn single_thread_wraparound_keeps_most_recent_in_order() {
        let _guard = Enabled::lock();
        let total = SLOTS_PER_SEGMENT * 3;
        for i in 0..total {
            record(FlightKind::Probe, i as u64, 0, 0);
        }
        let (events, dropped) = snapshot_events();
        assert_eq!(dropped, 0);
        // One thread fills exactly one segment: the dump is that
        // segment's worth of most-recent records, in order.
        assert_eq!(events.len(), SLOTS_PER_SEGMENT);
        let first = (total - SLOTS_PER_SEGMENT) as u64;
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.a, first + i as u64);
        }
    }

    #[test]
    fn dump_json_is_well_formed() {
        let _guard = Enabled::lock();
        record(FlightKind::SwapFailed, 409, 0, 0);
        let dump = dump_json();
        assert!(dump.starts_with("{\"obs\":{"));
        assert!(dump.contains("\"schema_version\""));
        assert!(dump.contains("\"kind\":\"swap_failed\""));
        assert!(dump.contains(&format!("\"capacity\":{CAPACITY}")));
    }
}
