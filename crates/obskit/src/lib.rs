//! `obskit` — zero-overhead tracing, metrics, and profiling hooks for
//! the SPEC characterization workspace.
//!
//! The source paper's whole method is measurement; this crate makes the
//! *modeling stack itself* measurable. Three layers, all gated on one
//! relaxed atomic load so that disabled telemetry compiles to (nearly)
//! nothing:
//!
//! * **Metrics** ([`metrics`]): a closed, fixed-slot registry of
//!   lock-free counters, gauges, and log₂-bucketed histograms — nodes
//!   expanded, SDR split evaluations, cache hits, bytes read, PMU
//!   rotations, and so on.
//! * **Spans** ([`span`], [`crate::span()`]): RAII scope timers that
//!   record Chrome `trace_event` complete events — per-phase trainer
//!   timing (grow/prune/smooth-fold), batch-kernel timing, pipeline
//!   stage timing.
//! * **Exporters** ([`export`]): a JSON metrics dump and a Chrome-trace
//!   document loadable by `chrome://tracing` / Perfetto, plus the
//!   structured stderr event stream that replaced the pipeline's ad-hoc
//!   `eprintln!` logging.
//!
//! # Enabling telemetry
//!
//! Everything is **off by default**. Entry points opt in either
//! programmatically ([`set_enabled`]) or through the environment via
//! [`ObsSession::from_env`], which every bench bin and the `specrepro`
//! CLI call at startup:
//!
//! ```text
//! SPECREPRO_TRACE_OUT=trace.json    # enable tracing+metrics, write a Chrome trace on exit
//! SPECREPRO_METRICS_OUT=metrics.json# enable metrics, write the JSON dump on exit
//! SPECREPRO_FLIGHT_OUT=flight.json  # enable the flight recorder, write its dump on exit
//! SPECREPRO_OBS=1                   # enable every layer without writing files
//! ```
//!
//! # The zero-overhead contract
//!
//! Instrumented hot paths pay exactly one `Ordering::Relaxed` load of
//! [`STATE`] when telemetry is disabled — no clock reads, no
//! allocation, no locks, no formatting. Instrumentation sits at
//! phase/batch/artifact granularity (never per row or per threshold),
//! so even fully enabled telemetry stays under a percent on the 50k
//! fit and 60k predict benches (`results/BENCH_obskit.json`).
//!
//! # Determinism
//!
//! Telemetry is strictly write-only with respect to the computation:
//! no metric, span, or clock value feeds back into trained trees,
//! predictions, or artifact fingerprints. `testkit`'s bit-identity
//! suite fits and fingerprints with telemetry on and off and asserts
//! byte equality.
//!
//! # Examples
//!
//! ```
//! obskit::set_enabled(true, true);
//! {
//!     let _span = obskit::span("demo", "outer");
//!     obskit::metrics::incr(obskit::metrics::Metric::TrainerFits);
//! }
//! let trace = obskit::export::trace_json();
//! assert!(trace.contains("\"outer\""));
//! obskit::set_enabled(false, false);
//! obskit::metrics::reset();
//! obskit::span::reset();
//! ```

pub mod export;
pub mod metrics;
pub mod monitor;
pub mod prom;
pub mod ring;
pub mod span;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};

/// Bit in [`STATE`]: the metric registry accumulates.
const METRICS: u8 = 1 << 0;
/// Bit in [`STATE`]: spans and instant events are buffered.
const TRACING: u8 = 1 << 1;
/// Bit in [`STATE`]: the flight-recorder ring captures events.
const RING: u8 = 1 << 2;

/// The single global enabled word. Every instrumentation macro/function
/// begins with one relaxed load of this — the entirety of the disabled
/// cost.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True if the metric registry is accumulating.
#[inline]
pub fn metrics_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & METRICS != 0
}

/// True if spans and events are being buffered for trace export.
#[inline]
pub fn tracing_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & TRACING != 0
}

/// True if the flight-recorder ring is capturing events.
#[inline]
pub fn ring_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & RING != 0
}

/// Turns the metrics and tracing layers on or off, globally. The
/// flight-recorder bit is left untouched; see [`set_ring_enabled`].
pub fn set_enabled(metrics: bool, tracing: bool) {
    let mut state = STATE.load(Ordering::Relaxed) & RING;
    if metrics {
        state |= METRICS;
    }
    if tracing {
        state |= TRACING;
    }
    STATE.store(state, Ordering::Relaxed);
}

/// Turns the flight-recorder ring on or off, independently of the
/// metrics/tracing layers (it is cheap enough to leave on in serving
/// processes while the trace buffer stays off).
pub fn set_ring_enabled(enabled: bool) {
    if enabled {
        STATE.fetch_or(RING, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!RING, Ordering::Relaxed);
    }
}

/// Starts a scope timer recording a Chrome-trace complete event when
/// dropped; inert (one relaxed load, nothing else) while tracing is
/// disabled. `cat` groups related spans in trace viewers
/// (`"trainer"`, `"engine"`, `"pipeline"`); `name` is the span label.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> span::Span {
    span::Span::start(cat, name)
}

/// Records a structured instant event; see [`span::emit`].
#[inline]
pub fn emit(
    cat: &'static str,
    name: &'static str,
    fields: &[(&str, &dyn std::fmt::Display)],
    log_to_stderr: bool,
) {
    span::emit(cat, name, fields, log_to_stderr);
}

/// Whether structured events should be mirrored to stderr, from the
/// environment: `SPECREPRO_OBS_LOG`, falling back to the legacy
/// `SPECREPRO_PIPELINE_LOG` alias. Matching the pipeline's historical
/// behavior, logging defaults **on** and is silenced by `0` / `off`.
pub fn log_env_enabled() -> bool {
    let value =
        std::env::var("SPECREPRO_OBS_LOG").or_else(|_| std::env::var("SPECREPRO_PIPELINE_LOG"));
    !matches!(value.as_deref(), Ok("0") | Ok("off"))
}

fn env_path(key: &str) -> Option<PathBuf> {
    match std::env::var(key) {
        Ok(path) if !path.is_empty() => Some(PathBuf::from(path)),
        _ => None,
    }
}

/// An environment-driven observability session: enables telemetry
/// according to `SPECREPRO_TRACE_OUT` / `SPECREPRO_METRICS_OUT` /
/// `SPECREPRO_OBS` at construction and writes the requested export
/// files when finished (or dropped). With none of the variables set it
/// is fully inert, so every bin can hold one unconditionally:
///
/// ```no_run
/// let _obs = obskit::ObsSession::from_env(); // first line of main
/// // ... the program; exports written when `_obs` drops ...
/// ```
#[must_use = "the session writes its export files when dropped"]
pub struct ObsSession {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
}

impl ObsSession {
    /// Reads the environment and enables the requested layers:
    /// `SPECREPRO_TRACE_OUT=<path>` enables tracing and metrics and
    /// writes the Chrome trace there on completion;
    /// `SPECREPRO_METRICS_OUT=<path>` enables metrics and writes the
    /// JSON dump; `SPECREPRO_FLIGHT_OUT=<path>` enables the flight
    /// recorder and writes its dump; `SPECREPRO_OBS=1` enables every
    /// layer without writing files.
    pub fn from_env() -> ObsSession {
        let trace_out = env_path("SPECREPRO_TRACE_OUT");
        let metrics_out = env_path("SPECREPRO_METRICS_OUT");
        let flight_out = env_path("SPECREPRO_FLIGHT_OUT");
        let force = matches!(
            std::env::var("SPECREPRO_OBS").as_deref(),
            Ok("1") | Ok("on")
        );
        let tracing = trace_out.is_some() || force;
        let metrics = metrics_out.is_some() || tracing;
        if metrics || tracing {
            set_enabled(metrics, tracing);
        }
        if flight_out.is_some() || force {
            set_ring_enabled(true);
        }
        ObsSession {
            trace_out,
            metrics_out,
            flight_out,
        }
    }

    /// Writes the requested export files now and consumes the session.
    /// Returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure (remaining files are still
    /// attempted on drop-free paths only; callers treating telemetry as
    /// best-effort can ignore the error).
    pub fn finish(mut self) -> std::io::Result<Vec<PathBuf>> {
        self.write_outputs()
    }

    fn write_outputs(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some(path) = self.trace_out.take() {
            export::write_trace(&path)?;
            eprintln!(
                "[obskit] wrote trace ({} events) to {}",
                span::event_count(),
                path.display()
            );
            written.push(path);
        }
        if let Some(path) = self.metrics_out.take() {
            export::write_metrics(&path)?;
            eprintln!("[obskit] wrote metrics to {}", path.display());
            written.push(path);
        }
        if let Some(path) = self.flight_out.take() {
            ring::write_dump(&path)?;
            eprintln!("[obskit] wrote flight dump to {}", path.display());
            written.push(path);
        }
        Ok(written)
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // Best-effort: a failing telemetry write must never take the
        // program down with it.
        let _ = self.write_outputs();
    }
}
