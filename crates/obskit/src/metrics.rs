//! The global metric registry: fixed-slot lock-free counters, gauges,
//! and log-scaled histograms.
//!
//! The registry is a closed schema, mirroring how the workspace treats
//! PMU events ([`perfcounters::EventId`] style): every metric the
//! instrumented crates emit is a variant of [`Metric`] or [`Hist`], and
//! the backing storage is a static array of `AtomicU64` indexed by the
//! variant. That buys three things over a name-keyed map:
//!
//! * **No registration, no hashing, no locking.** A counter increment
//!   compiles to one relaxed load (the enabled check) plus one relaxed
//!   `fetch_add` — and to *only* the load when telemetry is disabled.
//! * **A complete export for free.** Dumping all metrics is a scan of
//!   two fixed arrays; there is no "forgot to register" failure mode.
//! * **No allocation anywhere on the hot path**, so instrumented code
//!   inside scoped-thread training loops stays allocation-free.
//!
//! All updates use `Ordering::Relaxed`: metrics are monotone telemetry,
//! not synchronization, and a snapshot taken while workers run is
//! allowed to be mid-flight. Snapshots taken after threads join (the
//! only place exports happen) see every update because thread join
//! itself synchronizes.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a [`Metric`] slot holds, which decides how exporters render it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// Last-written (or maximum) value.
    Gauge,
    /// Last-written `f64`, stored as its IEEE-754 bit pattern so the
    /// backing cell stays a plain `AtomicU64`. Written via
    /// [`gauge_set_f64`], read via [`value_f64`].
    FloatGauge,
}

macro_rules! define_metrics {
    ($($variant:ident, $name:literal, $kind:ident;)+) => {
        /// Every scalar metric the workspace emits. Names are dotted
        /// `layer.metric` strings, stable across releases — exporters,
        /// the CLI, and CI smoke checks key on them.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $(#[doc = $name] $variant,)+
        }

        /// Number of scalar metric slots.
        pub const N_METRICS: usize = [$(Metric::$variant),+].len();

        impl Metric {
            /// All metrics, in declaration (= export) order.
            pub const ALL: [Metric; N_METRICS] = [$(Metric::$variant),+];

            /// The stable dotted export name.
            pub fn name(self) -> &'static str {
                match self { $(Metric::$variant => $name,)+ }
            }

            /// Counter or gauge.
            pub fn kind(self) -> Kind {
                match self { $(Metric::$variant => Kind::$kind,)+ }
            }
        }
    };
}

define_metrics! {
    // M5' trainer.
    TrainerFits, "trainer.fits", Counter;
    TrainerNodesExpanded, "trainer.nodes_expanded", Counter;
    TrainerSplitEvaluations, "trainer.split_evaluations", Counter;
    TrainerAttributeEliminations, "trainer.attribute_eliminations", Counter;
    TrainerPrunedSubtrees, "trainer.pruned_subtrees", Counter;
    TrainerLeaves, "trainer.leaves", Counter;
    // Compiled batch inference engine.
    EngineCompilations, "engine.compilations", Counter;
    EngineBatches, "engine.batches", Counter;
    EngineBlocks, "engine.blocks", Counter;
    EngineRowsPredicted, "engine.rows_predicted", Counter;
    EngineRowsClassified, "engine.rows_classified", Counter;
    EngineSimdRows, "engine.simd_rows", Counter;
    EngineScalarTailRows, "engine.scalar_tail_rows", Counter;
    EngineMaxDescentDepth, "engine.max_descent_depth", Gauge;
    // Experiment pipeline and artifact store.
    PipelineDatasetHits, "pipeline.dataset_hits", Counter;
    PipelineDatasetMisses, "pipeline.dataset_misses", Counter;
    PipelineTreeHits, "pipeline.tree_hits", Counter;
    PipelineTreeMisses, "pipeline.tree_misses", Counter;
    PipelineSplitsComputed, "pipeline.splits_computed", Counter;
    PipelineCorruptEvictions, "pipeline.corrupt_evictions", Counter;
    PipelineBytesRead, "pipeline.bytes_read", Counter;
    PipelineBytesWritten, "pipeline.bytes_written", Counter;
    // Counter-multiplexing PMU simulator.
    PmuIntervals, "pmu.intervals", Counter;
    PmuRotations, "pmu.rotations", Counter;
    // Prediction server (crates/serve).
    ServeConnections, "serve.connections", Counter;
    ServeRequests, "serve.requests", Counter;
    ServeRowsPredicted, "serve.rows_predicted", Counter;
    ServeRowsClassified, "serve.rows_classified", Counter;
    ServeBatches, "serve.batches", Counter;
    ServeRejectedBusy, "serve.rejected_busy", Counter;
    ServeBadRequests, "serve.bad_requests", Counter;
    ServeModelSwaps, "serve.model_swaps", Counter;
    ServeRequestsTraced, "serve.requests_traced", Counter;
    ServeUptimeSeconds, "serve.uptime_seconds", Gauge;
    // Streaming ingestion and out-of-core training (crates/stream).
    StreamRowsIngested, "stream.rows_ingested", Counter;
    StreamChunksSealed, "stream.chunks_sealed", Counter;
    StreamDuplicatesDropped, "stream.duplicates_dropped", Counter;
    StreamRetransmits, "stream.retransmits", Counter;
    StreamFaultsInjected, "stream.faults_injected", Counter;
    StreamChunkRecoveries, "stream.chunk_recoveries", Counter;
    StreamRefits, "stream.refits", Counter;
    StreamRefitCacheHits, "stream.refit_cache_hits", Counter;
    StreamBacklogRows, "stream.backlog_rows", Gauge;
    StreamRefitHoldoutMae, "stream.refit_holdout_mae", FloatGauge;
    // The observability subsystem itself (crates/obskit).
    ObsMonitorFires, "obs.monitor_fires", Counter;
    ObsFlightDumps, "obs.flight_dumps", Counter;
}

macro_rules! define_hists {
    ($($variant:ident, $name:literal;)+) => {
        /// Every histogram metric. Values are `u64` observations on a
        /// log₂ bucket scale (see [`bucket_of`]).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Hist {
            $(#[doc = $name] $variant,)+
        }

        /// Number of histogram slots.
        pub const N_HISTS: usize = [$(Hist::$variant),+].len();

        impl Hist {
            /// All histograms, in declaration (= export) order.
            pub const ALL: [Hist; N_HISTS] = [$(Hist::$variant),+];

            /// The stable dotted export name.
            pub fn name(self) -> &'static str {
                match self { $(Hist::$variant => $name,)+ }
            }
        }
    };
}

define_hists! {
    TrainerNodeRows, "trainer.node_rows";
    EngineBatchRows, "engine.batch_rows";
    PipelineCodecEncodeNs, "pipeline.codec_encode_ns";
    PipelineCodecDecodeNs, "pipeline.codec_decode_ns";
    ServeBatchRows, "serve.batch_rows";
    ServeRequestNs, "serve.request_ns";
    StreamRefitNs, "stream.refit_ns";
    StreamChunkRows, "stream.chunk_rows";
    StreamRefitHoldoutMaeMicro, "stream.refit_holdout_mae_micro";
}

/// Log₂ bucket count: bucket `b` holds observations in
/// `[2^(b-1), 2^b)`, bucket 0 holds exactly 0, and the last bucket
/// holds everything from `2^63` up.
pub const N_BUCKETS: usize = 65;

/// The log₂ bucket index of one observation.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

static VALUES: [AtomicU64; N_METRICS] = [ZERO; N_METRICS];

struct HistCells {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_HIST: HistCells = HistCells {
    buckets: [ZERO; N_BUCKETS],
    sum: AtomicU64::new(0),
};

static HISTS: [HistCells; N_HISTS] = [EMPTY_HIST; N_HISTS];

/// Adds `n` to a counter. A no-op unless metrics are enabled.
#[inline]
pub fn add(metric: Metric, n: u64) {
    if crate::metrics_enabled() {
        VALUES[metric as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Increments a counter by one. A no-op unless metrics are enabled.
#[inline]
pub fn incr(metric: Metric) {
    add(metric, 1);
}

/// Sets a gauge. A no-op unless metrics are enabled.
#[inline]
pub fn gauge_set(metric: Metric, value: u64) {
    if crate::metrics_enabled() {
        VALUES[metric as usize].store(value, Ordering::Relaxed);
    }
}

/// Raises a gauge to at least `value` (running maximum). A no-op unless
/// metrics are enabled.
#[inline]
pub fn gauge_max(metric: Metric, value: u64) {
    if crate::metrics_enabled() {
        VALUES[metric as usize].fetch_max(value, Ordering::Relaxed);
    }
}

/// Sets a [`Kind::FloatGauge`] slot, storing the `f64` bit pattern. A
/// no-op unless metrics are enabled.
#[inline]
pub fn gauge_set_f64(metric: Metric, value: f64) {
    if crate::metrics_enabled() {
        VALUES[metric as usize].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// The current value of a [`Kind::FloatGauge`] slot (0.0 when never
/// written — the zero bit pattern is positive zero).
pub fn value_f64(metric: Metric) -> f64 {
    f64::from_bits(VALUES[metric as usize].load(Ordering::Relaxed))
}

/// Records one observation into a log₂-bucketed histogram. A no-op
/// unless metrics are enabled.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    if crate::metrics_enabled() {
        let cells = &HISTS[hist as usize];
        cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Runs `f`, recording its wall-clock nanoseconds into `hist` when
/// metrics are enabled. Disabled cost is the gate load only — no clock
/// is read.
#[inline]
pub fn time<T>(hist: Hist, f: impl FnOnce() -> T) -> T {
    if crate::metrics_enabled() {
        let start = std::time::Instant::now();
        let out = f();
        observe(
            hist,
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        out
    } else {
        f()
    }
}

/// The current value of one scalar metric (readable regardless of the
/// enabled state; disabled periods simply don't accumulate).
pub fn value(metric: Metric) -> u64 {
    VALUES[metric as usize].load(Ordering::Relaxed)
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The stable dotted export name.
    pub name: &'static str,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// `(inclusive upper bound, count)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in declaration order.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, value)` for every float gauge, in declaration order.
    pub float_gauges: Vec<(&'static str, f64)>,
    /// Every histogram, in declaration order.
    pub hists: Vec<HistSnapshot>,
}

impl Snapshot {
    /// The value of a counter or gauge by its export name, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(&self.gauges)
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The value of a float gauge by its export name, if present.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.float_gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Copies the whole registry. Cheap (a few hundred relaxed loads) and
/// safe to call while workers are still updating — each cell is read
/// atomically, so values are current-or-slightly-stale, never torn.
pub fn snapshot() -> Snapshot {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut float_gauges = Vec::new();
    for m in Metric::ALL {
        match m.kind() {
            Kind::Counter => counters.push((m.name(), value(m))),
            Kind::Gauge => gauges.push((m.name(), value(m))),
            Kind::FloatGauge => float_gauges.push((m.name(), value_f64(m))),
        }
    }
    let hists = Hist::ALL
        .iter()
        .map(|&h| {
            let cells = &HISTS[h as usize];
            let mut count = 0;
            let mut buckets = Vec::new();
            for (b, cell) in cells.buckets.iter().enumerate() {
                let c = cell.load(Ordering::Relaxed);
                if c > 0 {
                    count += c;
                    buckets.push((bucket_upper_bound(b), c));
                }
            }
            HistSnapshot {
                name: h.name(),
                count,
                sum: cells.sum.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        float_gauges,
        hists,
    }
}

/// Zeroes every metric slot. For tests and the CLI's per-command
/// metric dumps; instrumented code never calls this.
pub fn reset() {
    for cell in &VALUES {
        cell.store(0, Ordering::Relaxed);
    }
    for hist in &HISTS {
        for cell in &hist.buckets {
            cell.store(0, Ordering::Relaxed);
        }
        hist.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value falls in a bucket whose bound contains it.
        for v in [0u64, 1, 7, 100, 4096, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_of(v)));
        }
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        for name in &names {
            assert!(name.contains('.'), "{name} is not layer.metric");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate metric name");
    }
}
