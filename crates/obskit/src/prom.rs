//! Prometheus / OpenMetrics text exposition over the metric registry.
//!
//! A hand-rolled renderer (the grammar is a handful of line forms; no
//! dependency is worth it) that walks a [`Snapshot`] and emits the
//! OpenMetrics text format:
//!
//! * dotted registry names become underscore names
//!   (`trainer.nodes_expanded` → `trainer_nodes_expanded`),
//! * counters are exposed as `<name>_total` samples under a
//!   `# TYPE <name> counter` family,
//! * gauges (integer and float) as plain samples,
//! * log₂ histograms as **cumulative** `<name>_bucket{le="..."}`
//!   series — bucket bounds are the registry's inclusive upper bounds
//!   rendered as floats, the top bucket folds into `+Inf` — plus
//!   `<name>_sum` and `<name>_count`,
//! * the document ends with the mandatory `# EOF` terminator.
//!
//! The exposition is a pure function of the snapshot, so scraping it
//! is as cheap as the JSON dump and equally safe while workers run.
//! CI's `scrape-smoke` job validates the output against a small
//! line-grammar checker.

use crate::metrics::{snapshot, Snapshot};
use std::fmt::Write as _;

/// The HTTP `Content-Type` for this exposition format.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// A dotted registry name as an OpenMetrics metric name.
fn om_name(name: &str) -> String {
    name.replace('.', "_")
}

/// One `f64` as an OpenMetrics value (`+Inf` / `-Inf` / `NaN` spelling).
fn om_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one snapshot as an OpenMetrics text document.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = om_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}_total {value}");
    }
    for (name, value) in &snap.gauges {
        let n = om_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.float_gauges {
        let n = om_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", om_f64(*value));
    }
    for hist in &snap.hists {
        let n = om_name(hist.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(bound, count) in &hist.buckets {
            cumulative += count;
            if bound == u64::MAX {
                // The top registry bucket (2^63..) is the +Inf bucket,
                // emitted unconditionally below.
                continue;
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"{bound}.0\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{n}_sum {}", hist.sum);
        let _ = writeln!(out, "{n}_count {}", hist.count);
    }
    out.push_str("# EOF\n");
    out
}

/// The current registry as an OpenMetrics text document.
pub fn prom_text() -> String {
    render(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSnapshot;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("trainer.fits", 3), ("serve.requests", 0)],
            gauges: vec![("engine.max_descent_depth", 5)],
            float_gauges: vec![("stream.refit_holdout_mae", 0.049)],
            hists: vec![HistSnapshot {
                name: "serve.request_ns",
                count: 7,
                sum: 900,
                buckets: vec![(127, 4), (255, 2), (u64::MAX, 1)],
            }],
        }
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE trainer_fits counter\ntrainer_fits_total 3\n"));
        assert!(text.contains("serve_requests_total 0\n"));
        assert!(
            text.contains("# TYPE engine_max_descent_depth gauge\nengine_max_descent_depth 5\n")
        );
        assert!(text
            .contains("# TYPE stream_refit_holdout_mae gauge\nstream_refit_holdout_mae 0.049\n"));
        assert!(text.contains("# TYPE serve_request_ns histogram\n"));
        // Cumulative buckets: 4, then 4+2, then +Inf = total count.
        assert!(text.contains("serve_request_ns_bucket{le=\"127.0\"} 4\n"));
        assert!(text.contains("serve_request_ns_bucket{le=\"255.0\"} 6\n"));
        assert!(text.contains("serve_request_ns_bucket{le=\"+Inf\"} 7\n"));
        assert!(text.contains("serve_request_ns_sum 900\n"));
        assert!(text.contains("serve_request_ns_count 7\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket() {
        let snap = Snapshot {
            hists: vec![HistSnapshot {
                name: "trainer.node_rows",
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            }],
            ..Snapshot::default()
        };
        let text = render(&snap);
        assert!(text.contains("trainer_node_rows_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("trainer_node_rows_count 0\n"));
    }

    #[test]
    fn float_specials_use_openmetrics_spellings() {
        assert_eq!(om_f64(f64::NAN), "NaN");
        assert_eq!(om_f64(f64::INFINITY), "+Inf");
        assert_eq!(om_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(om_f64(0.123), "0.123");
    }

    #[test]
    fn live_registry_renders_every_family_once() {
        let text = prom_text();
        // One TYPE line per metric/hist slot, no duplicates.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let expected = crate::metrics::N_METRICS + crate::metrics::N_HISTS;
        assert_eq!(type_lines.len(), expected);
        let mut dedup = type_lines.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), type_lines.len());
        assert!(text.ends_with("# EOF\n"));
    }
}
