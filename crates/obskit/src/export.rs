//! Structured exporters: a JSON metrics dump and a Chrome-trace
//! (`trace_event` format) span export.
//!
//! Both renderers are hand-rolled: the output grammar is tiny (objects,
//! arrays, strings, and unsigned integers), and keeping obskit free of
//! even the vendored serde keeps it loadable beneath every crate in the
//! workspace. Strings pass through [`json_string`], which escapes per
//! RFC 8259, so arbitrary field values (artifact keys, file paths,
//! error messages) cannot corrupt the document.
//!
//! The trace export is the object form of the `trace_event` spec —
//! `{"traceEvents": [...], ...}` — which both `chrome://tracing` and
//! Perfetto load directly. After the buffered spans it appends one
//! `"ph":"C"` counter sample per non-zero metric, so cache hit/miss
//! and trainer counters are visible in the same timeline as the spans,
//! and mirrors the full metrics dump under a `"metrics"` key (viewers
//! ignore unknown top-level keys).

use crate::metrics::{snapshot, Snapshot};
use crate::span;
use std::fmt::Write as _;
use std::path::Path;

/// Renders `s` as a JSON string literal, with RFC 8259 escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an event field list as a JSON object (for trace `args`).
pub(crate) fn render_args(fields: &[(&str, &dyn std::fmt::Display)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{}",
            json_string(key),
            json_string(&value.to_string())
        );
    }
    out.push('}');
    out
}

fn render_snapshot(out: &mut String, snap: &Snapshot) {
    out.push_str("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, hist) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
            json_string(hist.name),
            hist.count,
            hist.sum
        );
        for (j, (bound, count)) in hist.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
}

/// The full metric registry as a JSON document:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn metrics_json() -> String {
    let mut out = String::new();
    render_snapshot(&mut out, &snapshot());
    out
}

/// A human-readable metrics table (non-zero entries only), used by
/// `specrepro metrics` and `specrepro cache stats`.
pub fn metrics_human() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in snap.counters.iter().chain(&snap.gauges) {
        if *value > 0 {
            let _ = writeln!(out, "  {name:<32} {value:>12}");
        }
    }
    for hist in &snap.hists {
        if hist.count > 0 {
            let mean = hist.sum as f64 / hist.count as f64;
            let _ = writeln!(
                out,
                "  {:<32} {:>12} observations, mean {mean:.1}",
                hist.name, hist.count
            );
        }
    }
    if out.is_empty() {
        out.push_str("  (no metrics recorded)\n");
    }
    out
}

/// The buffered spans and events as a Chrome `trace_event` document.
///
/// Loadable as-is by `chrome://tracing` and Perfetto. Counter samples
/// for every non-zero metric are appended at the trace's end timestamp
/// and the full metrics dump is mirrored under `"metrics"`.
pub fn trace_json() -> String {
    let snap = snapshot();
    let mut out = String::from("{\"traceEvents\":[");
    let (last_ts, dropped) = span::with_buffer(|buffer| {
        let mut last_ts = 0u64;
        for (i, event) in buffer.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            last_ts = last_ts.max(event.ts_us + event.dur_us);
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                json_string(event.name),
                json_string(event.cat),
                event.phase,
                event.ts_us,
                event.tid
            );
            if event.phase == 'X' {
                let _ = write!(out, ",\"dur\":{}", event.dur_us);
            }
            if event.phase == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            if !event.args.is_empty() {
                let _ = write!(out, ",\"args\":{}", event.args);
            }
            out.push('}');
        }
        (last_ts, buffer.dropped)
    });
    let mut need_comma = !out.ends_with('[');
    for (name, value) in snap.counters.iter().chain(&snap.gauges) {
        if *value == 0 {
            continue;
        }
        if need_comma {
            out.push(',');
        }
        need_comma = true;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{last_ts},\"pid\":1,\
             \"args\":{{\"value\":{value}}}}}",
            json_string(name),
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{dropped},\"metrics\":"
    );
    render_snapshot(&mut out, &snap);
    out.push('}');
    out
}

/// Writes [`trace_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, trace_json() + "\n")
}

/// Writes [`metrics_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_metrics(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, metrics_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("unicode ✓"), "\"unicode ✓\"");
    }

    #[test]
    fn render_args_builds_objects() {
        assert_eq!(render_args(&[]), "{}");
        let rendered = render_args(&[("key", &"va\"lue"), ("n", &42)]);
        assert_eq!(rendered, "{\"key\":\"va\\\"lue\",\"n\":\"42\"}");
    }
}
