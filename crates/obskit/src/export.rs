//! Structured exporters: a JSON metrics dump and a Chrome-trace
//! (`trace_event` format) span export.
//!
//! Both renderers are hand-rolled: the output grammar is tiny (objects,
//! arrays, strings, and unsigned integers), and keeping obskit free of
//! even the vendored serde keeps it loadable beneath every crate in the
//! workspace. Strings pass through [`json_string`], which escapes per
//! RFC 8259, so arbitrary field values (artifact keys, file paths,
//! error messages) cannot corrupt the document.
//!
//! The trace export is the object form of the `trace_event` spec —
//! `{"traceEvents": [...], ...}` — which both `chrome://tracing` and
//! Perfetto load directly. After the buffered spans it appends one
//! `"ph":"C"` counter sample per non-zero metric, so cache hit/miss
//! and trainer counters are visible in the same timeline as the spans,
//! and mirrors the full metrics dump under a `"metrics"` key (viewers
//! ignore unknown top-level keys).

use crate::metrics::{snapshot, Snapshot};
use crate::span;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version of the JSON metrics/trace exports. Version 1 was
/// the undated PR 5 format; version 2 added the `"obs"` metadata
/// object (this constant, the export sequence, and timestamps) and
/// the `"float_gauges"` section.
pub const EXPORT_SCHEMA_VERSION: u64 = 2;

/// The shared export-metadata object carried by every JSON export
/// (metrics, trace, flight dump) under an `"obs"` key:
/// `schema_version` identifies the document layout, `export_seq` is a
/// process-wide strictly increasing sequence number and
/// `export_timestamp_us` the monotonic trace-epoch clock — together
/// they totally order archived dumps from one process — and
/// `export_unix_ms` is wall-clock for cross-process archaeology.
pub fn export_meta(schema_version: u64) -> String {
    static EXPORT_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = EXPORT_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    format!(
        "{{\"schema_version\":{schema_version},\"export_seq\":{seq},\
         \"export_timestamp_us\":{},\"export_unix_ms\":{unix_ms}}}",
        span::now_us()
    )
}

/// One `f64` as a JSON value (`null` for non-finite values, which
/// RFC 8259 cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders `s` as a JSON string literal, with RFC 8259 escaping.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an event field list as a JSON object (for trace `args`).
pub(crate) fn render_args(fields: &[(&str, &dyn std::fmt::Display)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{}",
            json_string(key),
            json_string(&value.to_string())
        );
    }
    out.push('}');
    out
}

fn render_snapshot(out: &mut String, snap: &Snapshot) {
    out.push_str("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"float_gauges\":{");
    for (i, (name, value)) in snap.float_gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), json_f64(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, hist) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
            json_string(hist.name),
            hist.count,
            hist.sum
        );
        for (j, (bound, count)) in hist.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bound},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
}

/// The full metric registry as a JSON document:
/// `{"obs": {...}, "counters": {...}, "gauges": {...},
/// "float_gauges": {...}, "histograms": {...}}`.
pub fn metrics_json() -> String {
    let mut out = String::from("{\"obs\":");
    out.push_str(&export_meta(EXPORT_SCHEMA_VERSION));
    let mut body = String::new();
    render_snapshot(&mut body, &snapshot());
    // Splice the snapshot's own object body after the metadata key.
    out.push(',');
    out.push_str(&body[1..]);
    out
}

/// A human-readable metrics table (non-zero entries only), used by
/// `specrepro metrics` and `specrepro cache stats`.
pub fn metrics_human() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in snap.counters.iter().chain(&snap.gauges) {
        if *value > 0 {
            let _ = writeln!(out, "  {name:<32} {value:>12}");
        }
    }
    for (name, value) in &snap.float_gauges {
        if *value != 0.0 {
            let _ = writeln!(out, "  {name:<32} {value:>12.6}");
        }
    }
    for hist in &snap.hists {
        if hist.count > 0 {
            let mean = hist.sum as f64 / hist.count as f64;
            let _ = writeln!(
                out,
                "  {:<32} {:>12} observations, mean {mean:.1}",
                hist.name, hist.count
            );
        }
    }
    if out.is_empty() {
        out.push_str("  (no metrics recorded)\n");
    }
    out
}

/// The buffered spans and events as a Chrome `trace_event` document.
///
/// Loadable as-is by `chrome://tracing` and Perfetto. Counter samples
/// for every non-zero metric are appended at the trace's end timestamp
/// and the full metrics dump is mirrored under `"metrics"`.
pub fn trace_json() -> String {
    let snap = snapshot();
    let mut out = String::from("{\"obs\":");
    out.push_str(&export_meta(EXPORT_SCHEMA_VERSION));
    out.push_str(",\"traceEvents\":[");
    let (last_ts, dropped) = span::with_buffer(|buffer| {
        let mut last_ts = 0u64;
        for (i, event) in buffer.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            last_ts = last_ts.max(event.ts_us + event.dur_us);
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                json_string(event.name),
                json_string(event.cat),
                event.phase,
                event.ts_us,
                event.tid
            );
            if event.phase == 'X' {
                let _ = write!(out, ",\"dur\":{}", event.dur_us);
            }
            if event.phase == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            if !event.args.is_empty() {
                let _ = write!(out, ",\"args\":{}", event.args);
            }
            out.push('}');
        }
        (last_ts, buffer.dropped)
    });
    let mut need_comma = !out.ends_with('[');
    for (name, value) in snap.counters.iter().chain(&snap.gauges) {
        if *value == 0 {
            continue;
        }
        if need_comma {
            out.push(',');
        }
        need_comma = true;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":{last_ts},\"pid\":1,\
             \"args\":{{\"value\":{value}}}}}",
            json_string(name),
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{dropped},\"metrics\":"
    );
    render_snapshot(&mut out, &snap);
    out.push('}');
    out
}

/// Writes [`trace_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, trace_json() + "\n")
}

/// Writes [`metrics_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_metrics(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, metrics_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("unicode ✓"), "\"unicode ✓\"");
    }

    #[test]
    fn render_args_builds_objects() {
        assert_eq!(render_args(&[]), "{}");
        let rendered = render_args(&[("key", &"va\"lue"), ("n", &42)]);
        assert_eq!(rendered, "{\"key\":\"va\\\"lue\",\"n\":\"42\"}");
    }
}
