//! Integration tests for the observability layer.
//!
//! obskit's registry and trace buffer are process-global, so every test
//! that mutates them runs under one file-local mutex and resets state
//! on entry; `cargo test` may still run this file in parallel with
//! other test binaries, but no other binary in the workspace flips the
//! global telemetry switch.

use obskit::metrics::{self, Hist, Metric};
use obskit::{export, span};
use serde_json::Value;
use std::sync::{Mutex, MutexGuard};

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// Serializes the test and leaves telemetry fully reset on drop.
struct TestGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl TestGuard {
    fn acquire() -> TestGuard {
        let guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
        obskit::set_enabled(false, false);
        metrics::reset();
        span::reset();
        TestGuard(guard)
    }
}

impl Drop for TestGuard {
    fn drop(&mut self) {
        obskit::set_enabled(false, false);
        metrics::reset();
        span::reset();
    }
}

/// Object lookup that panics with the missing key's name.
fn field<'a>(value: &'a Value, key: &str) -> &'a Value {
    value
        .get(key)
        .unwrap_or_else(|| panic!("key {key:?} missing in {value:?}"))
}

fn as_array(value: &Value) -> &[Value] {
    match value {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

fn u64_field(value: &Value, key: &str) -> u64 {
    field(value, key)
        .as_u64()
        .unwrap_or_else(|| panic!("key {key:?} is not a u64"))
}

fn str_field<'a>(value: &'a Value, key: &str) -> &'a str {
    field(value, key)
        .as_str()
        .unwrap_or_else(|| panic!("key {key:?} is not a string"))
}

fn parse(json: &str) -> Value {
    serde_json::from_str(json).expect("export is valid JSON")
}

#[test]
fn disabled_path_is_a_no_op() {
    let _guard = TestGuard::acquire();
    metrics::incr(Metric::TrainerFits);
    metrics::add(Metric::PipelineBytesRead, 4096);
    metrics::gauge_max(Metric::EngineMaxDescentDepth, 17);
    metrics::observe(Hist::TrainerNodeRows, 1000);
    {
        let span = obskit::span("test", "ignored");
        assert!(!span.is_active());
    }
    obskit::emit("test", "ignored.event", &[("k", &1)], false);

    assert_eq!(metrics::value(Metric::TrainerFits), 0);
    assert_eq!(metrics::value(Metric::PipelineBytesRead), 0);
    assert_eq!(metrics::value(Metric::EngineMaxDescentDepth), 0);
    assert_eq!(span::event_count(), 0);
    let snap = metrics::snapshot();
    assert!(snap.hists.iter().all(|h| h.count == 0));
}

#[test]
fn counters_and_histograms_are_correct_under_concurrency() {
    let _guard = TestGuard::acquire();
    obskit::set_enabled(true, false);

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    metrics::incr(Metric::TrainerNodesExpanded);
                    metrics::add(Metric::PipelineBytesWritten, 3);
                    metrics::gauge_max(Metric::EngineMaxDescentDepth, t * PER_THREAD + i);
                    metrics::observe(Hist::EngineBatchRows, i + 1);
                }
            });
        }
    });

    assert_eq!(
        metrics::value(Metric::TrainerNodesExpanded),
        THREADS * PER_THREAD
    );
    assert_eq!(
        metrics::value(Metric::PipelineBytesWritten),
        3 * THREADS * PER_THREAD
    );
    assert_eq!(
        metrics::value(Metric::EngineMaxDescentDepth),
        THREADS * PER_THREAD - 1
    );

    let snap = metrics::snapshot();
    let hist = snap
        .hists
        .iter()
        .find(|h| h.name == "engine.batch_rows")
        .expect("engine.batch_rows histogram");
    assert_eq!(hist.count, THREADS * PER_THREAD);
    // Sum of 1..=PER_THREAD per thread.
    assert_eq!(hist.sum, THREADS * PER_THREAD * (PER_THREAD + 1) / 2);
    // Every observation landed in exactly one bucket.
    let bucket_total: u64 = hist.buckets.iter().map(|(_, c)| c).sum();
    assert_eq!(bucket_total, hist.count);
}

#[test]
fn span_nesting_survives_chrome_trace_export() {
    let _guard = TestGuard::acquire();
    obskit::set_enabled(true, true);

    {
        let _outer = obskit::span("trainer", "outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = obskit::span("trainer", "inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    let doc = parse(&export::trace_json());
    let events = as_array(field(&doc, "traceEvents"));
    let find = |name: &str| -> &Value {
        events
            .iter()
            .find(|e| str_field(e, "name") == name && str_field(e, "ph") == "X")
            .unwrap_or_else(|| panic!("span {name:?} in export"))
    };
    let outer = find("outer");
    let inner = find("inner");

    // Spans drop inner-first, so buffer order is inner, outer; the
    // export must preserve the nesting via timestamps: outer's
    // [ts, ts+dur] interval contains inner's.
    let interval = |e: &Value| {
        let ts = u64_field(e, "ts");
        (ts, ts + u64_field(e, "dur"))
    };
    let (outer_start, outer_end) = interval(outer);
    let (inner_start, inner_end) = interval(inner);
    assert!(outer_start <= inner_start, "outer starts before inner");
    assert!(inner_end <= outer_end, "inner ends before outer");
    // Same thread → same tid row in the viewer.
    assert_eq!(u64_field(outer, "tid"), u64_field(inner, "tid"));
    assert_eq!(str_field(outer, "cat"), "trainer");
    assert_eq!(u64_field(&doc, "droppedEvents"), 0);
}

#[test]
fn trace_export_carries_counter_samples_and_metrics_mirror() {
    let _guard = TestGuard::acquire();
    obskit::set_enabled(true, true);

    metrics::add(Metric::PipelineDatasetHits, 7);
    metrics::observe(Hist::PipelineCodecEncodeNs, 1500);
    {
        let _span = obskit::span("pipeline", "dataset");
    }

    let doc = parse(&export::trace_json());
    let events = as_array(field(&doc, "traceEvents"));
    let counter = events
        .iter()
        .find(|e| str_field(e, "ph") == "C" && str_field(e, "name") == "pipeline.dataset_hits")
        .expect("counter sample for pipeline.dataset_hits");
    assert_eq!(u64_field(field(counter, "args"), "value"), 7);

    // Full registry mirrored under "metrics".
    let mirrored = field(&doc, "metrics");
    assert_eq!(
        u64_field(field(mirrored, "counters"), "pipeline.dataset_hits"),
        7
    );
    let hist = field(field(mirrored, "histograms"), "pipeline.codec_encode_ns");
    assert_eq!(u64_field(hist, "count"), 1);
    assert_eq!(u64_field(hist, "sum"), 1500);
}

#[test]
fn instant_events_render_escaped_args() {
    let _guard = TestGuard::acquire();
    obskit::set_enabled(false, true);

    let key = "ds-a1b2\"quote";
    obskit::emit(
        "pipeline",
        "dataset.hit",
        &[("key", &key), ("rows", &512)],
        false,
    );

    let doc = parse(&export::trace_json());
    let events = as_array(field(&doc, "traceEvents"));
    let event = events
        .iter()
        .find(|e| str_field(e, "name") == "dataset.hit")
        .expect("instant event present");
    assert_eq!(str_field(event, "ph"), "i");
    let args = field(event, "args");
    assert_eq!(str_field(args, "key"), key);
    assert_eq!(str_field(args, "rows"), "512");
}

#[test]
fn metrics_json_parses_and_covers_the_registry() {
    let _guard = TestGuard::acquire();
    obskit::set_enabled(true, false);
    metrics::incr(Metric::PmuRotations);

    let doc = parse(&export::metrics_json());
    let counters = field(&doc, "counters");
    assert_eq!(u64_field(counters, "pmu.rotations"), 1);
    // Dotted namespaces from every instrumented subsystem.
    let Value::Object(entries) = counters else {
        panic!("counters is not an object");
    };
    for prefix in ["trainer.", "engine.", "pipeline.", "pmu."] {
        assert!(
            entries.iter().any(|(k, _)| k.starts_with(prefix)),
            "no counters under {prefix}"
        );
    }
    assert!(matches!(field(&doc, "histograms"), Value::Object(_)));
}

#[test]
fn session_from_env_is_inert_without_variables() {
    let _guard = TestGuard::acquire();
    // The test runner environment never sets the telemetry variables
    // (CI sets them only for the dedicated trace-smoke step).
    assert!(std::env::var("SPECREPRO_TRACE_OUT").is_err());
    let session = obskit::ObsSession::from_env();
    assert!(!obskit::metrics_enabled());
    assert!(!obskit::tracing_enabled());
    let written = session.finish().expect("finish never fails when inert");
    assert!(written.is_empty());
}
