//! Model-transferability assessment (the paper's Section VI).
//!
//! A performance model built using data from workload suite P is
//! *transferable* to suite Q if it can be used to accurately study the
//! performance of Q. This crate packages the paper's two assessment
//! methodologies behind one entry point,
//! [`TransferabilityReport::assess`]:
//!
//! 1. **Two-sample hypothesis testing** (Section VI-A): a t-test of
//!    `H0: P1 = P2` comparing the training and test CPI distributions,
//!    and a t-test of `H0: P_pred = P2` comparing predicted-vs-actual
//!    CPI on the test set — plus the same tests on selected independent
//!    variables, and a Mann-Whitney U test as the non-parametric check.
//! 2. **Prediction-accuracy metrics** (Section VI-B): the correlation
//!    coefficient `C` and mean absolute error with the paper's
//!    acceptance thresholds (`C > 0.85`, `MAE <= 0.15`).
//!
//! # Examples
//!
//! ```no_run
//! use modeltree::{M5Config, ModelTree};
//! use rand::SeedableRng;
//! use transfer::{TransferConfig, TransferabilityReport};
//! use workloads::generator::{GeneratorConfig, Suite};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let gen = GeneratorConfig::default();
//! let cpu = Suite::cpu2006().generate(&mut rng, 20_000, &gen);
//! let (train, test) = cpu.split_random(&mut rng, 0.1);
//! let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
//! let report = TransferabilityReport::assess(
//!     &tree, &train, &test, "CPU2006 (10%)", "CPU2006 (rest)",
//!     &TransferConfig::default(),
//! ).unwrap();
//! assert!(report.accuracy_transferable());
//! ```

pub mod matrix;

pub use matrix::{MatrixCell, MatrixSpec, MemberRow, SuiteArtifacts, TransferMatrix};

use modeltree::ModelTree;
use perfcounters::{Dataset, EventId};
use serde::{Deserialize, Serialize};
use spec_stats::metrics::{AcceptanceThresholds, PredictionMetrics};
use spec_stats::nonparametric::{mann_whitney_u, NonParametricResult};
use spec_stats::ttest::{cohens_d, welch_t_test, TTestResult};
use spec_stats::StatsError;
use std::fmt::Write as _;

/// Configuration of a transferability assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Significance level for the hypothesis tests (two-sided).
    pub alpha: f64,
    /// Accuracy acceptance thresholds.
    pub thresholds: AcceptanceThresholds,
    /// Independent variables to compare between the datasets (the paper
    /// notes "similar conclusions can be reached if the above procedure
    /// were repeated for several independent variables such as
    /// LdBlkOlp").
    pub tested_events: Vec<EventId>,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            alpha: 0.05,
            thresholds: AcceptanceThresholds::default(),
            tested_events: vec![EventId::LdBlkOlp, EventId::DtlbMiss, EventId::Simd],
        }
    }
}

/// Errors from transferability assessment.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransferError {
    /// A statistical routine failed (usually: a dataset too small).
    Stats(StatsError),
    /// The two datasets disagree on which event columns were actually
    /// collected: an event the assessment depends on (used by the model
    /// or listed in [`TransferConfig::tested_events`]) has measurements
    /// in one dataset but is identically zero in the other. Comparing a
    /// collected column against an uncollected one would produce a
    /// meaningless verdict, so the mismatch is reported instead.
    SchemaMismatch {
        /// Events collected in the test dataset but absent from train.
        missing_in_train: Vec<EventId>,
        /// Events collected in the train dataset but absent from test.
        missing_in_test: Vec<EventId>,
    },
    /// A pipeline stage failed while materializing matrix artifacts
    /// (generation, splitting, fitting, or store I/O).
    Pipeline(String),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Stats(e) => write!(f, "statistics error: {e}"),
            TransferError::SchemaMismatch {
                missing_in_train,
                missing_in_test,
            } => {
                let list = |events: &[EventId]| {
                    events
                        .iter()
                        .map(|e| e.short_name())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                write!(f, "event schema mismatch between datasets:")?;
                if !missing_in_train.is_empty() {
                    write!(
                        f,
                        " [{}] collected only in the test dataset",
                        list(missing_in_train)
                    )?;
                }
                if !missing_in_test.is_empty() {
                    write!(
                        f,
                        " [{}] collected only in the train dataset",
                        list(missing_in_test)
                    )?;
                }
                Ok(())
            }
            TransferError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for TransferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransferError::Stats(e) => Some(e),
            TransferError::SchemaMismatch { .. } | TransferError::Pipeline(_) => None,
        }
    }
}

impl From<StatsError> for TransferError {
    fn from(e: StatsError) -> Self {
        TransferError::Stats(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, TransferError>;

/// An event counts as *collected* in a dataset if any sample carries a
/// nonzero value for it: the generators emit continuous positive
/// densities for every architected counter, while an uncollected column
/// is identically zero (as after schema-lossy ingestion).
fn event_collected(data: &Dataset, event: EventId) -> bool {
    data.event_column(event).iter().any(|&v| v != 0.0)
}

/// Verifies that every event the assessment reads — the model's split
/// and regression attributes plus [`TransferConfig::tested_events`] —
/// is collected in both datasets or in neither.
fn check_event_schema(
    model: &ModelTree,
    train: &Dataset,
    test: &Dataset,
    config: &TransferConfig,
) -> Result<()> {
    let mut relevant = model.used_events();
    relevant.extend(config.tested_events.iter().copied());
    let mut missing_in_train = Vec::new();
    let mut missing_in_test = Vec::new();
    for e in relevant {
        match (event_collected(train, e), event_collected(test, e)) {
            (false, true) => missing_in_train.push(e),
            (true, false) => missing_in_test.push(e),
            _ => {}
        }
    }
    if missing_in_train.is_empty() && missing_in_test.is_empty() {
        Ok(())
    } else {
        Err(TransferError::SchemaMismatch {
            missing_in_train,
            missing_in_test,
        })
    }
}

/// The hypothesis-testing half of an assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypothesisReport {
    /// `H0: P1 = P2` on the dependent variable (train CPI vs test CPI).
    pub cpi_datasets: TTestResult,
    /// Cohen's d effect size of the CPI difference — the scale-free
    /// complement to the t statistic (at the paper's sample counts even
    /// negligible differences are "significant").
    #[serde(default)]
    pub cpi_effect_size: f64,
    /// `H0: P_pred = P2` (predicted CPI vs actual CPI on the test set).
    pub cpi_predicted: TTestResult,
    /// The dataset-vs-dataset test repeated on independent variables.
    pub event_tests: Vec<(EventId, TTestResult)>,
    /// Non-parametric cross-check on the CPI distributions.
    pub mann_whitney_cpi: NonParametricResult,
}

/// A complete transferability assessment of one (train suite, test
/// suite) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferabilityReport {
    /// Label of the training dataset (e.g. `"SPEC CPU2006 (10%)"`).
    pub train_name: String,
    /// Label of the test dataset.
    pub test_name: String,
    /// Hypothesis-testing results.
    pub hypothesis: HypothesisReport,
    /// Prediction-accuracy results.
    pub metrics: PredictionMetrics,
    /// The significance level used.
    pub alpha: f64,
    /// The accuracy thresholds used.
    pub thresholds: AcceptanceThresholds,
}

impl TransferabilityReport {
    /// Runs the full assessment: predicts the test set with `model`
    /// (compiled once into a batch-inference engine), then applies both
    /// methodologies.
    ///
    /// # Errors
    ///
    /// * [`TransferError::Stats`] if either dataset is too small for the
    ///   tests (fewer than 2 samples).
    /// * [`TransferError::SchemaMismatch`] if an event the assessment
    ///   depends on is collected (has any nonzero measurement) in one
    ///   dataset but not the other.
    pub fn assess(
        model: &ModelTree,
        train: &Dataset,
        test: &Dataset,
        train_name: &str,
        test_name: &str,
        config: &TransferConfig,
    ) -> Result<TransferabilityReport> {
        // Size problems report as `Stats` errors (from the first t-test
        // below); the schema comparison only applies to datasets large
        // enough to assess at all.
        if train.len() >= 2 && test.len() >= 2 {
            check_event_schema(model, train, test, config)?;
        }
        let train_cpi = train.cpis();
        let test_cpi = test.cpis();
        let predicted = model.compile().predict_batch(test);

        let cpi_datasets = welch_t_test(&train_cpi, &test_cpi)?;
        let cpi_effect_size = cohens_d(&train_cpi, &test_cpi)?;
        let cpi_predicted = welch_t_test(&predicted, &test_cpi)?;
        let mut event_tests = Vec::with_capacity(config.tested_events.len());
        for &e in &config.tested_events {
            let result = welch_t_test(&train.column(e), &test.column(e))?;
            event_tests.push((e, result));
        }
        let mann_whitney_cpi = mann_whitney_u(&train_cpi, &test_cpi)?;
        let metrics = PredictionMetrics::from_predictions(&predicted, &test_cpi)?;

        Ok(TransferabilityReport {
            train_name: train_name.to_owned(),
            test_name: test_name.to_owned(),
            hypothesis: HypothesisReport {
                cpi_datasets,
                cpi_effect_size,
                cpi_predicted,
                event_tests,
                mann_whitney_cpi,
            },
            metrics,
            alpha: config.alpha,
            thresholds: config.thresholds,
        })
    }

    /// Transferable by the hypothesis-testing methodology: both CPI
    /// tests fail to reject their null hypotheses.
    pub fn hypothesis_transferable(&self) -> bool {
        !self.hypothesis.cpi_datasets.significant_at(self.alpha)
            && !self.hypothesis.cpi_predicted.significant_at(self.alpha)
    }

    /// Transferable by the accuracy-metric methodology: `C` and MAE
    /// within thresholds.
    pub fn accuracy_transferable(&self) -> bool {
        self.metrics.acceptable(&self.thresholds)
    }

    /// Overall verdict: both methodologies agree the model transfers.
    pub fn transferable(&self) -> bool {
        self.hypothesis_transferable() && self.accuracy_transferable()
    }

    /// Renders the report in the style of the paper's Section VI
    /// narrative.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "transferability: {} -> {}",
            self.train_name, self.test_name
        );
        let h = &self.hypothesis;
        let _ = writeln!(
            out,
            "  H0 P1=P2 (CPI):        t = {:>9.3}, p = {:.3e}  [{}]",
            h.cpi_datasets.statistic,
            h.cpi_datasets.p_value,
            if h.cpi_datasets.significant_at(self.alpha) {
                "REJECTED"
            } else {
                "accepted"
            }
        );
        let _ = writeln!(
            out,
            "  H0 Ppred=P2 (CPI):     t = {:>9.3}, p = {:.3e}  [{}]",
            h.cpi_predicted.statistic,
            h.cpi_predicted.p_value,
            if h.cpi_predicted.significant_at(self.alpha) {
                "REJECTED"
            } else {
                "accepted"
            }
        );
        for (e, r) in &h.event_tests {
            let _ = writeln!(
                out,
                "  H0 P1=P2 ({}):{}t = {:>9.3}, p = {:.3e}  [{}]",
                e.short_name(),
                " ".repeat(10usize.saturating_sub(e.short_name().len())),
                r.statistic,
                r.p_value,
                if r.significant_at(self.alpha) {
                    "REJECTED"
                } else {
                    "accepted"
                }
            );
        }
        let _ = writeln!(
            out,
            "  Mann-Whitney (CPI):    z = {:>9.3}, p = {:.3e}",
            h.mann_whitney_cpi.statistic, h.mann_whitney_cpi.p_value
        );
        let _ = writeln!(
            out,
            "  effect size (CPI):     d = {:>9.3}",
            h.cpi_effect_size
        );
        let _ = writeln!(out, "  accuracy: {}", self.metrics);
        let _ = writeln!(
            out,
            "  verdict: hypothesis {}, accuracy {} => {}",
            if self.hypothesis_transferable() {
                "transferable"
            } else {
                "NOT transferable"
            },
            if self.accuracy_transferable() {
                "transferable"
            } else {
                "NOT transferable"
            },
            if self.transferable() {
                "TRANSFERABLE"
            } else {
                "NOT TRANSFERABLE"
            }
        );
        out
    }
}

/// One point of a training-fraction sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionPoint {
    /// Fraction of the pool used for training.
    pub fraction: f64,
    /// Number of training samples.
    pub n_train: usize,
    /// Accuracy of the resulting model on the fixed test set.
    pub metrics: PredictionMetrics,
    /// Leaf count of the fitted tree.
    pub n_leaves: usize,
}

/// Sweeps the training fraction, fitting one model per fraction on a
/// random subset of `pool` and evaluating on the fixed `test` set — the
/// study behind the paper's choice of a 10% training sample.
///
/// # Errors
///
/// Returns [`TransferError::Stats`] if the test set is too small, and
/// propagates model-fit failures as a `Stats` error with the fit
/// message.
pub fn train_fraction_sweep(
    pool: &Dataset,
    test: &Dataset,
    fractions: &[f64],
    config: &modeltree::M5Config,
    seed: u64,
) -> Result<Vec<FractionPoint>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let (train, _) = pool.split_random(&mut rng, fraction.clamp(0.0, 1.0));
        let mut cfg = *config;
        cfg.min_leaf = cfg.min_leaf.min((train.len() / 4).max(1));
        cfg.min_split = cfg.min_split.max(2 * cfg.min_leaf);
        let tree = ModelTree::fit(&train, &cfg)
            .map_err(|e| TransferError::Stats(StatsError::InsufficientData(e.to_string())))?;
        let metrics = PredictionMetrics::from_predictions(&tree.predict_all(test), &test.cpis())?;
        out.push(FractionPoint {
            fraction,
            n_train: train.len(),
            metrics,
            n_leaves: tree.n_leaves(),
        });
    }
    Ok(out)
}

/// Bootstrap confidence intervals for the accuracy metrics of a model on
/// a test set: returns `(correlation CI, MAE CI)`.
///
/// This extends the paper's point-estimate verdicts with uncertainty: a
/// transferability decision is robust when the whole interval clears (or
/// misses) the thresholds.
///
/// # Errors
///
/// Returns [`TransferError::Stats`] if the test set has fewer than 2
/// samples or the bootstrap parameters are out of range.
pub fn metric_confidence(
    model: &ModelTree,
    test: &Dataset,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<(spec_stats::BootstrapCi, spec_stats::BootstrapCi)> {
    let predicted = model.compile().predict_batch(test);
    let actual = test.cpis();
    let c = spec_stats::correlation_ci(&predicted, &actual, n_resamples, confidence, seed)?;
    let mae = spec_stats::mae_ci(&predicted, &actual, n_resamples, confidence, seed ^ 0x9e37)?;
    Ok((c, mae))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::generator::{GeneratorConfig, Suite};

    fn cpu_split(seed: u64, n: usize) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default());
        data.split_random(&mut rng, 0.1)
    }

    #[test]
    fn within_suite_is_transferable() {
        let (train, test) = cpu_split(1, 12_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let report = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
            &TransferConfig::default(),
        )
        .unwrap();
        assert!(report.accuracy_transferable(), "{}", report.render());
        assert!(report.hypothesis_transferable(), "{}", report.render());
        assert!(report.transferable());
        assert!(report.metrics.correlation > 0.85);
        assert!(report.metrics.mae < 0.15);
    }

    #[test]
    fn cross_suite_is_not_transferable() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = GeneratorConfig::default();
        let cpu = Suite::cpu2006().generate(&mut rng, 8_000, &gen);
        let omp = Suite::omp2001().generate(&mut rng, 8_000, &gen);
        let (train, _) = cpu.split_random(&mut rng, 0.5);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let report = TransferabilityReport::assess(
            &tree,
            &train,
            &omp,
            "CPU2006",
            "OMP2001",
            &TransferConfig::default(),
        )
        .unwrap();
        assert!(!report.transferable(), "{}", report.render());
        // The paper's shape: cross-suite correlation collapses and MAE
        // blows past the threshold.
        assert!(report.metrics.mae > 0.15, "{}", report.metrics);
        assert!(
            report.hypothesis.cpi_datasets.significant_at(0.05)
                || report.hypothesis.cpi_predicted.significant_at(0.05)
        );
    }

    #[test]
    fn event_tests_reported_for_configured_events() {
        let (train, test) = cpu_split(3, 4_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let config = TransferConfig {
            tested_events: vec![EventId::L2Miss],
            ..Default::default()
        };
        let report =
            TransferabilityReport::assess(&tree, &train, &test, "a", "b", &config).unwrap();
        assert_eq!(report.hypothesis.event_tests.len(), 1);
        assert_eq!(report.hypothesis.event_tests[0].0, EventId::L2Miss);
    }

    #[test]
    fn tiny_datasets_error() {
        let (train, _) = cpu_split(4, 4_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let mut tiny = Dataset::new();
        let l = tiny.add_benchmark("x");
        tiny.push(perfcounters::Sample::zeros(1.0), l);
        let err = TransferabilityReport::assess(
            &tree,
            &train,
            &tiny,
            "a",
            "tiny",
            &TransferConfig::default(),
        );
        assert!(matches!(err, Err(TransferError::Stats(_))));
    }

    #[test]
    fn effect_size_small_within_large_across() {
        let mut rng = StdRng::seed_from_u64(21);
        let gen = GeneratorConfig::default();
        let cpu = Suite::cpu2006().generate(&mut rng, 6_000, &gen);
        let omp = Suite::omp2001().generate(&mut rng, 6_000, &gen);
        let (train, rest) = cpu.split_random(&mut rng, 0.1);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let config = TransferConfig::default();
        let within =
            TransferabilityReport::assess(&tree, &train, &rest, "c", "c", &config).unwrap();
        let across = TransferabilityReport::assess(&tree, &train, &omp, "c", "o", &config).unwrap();
        assert!(within.hypothesis.cpi_effect_size.abs() < 0.1);
        assert!(across.hypothesis.cpi_effect_size.abs() > 0.3);
        assert!(within.render().contains("effect size"));
    }

    #[test]
    fn render_mentions_verdict_and_tests() {
        let (train, test) = cpu_split(5, 4_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let report = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "train",
            "test",
            &TransferConfig::default(),
        )
        .unwrap();
        let text = report.render();
        assert!(text.contains("H0 P1=P2"));
        assert!(text.contains("Mann-Whitney"));
        assert!(text.contains("verdict"));
        assert!(text.contains("LdBlkOlp"));
    }

    #[test]
    fn metric_confidence_brackets_report_metrics() {
        let (train, test) = cpu_split(7, 6_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let report = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "a",
            "b",
            &TransferConfig::default(),
        )
        .unwrap();
        let (c_ci, mae_ci) = metric_confidence(&tree, &test, 200, 0.95, 9).unwrap();
        assert!((c_ci.point - report.metrics.correlation).abs() < 1e-12);
        assert!((mae_ci.point - report.metrics.mae).abs() < 1e-12);
        assert!(c_ci.lower <= c_ci.point && c_ci.point <= c_ci.upper);
        // Within-suite: the whole C interval clears the 0.85 threshold.
        assert!(c_ci.lower > 0.85, "{c_ci:?}");
        assert!(mae_ci.upper < 0.15, "{mae_ci:?}");
    }

    #[test]
    fn fraction_sweep_improves_then_saturates() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = Suite::cpu2006().generate(&mut rng, 10_000, &GeneratorConfig::default());
        let (pool, test) = data.split_random(&mut rng, 0.5);
        let points = train_fraction_sweep(
            &pool,
            &test,
            &[0.02, 0.1, 0.5, 1.0],
            &ModelTree::fit(&pool, &M5Config::default().with_min_leaf(40))
                .unwrap()
                .config()
                .clone(),
            13,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        // Accuracy at the largest fraction beats the smallest.
        let first = points.first().unwrap().metrics.mae;
        let last = points.last().unwrap().metrics.mae;
        assert!(last <= first + 1e-9, "no improvement: {first} -> {last}");
        // Sample counts grow with the fraction.
        for w in points.windows(2) {
            assert!(w[0].n_train <= w[1].n_train);
        }
    }

    /// A hand-built 30-sample dataset: `dtlb` and `simd` supply those
    /// two columns, `Load` always carries signal, and CPI tracks it.
    fn synthetic(dtlb: impl Fn(usize) -> f64, simd: impl Fn(usize) -> f64) -> Dataset {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for i in 0..30 {
            let x = i as f64 / 30.0;
            let mut s = perfcounters::Sample::zeros(0.5 + 2.0 * x + 0.01 * (i % 3) as f64);
            s.set(EventId::Load, 0.1 + 0.4 * x);
            s.set(EventId::DtlbMiss, dtlb(i));
            s.set(EventId::Simd, simd(i));
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn schema_mismatch_event_missing_in_test() {
        let train = synthetic(|i| 1e-4 * (1 + i % 5) as f64, |_| 0.0);
        let test = synthetic(|_| 0.0, |_| 0.0); // DtlbMiss uncollected
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let err = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "a",
            "b",
            &TransferConfig::default(),
        )
        .unwrap_err();
        match err {
            TransferError::SchemaMismatch {
                missing_in_train,
                missing_in_test,
            } => {
                assert!(missing_in_train.is_empty());
                assert_eq!(missing_in_test, vec![EventId::DtlbMiss]);
            }
            other => panic!("expected SchemaMismatch, got {other}"),
        }
    }

    #[test]
    fn schema_mismatch_extra_event_in_test() {
        let train = synthetic(|i| 1e-4 * (1 + i % 5) as f64, |_| 0.0);
        let test = synthetic(|i| 1e-4 * (1 + i % 5) as f64, |i| 1e-3 * (1 + i % 4) as f64);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let err = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "a",
            "b",
            &TransferConfig::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("schema mismatch"), "{msg}");
        assert!(msg.contains("SIMD"), "{msg}");
        assert!(msg.contains("only in the test dataset"), "{msg}");
        match err {
            TransferError::SchemaMismatch {
                missing_in_train, ..
            } => assert_eq!(missing_in_train, vec![EventId::Simd]),
            other => panic!("expected SchemaMismatch, got {other}"),
        }
    }

    #[test]
    fn irrelevant_schema_differences_are_ignored() {
        // `Simd` presence differs, but the model never touches it and it
        // is not a tested event — the assessment must still run.
        let train = synthetic(|i| 1e-4 * (1 + i % 5) as f64, |_| 0.0);
        let test = synthetic(|i| 1e-4 * (1 + i % 5) as f64, |i| 1e-3 * (1 + i % 4) as f64);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let config = TransferConfig {
            tested_events: vec![EventId::Load],
            ..Default::default()
        };
        let report =
            TransferabilityReport::assess(&tree, &train, &test, "a", "b", &config).unwrap();
        assert_eq!(report.hypothesis.event_tests.len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let (train, test) = cpu_split(6, 4_000);
        let tree = ModelTree::fit(&train, &M5Config::default()).unwrap();
        let report = TransferabilityReport::assess(
            &tree,
            &train,
            &test,
            "a",
            "b",
            &TransferConfig::default(),
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: TransferabilityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.train_name, report.train_name);
        assert_eq!(back.transferable(), report.transferable());
    }
}
