//! N×N cross-generation transfer matrix.
//!
//! The paper assesses one ordered suite pair (CPU2006 → OMP2001). With
//! the generation-parameterized suite registry the same protocol
//! generalizes to *every* ordered pair: train the headline model on a
//! fraction of each registered suite, then assess it against the
//! held-out remainder of every suite — its own (the within-suite
//! control) and every other generation's. The diagonal reproduces the
//! paper's Section VI-A acceptance; the off-diagonal rows trace how
//! transferability decays as the training and test generations drift
//! apart (CPU2006 → CPU2017 → CPU2026).
//!
//! Everything resolves through the pipeline: suite datasets, splits,
//! and trees are content-addressed artifacts, so a warm rerun of the
//! full matrix performs zero generation and zero fitting. Cell
//! assessment itself is a pure function of the resolved artifacts and
//! runs under deterministic chunked parallelism — worker `w` takes
//! cells `w, w + n, w + 2n, …` and results are assembled in cell-index
//! order, so the matrix is bit-identical for every thread count.

use crate::{Result, TransferConfig, TransferError, TransferabilityReport};
use modeltree::ModelTree;
use perfcounters::Dataset;
use pipeline::{
    suite_tree_config, DatasetInput, DatasetSpec, PipelineContext, SplitPart, SplitSpec, SuiteKind,
    TreeSpec, SEED_MATRIX,
};
use spec_stats::metrics::{AcceptanceThresholds, PredictionMetrics};
use std::sync::Arc;

/// Recipe for one full cross-suite transfer matrix.
///
/// Everything that affects the produced numbers lives here; thread
/// count deliberately does not (it is an argument to
/// [`TransferMatrix::assess_all`] and never enters a fingerprint).
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// The suites spanning the matrix, in row/column order.
    pub suites: Vec<SuiteKind>,
    /// Samples generated per suite.
    pub n_samples: usize,
    /// Fraction of each suite used for training (the paper's 10%).
    pub train_fraction: f64,
    /// Fresh samples generated per member benchmark for the
    /// member-transfer sub-matrix.
    pub member_samples: usize,
    /// Base seed; per-suite seeds derive from it and the suite's
    /// canonical seed, so adding a suite never reshuffles the others.
    pub seed: u64,
    /// The assessment configuration applied to every cell.
    pub config: TransferConfig,
}

impl MatrixSpec {
    /// The canonical experiment-scale matrix over every registered
    /// suite: 20k samples per suite, 10% training, 2k-sample member
    /// sets.
    pub fn canonical() -> Self {
        MatrixSpec {
            suites: SuiteKind::all(),
            n_samples: 20_000,
            train_fraction: 0.10,
            member_samples: 2_000,
            seed: SEED_MATRIX,
            config: TransferConfig::default(),
        }
    }

    /// A CI-scale matrix: same protocol, ~10× fewer samples.
    pub fn smoke() -> Self {
        MatrixSpec {
            n_samples: 2_000,
            member_samples: 400,
            ..MatrixSpec::canonical()
        }
    }

    /// The dataset seed for one suite: stable under registry growth and
    /// reordering because it depends only on the base seed and the
    /// suite itself.
    pub fn dataset_seed(&self, suite: SuiteKind) -> u64 {
        self.seed ^ suite.canonical_seed()
    }

    /// The dataset recipe for one suite of the matrix.
    pub fn dataset(&self, suite: SuiteKind) -> DatasetSpec {
        DatasetSpec::new(suite, self.n_samples, self.dataset_seed(suite))
    }

    /// The train/rest split recipe for one suite of the matrix.
    pub fn split(&self, suite: SuiteKind) -> SplitSpec {
        SplitSpec::new(
            self.dataset(suite),
            self.dataset_seed(suite) ^ 0x51ed,
            self.train_fraction,
        )
    }

    /// The seed of one suite's per-member evaluation sets (same
    /// derivation idiom as the per-member experiment: `seed ^ 0xbe9c`).
    pub fn member_seed(&self, suite: SuiteKind) -> u64 {
        self.dataset_seed(suite) ^ 0xbe9c
    }
}

/// The resolved pipeline artifacts of one suite: its training fraction,
/// the held-out remainder, and the headline tree fitted on the
/// training fraction.
#[derive(Debug, Clone)]
pub struct SuiteArtifacts {
    /// The suite.
    pub kind: SuiteKind,
    /// The training fraction of the suite dataset.
    pub train: Arc<Dataset>,
    /// The held-out remainder every model is assessed against.
    pub rest: Arc<Dataset>,
    /// The headline suite tree fitted on `train`.
    pub tree: Arc<ModelTree>,
    /// Fresh per-member evaluation sets, in suite benchmark order.
    pub members: Vec<(String, Arc<Dataset>)>,
}

/// One per-member evaluation row: a train-suite model applied to fresh
/// samples of one member benchmark of a test suite.
#[derive(Debug, Clone)]
pub struct MemberRow {
    /// The member benchmark's name.
    pub benchmark: String,
    /// Accuracy of the model on the member's fresh samples.
    pub metrics: PredictionMetrics,
    /// Whether the metrics clear the acceptance thresholds.
    pub transferable: bool,
}

/// One cell of the matrix: the full pairwise assessment plus the
/// member-transfer sub-rows for the same (train, test) pair.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The suite the model was trained on.
    pub train: SuiteKind,
    /// The suite the model is assessed against.
    pub test: SuiteKind,
    /// The Section VI assessment of the pair.
    pub report: TransferabilityReport,
    /// Per-member rows over the test suite's benchmarks.
    pub members: Vec<MemberRow>,
}

/// A complete N×N assessment over the registered suites.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// The spec the matrix was produced from.
    pub spec: MatrixSpec,
    /// All N² cells in row-major (train-major) order.
    pub cells: Vec<MatrixCell>,
}

/// Resolves one suite's matrix artifacts through the pipeline.
fn suite_artifacts(
    ctx: &PipelineContext,
    spec: &MatrixSpec,
    kind: SuiteKind,
) -> Result<SuiteArtifacts> {
    let pipe = |e: pipeline::PipelineError| TransferError::Pipeline(e.to_string());
    let split = spec.split(kind);
    let (train, rest) = ctx.split(&split).map_err(pipe)?;
    let tree = ctx
        .tree(&TreeSpec {
            config: suite_tree_config(split.first_len()),
            input: DatasetInput::SplitPart(split, SplitPart::First),
        })
        .map_err(pipe)?;
    let members =
        member_datasets(ctx, kind, spec.member_samples, spec.member_seed(kind)).map_err(pipe)?;
    Ok(SuiteArtifacts {
        kind,
        train,
        rest,
        tree,
        members,
    })
}

/// Resolves one fresh evaluation dataset per member benchmark of
/// `suite` through the pipeline, in suite benchmark order.
///
/// # Errors
///
/// Propagates pipeline failures (store I/O, degenerate generation).
pub fn member_datasets(
    ctx: &PipelineContext,
    suite: SuiteKind,
    samples: usize,
    seed: u64,
) -> pipeline::spec::Result<Vec<(String, Arc<Dataset>)>> {
    let materialized = suite.materialize();
    let mut out = Vec::with_capacity(materialized.benchmarks().len());
    for bench in materialized.benchmarks() {
        let spec = DatasetSpec::new(suite, samples, seed).with_benchmark(bench.name());
        out.push((bench.name().to_owned(), ctx.dataset(&spec)?));
    }
    Ok(out)
}

/// Applies a fitted tree to each member's fresh samples and scores it
/// against the acceptance thresholds — the member-level assessment
/// shared by the matrix and the per-member experiment.
///
/// # Errors
///
/// Returns [`TransferError::Stats`] if a member set is empty.
pub fn member_rows(
    tree: &ModelTree,
    members: &[(String, Arc<Dataset>)],
    thresholds: &AcceptanceThresholds,
) -> Result<Vec<MemberRow>> {
    let mut rows = Vec::with_capacity(members.len());
    for (name, data) in members {
        let metrics = PredictionMetrics::from_predictions(&tree.predict_all(data), &data.cpis())?;
        rows.push(MemberRow {
            benchmark: name.clone(),
            transferable: metrics.acceptable(thresholds),
            metrics,
        });
    }
    Ok(rows)
}

/// The member row with the largest MAE, if any (the model's weakest
/// coverage of the test suite).
pub fn hardest_member(rows: &[MemberRow]) -> Option<&MemberRow> {
    rows.iter().max_by(|a, b| {
        a.metrics
            .mae
            .partial_cmp(&b.metrics.mae)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// Assesses one (train, test) cell from already-resolved artifacts — a
/// pure function, safe to run on any worker.
fn assess_cell(
    train: &SuiteArtifacts,
    test: &SuiteArtifacts,
    spec: &MatrixSpec,
) -> Result<MatrixCell> {
    let pct = (spec.train_fraction * 100.0).round();
    let report = TransferabilityReport::assess(
        &train.tree,
        &train.train,
        &test.rest,
        &format!("{} ({pct:.0}%)", train.kind.display_name()),
        &format!("{} (rest)", test.kind.display_name()),
        &spec.config,
    )?;
    let members = member_rows(&train.tree, &test.members, &spec.config.thresholds)?;
    Ok(MatrixCell {
        train: train.kind,
        test: test.kind,
        report,
        members,
    })
}

impl TransferMatrix {
    /// Runs the full N×N assessment.
    ///
    /// Stage 1 resolves every suite's artifacts through `ctx` serially
    /// (generation and fitting are already internally parallel and
    /// cache-backed). Stage 2 assesses the N² cells under deterministic
    /// chunked parallelism across `n_threads` workers: worker `w`
    /// stripes over cell indices `w, w + n, …`, and the results are
    /// assembled in index order, so the output is bit-identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures as [`TransferError::Pipeline`] and
    /// statistical failures (datasets too small for the tests) as
    /// [`TransferError::Stats`].
    pub fn assess_all(
        ctx: &PipelineContext,
        spec: &MatrixSpec,
        n_threads: usize,
    ) -> Result<TransferMatrix> {
        let artifacts = spec
            .suites
            .iter()
            .map(|&kind| suite_artifacts(ctx, spec, kind))
            .collect::<Result<Vec<_>>>()?;
        let n = artifacts.len();
        let n_cells = n * n;
        let workers = n_threads.max(1).min(n_cells.max(1));
        let mut slots: Vec<Option<Result<MatrixCell>>> = Vec::new();
        slots.resize_with(n_cells, || None);
        if workers <= 1 {
            for (idx, slot) in slots.iter_mut().enumerate() {
                *slot = Some(assess_cell(&artifacts[idx / n], &artifacts[idx % n], spec));
            }
        } else {
            let chunks = stripe_slots(&mut slots, workers);
            std::thread::scope(|scope| {
                for (w, chunk) in chunks.into_iter().enumerate() {
                    let artifacts = &artifacts;
                    scope.spawn(move || {
                        for (k, slot) in chunk.into_iter().enumerate() {
                            let idx = w + k * workers;
                            *slot =
                                Some(assess_cell(&artifacts[idx / n], &artifacts[idx % n], spec));
                        }
                    });
                }
            });
        }
        let cells = slots
            .into_iter()
            .map(|slot| slot.expect("every cell assessed"))
            .collect::<Result<Vec<_>>>()?;
        Ok(TransferMatrix {
            spec: spec.clone(),
            cells,
        })
    }

    /// The matrix dimension N.
    pub fn n(&self) -> usize {
        self.spec.suites.len()
    }

    /// The cell for a (train, test) suite pair.
    pub fn cell(&self, train: SuiteKind, test: SuiteKind) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.train == train && c.test == test)
    }

    /// All cells trained on one suite, in column order.
    pub fn row(&self, train: SuiteKind) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| c.train == train).collect()
    }
}

/// Splits `slots` into `workers` striped borrows: stripe `w` holds
/// mutable references to slots `w, w + workers, w + 2·workers, …`.
fn stripe_slots<T>(slots: &mut [T], workers: usize) -> Vec<Vec<&mut T>> {
    let mut stripes: Vec<Vec<&mut T>> = (0..workers).map(|_| Vec::new()).collect();
    for (idx, slot) in slots.iter_mut().enumerate() {
        stripes[idx % workers].push(slot);
    }
    stripes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            suites: vec![SuiteKind::cpu2006(), SuiteKind::cpu2026()],
            n_samples: 1_200,
            train_fraction: 0.25,
            member_samples: 120,
            seed: 77,
            config: TransferConfig::default(),
        }
    }

    #[test]
    fn seeds_are_content_stable_per_suite() {
        let spec = MatrixSpec::canonical();
        let seeds: Vec<u64> = spec.suites.iter().map(|&s| spec.dataset_seed(s)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-suite seeds collide");
        // Reordering the suite list must not change any suite's seed.
        let mut reordered = spec.clone();
        reordered.suites.reverse();
        for &s in &spec.suites {
            assert_eq!(spec.dataset_seed(s), reordered.dataset_seed(s));
        }
    }

    #[test]
    fn assess_all_covers_every_pair_and_diagonal_transfers() {
        let ctx = PipelineContext::ephemeral();
        let spec = tiny_spec();
        let matrix = TransferMatrix::assess_all(&ctx, &spec, 2).unwrap();
        assert_eq!(matrix.cells.len(), 4);
        for &train in &spec.suites {
            for &test in &spec.suites {
                let cell = matrix.cell(train, test).expect("cell exists");
                assert_eq!(cell.members.len(), test.materialize().benchmarks().len());
            }
        }
        // Within-suite control passes; the two-generation jump fails.
        let same = matrix
            .cell(SuiteKind::cpu2006(), SuiteKind::cpu2006())
            .unwrap();
        assert!(
            same.report.accuracy_transferable(),
            "{}",
            same.report.render()
        );
        let far = matrix
            .cell(SuiteKind::cpu2006(), SuiteKind::cpu2026())
            .unwrap();
        assert!(!far.report.transferable(), "{}", far.report.render());
        assert!(far.report.metrics.mae > same.report.metrics.mae);
    }

    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let spec = tiny_spec();
        let baseline = TransferMatrix::assess_all(&PipelineContext::ephemeral(), &spec, 1).unwrap();
        for threads in [2, 8] {
            let other =
                TransferMatrix::assess_all(&PipelineContext::ephemeral(), &spec, threads).unwrap();
            assert_eq!(baseline.cells.len(), other.cells.len());
            for (a, b) in baseline.cells.iter().zip(&other.cells) {
                assert_eq!(a.train, b.train);
                assert_eq!(a.test, b.test);
                assert_eq!(a.report, b.report, "{threads} threads diverged");
                assert_eq!(a.members.len(), b.members.len());
                for (ra, rb) in a.members.iter().zip(&b.members) {
                    assert_eq!(ra.benchmark, rb.benchmark);
                    assert_eq!(ra.metrics, rb.metrics);
                }
            }
        }
    }

    #[test]
    fn hardest_member_picks_the_largest_mae() {
        let ctx = PipelineContext::ephemeral();
        let spec = tiny_spec();
        let matrix = TransferMatrix::assess_all(&ctx, &spec, 1).unwrap();
        let cell = matrix
            .cell(SuiteKind::cpu2006(), SuiteKind::cpu2006())
            .unwrap();
        let hardest = hardest_member(&cell.members).unwrap();
        for row in &cell.members {
            assert!(row.metrics.mae <= hardest.metrics.mae);
        }
    }
}
