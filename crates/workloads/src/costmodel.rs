//! The latent, regime-dependent cost model producing ground-truth CPI.
//!
//! Real processors charge different effective costs for the same event in
//! different microarchitectural regimes (e.g. a DTLB miss that triggers a
//! serialized page walk vs. one overlapped with outstanding L2 misses).
//! That piecewise structure is exactly what the paper's M5' trees recover
//! from hardware data, so the simulator's ground truth is itself a
//! piecewise-linear function of the event densities. The leaf
//! coefficients for the dominant regimes are taken verbatim from the
//! paper's published equations (LM1/LM7/LM8 of Section IV for the
//! single-threaded regimes; LM17/LM18, LM2/LM6/LM15/LM16 of Section V for
//! the multi-threaded regimes), so a well-fit tree should reproduce both
//! the split structure and the coefficient magnitudes of Figures 1 and 2.
//!
//! The [`Environment`] selects between the two regime sets. The
//! environment is *latent*: it is not visible in any counter, which is
//! why a model trained on one suite cannot predict the other — the
//! paper's central non-transferability finding.

use perfcounters::events::{EventId, N_EVENTS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Execution environment of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// One thread per core, no cross-thread interference (SPEC CPU2006).
    SingleThreaded,
    /// OpenMP-style parallel execution: shared L2, coherence traffic, and
    /// store-forwarding pressure amplify store-related costs
    /// (SPEC OMP2001).
    MultiThreaded,
}

/// The microarchitectural regime a sample's true densities place it in.
///
/// Regime names reference the paper's linear-model numbers: `CpuLm1` is
/// the regime whose cost vector equals the paper's Equation 1, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Regime {
    /// Low DTLB pressure; Equation 1 costs (the bulk of CPU2006).
    CpuLm1,
    /// DTLB pressure + split-load heavy (482.sphinx3's regime).
    CpuLm18,
    /// DTLB + L2 pressure with very high SIMD density (436.cactusADM).
    CpuLm11,
    /// DTLB + L2 pressure with high SIMD density and store overlap
    /// (470.lbm).
    CpuLm5,
    /// Heavy DTLB and L2 pressure (471.omnetpp; high CPI).
    CpuLm24,
    /// L2-miss-bound streaming with moderate DTLB pressure (constant
    /// CPI plateau).
    CpuStreaming,
    /// DTLB pressure + store-address blocks, well-predicted branches
    /// (Equation for LM7).
    CpuLm7,
    /// DTLB pressure + store-address blocks, branchy (Equation for LM8).
    CpuLm8,
    /// DTLB pressure, SIMD-rich compute (LM10-like).
    CpuLm10,
    /// DTLB pressure with overlapped-store load blocks (LM14-like).
    CpuLm14,
    /// Remaining DTLB-pressure samples (constant plateau).
    CpuPlateau,
    /// Store-overlap blocked, moderate stores (Equation 5 / LM17).
    OmpLm17,
    /// Store-overlap blocked, store-rich (Equation 6 / LM18).
    OmpLm18,
    /// Scalar, L2-bound, branchy (equake-style; LM14 of Figure 2).
    OmpLm14,
    /// Scalar, L2-bound, well-predicted (misalignment-sensitive LM6).
    OmpLm6,
    /// Scalar, L2-light, branchy, store-sensitive (LM2).
    OmpLm2,
    /// Scalar, L2-light, quiet (LM3 constant; art-style low CPI).
    OmpLm3,
    /// SIMD-rich with multiply pressure (applu-style LM16; high CPI).
    OmpLm16,
    /// SIMD-rich with misaligned operands (LM11 constant; high CPI).
    OmpLm11,
    /// SIMD-rich with store-address blocks (LM15).
    OmpLm15,
    /// Remaining SIMD-rich samples (swim/mgrid-style LM13).
    OmpLm13,
}

impl Regime {
    /// True if this regime belongs to the multi-threaded (OMP) regime
    /// set.
    pub fn is_multithreaded(self) -> bool {
        matches!(
            self,
            Regime::OmpLm17
                | Regime::OmpLm18
                | Regime::OmpLm14
                | Regime::OmpLm6
                | Regime::OmpLm2
                | Regime::OmpLm3
                | Regime::OmpLm16
                | Regime::OmpLm11
                | Regime::OmpLm15
                | Regime::OmpLm13
        )
    }
}

/// Regime thresholds, aligned with the split points the paper reports.
pub mod thresholds {
    /// DTLB misses/instruction at the CPU2006 root split (Figure 1).
    pub const DTLB: f64 = 1.9e-4;
    /// L2 misses/instruction at the second CPU2006 split.
    pub const L2: f64 = 4.8e-4;
    /// Load-blocks-by-store-address/instruction (third CPU2006 split).
    pub const LD_BLK_STA: f64 = 4.5e-4;
    /// Mispredicted branches/instruction separating LM7 from LM8.
    pub const MISPR: f64 = 1.9e-4;
    /// Load-blocks-by-overlapping-store at the OMP2001 root split
    /// ("0.74% or more per instruction", Figure 2).
    pub const LD_BLK_OLP: f64 = 7.4e-3;
    /// Stores/instruction separating LM17 from LM18 ("7.7%").
    pub const STORE: f64 = 7.7e-2;
    /// SIMD density separating the scalar and vector OMP subtrees.
    pub const SIMD_LOW: f64 = 0.3;
    /// SIMD density above which CPU2006 samples hit the cactusADM
    /// plateau ("at least 91%").
    pub const SIMD_CACTUS: f64 = 0.91;
    /// SIMD density above which CPU2006 samples hit the lbm regime
    /// ("at least 77%").
    pub const SIMD_LBM: f64 = 0.77;
    /// SIMD density for the CPU2006 LM10 regime.
    pub const SIMD_MID: f64 = 0.5;
    /// DTLB density above which L2-bound CPU2006 samples behave like
    /// 471.omnetpp.
    pub const DTLB_HEAVY: f64 = 8.0e-4;
    /// Split loads/instruction marking the sphinx3 regime.
    pub const SPLIT_LOAD: f64 = 2.0e-3;
    /// Overlap blocks marking the CPU2006 LM14 regime.
    pub const OLP_CPU: f64 = 2.0e-3;
    /// L2 misses/instruction splitting the scalar OMP subtree.
    pub const L2_OMP: f64 = 6.0e-4;
    /// Branch mispredicts splitting the scalar L2-bound OMP subtree.
    pub const MISPR_OMP_HIGH: f64 = 3.0e-3;
    /// Branch mispredicts splitting the scalar L2-light OMP subtree.
    pub const MISPR_OMP_LOW: f64 = 1.0e-3;
    /// Multiplies/instruction splitting the vector OMP subtree.
    pub const MUL_OMP: f64 = 5.0e-2;
    /// Misaligned references marking the OMP LM11 plateau.
    pub const MISALIGN_OMP: f64 = 3.0e-3;
    /// Store-address blocks marking the OMP LM15 regime.
    pub const STA_OMP: f64 = 1.0e-3;
}

/// The ground-truth cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Multiplicative lognormal CPI noise (sigma of the underlying
    /// normal). Default 0.04.
    pub noise_sigma: f64,
    /// Multi-threaded contention scale. 1.0 reproduces the paper's
    /// platform; values above 1.0 model heavier coherence /
    /// store-forwarding pressure (more threads, smaller shared L2),
    /// below 1.0 lighter pressure. Scales only the *store-coupled* cost
    /// terms of the multi-threaded regimes, so single-threaded behavior
    /// is unaffected. Used by the platform-drift ablation.
    #[serde(default = "default_contention")]
    pub contention: f64,
}

fn default_contention() -> f64 {
    1.0
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            noise_sigma: 0.04,
            contention: 1.0,
        }
    }
}

#[inline]
fn d(densities: &[f64; N_EVENTS], e: EventId) -> f64 {
    densities[e.index()]
}

impl CostModel {
    /// Creates a cost model with the given CPI noise level and the
    /// paper's default contention (1.0).
    pub fn new(noise_sigma: f64) -> Self {
        CostModel {
            noise_sigma,
            contention: 1.0,
        }
    }

    /// Sets the multi-threaded contention scale (builder style).
    #[must_use]
    pub fn with_contention(mut self, contention: f64) -> Self {
        self.contention = contention.max(0.0);
        self
    }

    /// Classifies true densities into their cost regime.
    pub fn regime(&self, x: &[f64; N_EVENTS], env: Environment) -> Regime {
        use thresholds as t;
        match env {
            Environment::SingleThreaded => {
                if d(x, EventId::DtlbMiss) <= t::DTLB {
                    Regime::CpuLm1
                } else if d(x, EventId::SplitLoad) > t::SPLIT_LOAD {
                    Regime::CpuLm18
                } else if d(x, EventId::L2Miss) > t::L2 {
                    if d(x, EventId::Simd) > t::SIMD_CACTUS {
                        Regime::CpuLm11
                    } else if d(x, EventId::Simd) > t::SIMD_LBM {
                        Regime::CpuLm5
                    } else if d(x, EventId::DtlbMiss) > t::DTLB_HEAVY {
                        Regime::CpuLm24
                    } else {
                        Regime::CpuStreaming
                    }
                } else if d(x, EventId::LdBlkStA) > t::LD_BLK_STA {
                    if d(x, EventId::MisprBr) <= t::MISPR {
                        Regime::CpuLm7
                    } else {
                        Regime::CpuLm8
                    }
                } else if d(x, EventId::Simd) > t::SIMD_MID {
                    Regime::CpuLm10
                } else if d(x, EventId::LdBlkOlp) > t::OLP_CPU {
                    Regime::CpuLm14
                } else {
                    Regime::CpuPlateau
                }
            }
            Environment::MultiThreaded => {
                if d(x, EventId::LdBlkOlp) > t::LD_BLK_OLP {
                    if d(x, EventId::Store) <= t::STORE {
                        Regime::OmpLm17
                    } else {
                        Regime::OmpLm18
                    }
                } else if d(x, EventId::Simd) <= t::SIMD_LOW {
                    if d(x, EventId::L2Miss) > t::L2_OMP {
                        if d(x, EventId::MisprBr) > t::MISPR_OMP_HIGH {
                            Regime::OmpLm14
                        } else {
                            Regime::OmpLm6
                        }
                    } else if d(x, EventId::MisprBr) > t::MISPR_OMP_LOW {
                        Regime::OmpLm2
                    } else {
                        Regime::OmpLm3
                    }
                } else if d(x, EventId::Mul) > t::MUL_OMP {
                    Regime::OmpLm16
                } else if d(x, EventId::Misalign) > t::MISALIGN_OMP {
                    Regime::OmpLm11
                } else if d(x, EventId::LdBlkStA) > t::STA_OMP {
                    Regime::OmpLm15
                } else {
                    Regime::OmpLm13
                }
            }
        }
    }

    /// The deterministic ground-truth CPI for true densities `x` in the
    /// given environment.
    pub fn true_cpi(&self, x: &[f64; N_EVENTS], env: Environment) -> f64 {
        use EventId::*;
        let cpi = match self.regime(x, env) {
            // Paper Equation 1 (LM1), verbatim.
            Regime::CpuLm1 => {
                0.53 + 4.73 * d(x, L1DMiss)
                    + 7.71 * d(x, Div)
                    + 63.0 * d(x, L2Miss)
                    + 0.254 * d(x, Mul)
                    + 7.88 * d(x, Misalign)
                    + 17.5 * d(x, MisprBr)
                    + 4.37 * d(x, LdBlkStd)
                    + 15.7 * d(x, PageWalk)
                    + 0.046 * d(x, Simd)
                    + 503.0 * d(x, DtlbMiss)
                    + 6.42 * d(x, L1IMiss)
                    + 3.22 * d(x, LdBlkStA)
                    + 2.98 * d(x, LdBlkOlp)
                    + 0.128 * d(x, Load)
                    - 0.198 * d(x, Store)
                    - 0.251 * d(x, Br)
            }
            // Paper LM18 of Figure 1 (split-load regime), verbatim.
            Regime::CpuLm18 => {
                0.98 + 16.47 * d(x, L1DMiss) + 56.15 * d(x, DtlbMiss) + 6.80 * d(x, LdBlkStA)
            }
            // cactusADM plateau: "at least 91% SIMD ... CPI of 1.2".
            Regime::CpuLm11 => 1.2,
            // lbm regime: SIMD-heavy with overlapped-store blocks,
            // avg CPI 1.6.
            Regime::CpuLm5 => {
                1.05 + 0.30 * d(x, Simd) + 20.0 * d(x, LdBlkOlp) + 250.0 * d(x, L2Miss)
            }
            // omnetpp regime: DTLB + L2 + overlap + branches, CPI ~2.1.
            Regime::CpuLm24 => {
                0.90 + 650.0 * d(x, L2Miss)
                    + 300.0 * d(x, DtlbMiss)
                    + 8.0 * d(x, LdBlkOlp)
                    + 1.5 * d(x, Br)
            }
            // Streaming plateau ("the model for LM2 is simply CPI=1.44").
            Regime::CpuStreaming => 1.44,
            // Paper LM7, verbatim.
            Regime::CpuLm7 => {
                0.24 + 1172.0 * d(x, L2Miss)
                    + 2.72 * d(x, Store)
                    + 17.82 * d(x, DtlbMiss)
                    + 24.18 * d(x, L1IMiss)
                    + 2.37 * d(x, LdBlkOlp)
                    + 101.67 * d(x, SplitStore)
                    + 0.26 * d(x, Simd)
            }
            // Paper LM8, verbatim.
            Regime::CpuLm8 => {
                0.61 - 7.99 * d(x, Div) - 0.23 * d(x, Mul)
                    + 13.85 * d(x, MisprBr)
                    + 17.44 * d(x, DtlbMiss)
                    + 15.20 * d(x, L1IMiss)
                    + 1.44 * d(x, LdBlkStd)
                    + 11.35 * d(x, PageWalk)
                    + 0.16 * d(x, Simd)
            }
            // Paper LM10, verbatim.
            Regime::CpuLm10 => 1.74 - 0.56 * d(x, Simd),
            // Paper LM14, verbatim.
            Regime::CpuLm14 => 1.21 - 1.15 * d(x, Load) + 24.11 * d(x, LdBlkOlp),
            Regime::CpuPlateau => 1.18,
            // Paper Equation 5 (LM17); verbatim at contention = 1.0.
            // The store-coupled terms (load blocks, page walks while
            // stores stall) scale with cross-thread contention.
            Regime::OmpLm17 => {
                let k = self.contention;
                0.80 + 39.1 * d(x, L1DMiss) - 0.281 * d(x, Mul) - 0.941 * d(x, Br)
                    + 9.1 * k * d(x, LdBlkStA)
                    + 5.6 * k * d(x, LdBlkOlp)
                    + 34.6 * k * d(x, PageWalk)
                    + 0.129 * d(x, Simd)
            }
            // Paper Equation 6 (LM18); verbatim at contention = 1.0.
            Regime::OmpLm18 => {
                let k = self.contention;
                0.95 - 4.7 * d(x, Div)
                    + 2.08 * k * d(x, Store)
                    + 53.0 * k * d(x, PageWalk)
                    + 0.427 * d(x, Simd)
            }
            // equake-style branchy L2-bound scalar regime (CPI ~1.37).
            Regime::OmpLm14 => 1.15 + 25.0 * d(x, L1DMiss) + 14.0 * d(x, MisprBr),
            // Paper LM6, verbatim.
            Regime::OmpLm6 => 0.75 + 16.28 * d(x, L1DMiss) + 123.60 * d(x, Misalign),
            // Paper LM2, verbatim.
            Regime::OmpLm2 => 0.39 + 3.95 * d(x, Store),
            // Paper LM3 ("the model is simply CPI = 0.53").
            Regime::OmpLm3 => 0.53,
            // Paper LM16, verbatim (avg CPI 2.50 at high SIMD density).
            Regime::OmpLm16 => 0.65 + 9.51 * d(x, L1DMiss) - 1.11 * d(x, Br) + 1.98 * d(x, Simd),
            // Paper LM11 plateau (avg CPI 2.79; misaligned SIMD).
            Regime::OmpLm11 => 2.79,
            // Paper LM15, verbatim.
            Regime::OmpLm15 => 0.79 + 23.17 * d(x, LdBlkStA) + 7.28 * d(x, PageWalk),
            // Remaining vector code (swim/mgrid-style).
            Regime::OmpLm13 => 0.90 + 0.50 * d(x, Simd),
        };
        cpi.max(0.15)
    }

    /// The ground-truth CPI with multiplicative measurement/modeling
    /// noise applied.
    pub fn noisy_cpi<R: Rng + ?Sized>(
        &self,
        x: &[f64; N_EVENTS],
        env: Environment,
        rng: &mut R,
    ) -> f64 {
        let base = self.true_cpi(x, env);
        let factor = (self.noise_sigma * mathkit::sampling::standard_normal(rng)).exp();
        (base * factor).max(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_densities() -> [f64; N_EVENTS] {
        let mut x = [0.0; N_EVENTS];
        x[EventId::Load.index()] = 0.28;
        x[EventId::Store.index()] = 0.10;
        x[EventId::Br.index()] = 0.18;
        x[EventId::MisprBr.index()] = 8e-4;
        x[EventId::L1DMiss.index()] = 8e-3;
        x[EventId::L2Miss.index()] = 1.5e-4;
        x[EventId::DtlbMiss.index()] = 6e-5;
        x
    }

    #[test]
    fn low_dtlb_is_lm1() {
        let cm = CostModel::default();
        let x = base_densities();
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm1);
        let cpi = cm.true_cpi(&x, Environment::SingleThreaded);
        // Paper: LM1 average CPI is 0.6.
        assert!((0.4..0.8).contains(&cpi), "cpi {cpi}");
    }

    #[test]
    fn lm1_uses_equation_one_coefficients() {
        let cm = CostModel::default();
        let mut x = base_densities();
        let before = cm.true_cpi(&x, Environment::SingleThreaded);
        x[EventId::L2Miss.index()] += 1e-4;
        let after = cm.true_cpi(&x, Environment::SingleThreaded);
        // Slope of 63 cycles per L2 miss in LM1.
        assert!(((after - before) / 1e-4 - 63.0).abs() < 1e-6);
    }

    #[test]
    fn dtlb_pressure_with_sta_blocks_selects_lm7_or_lm8() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::DtlbMiss.index()] = 5e-4;
        x[EventId::LdBlkStA.index()] = 9e-4;
        x[EventId::MisprBr.index()] = 1e-4;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm7);
        x[EventId::MisprBr.index()] = 3e-3;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm8);
    }

    #[test]
    fn split_loads_select_sphinx_regime() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::DtlbMiss.index()] = 4e-4;
        x[EventId::SplitLoad.index()] = 6e-3;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm18);
        // Paper: LM18 has "a CPI of 1.2, 20% above the suite average".
        let cpi = cm.true_cpi(&x, Environment::SingleThreaded);
        assert!((1.0..1.5).contains(&cpi), "cpi {cpi}");
    }

    #[test]
    fn simd_plateaus_for_cactus_and_lbm() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::DtlbMiss.index()] = 3e-4;
        x[EventId::L2Miss.index()] = 7e-4;
        x[EventId::Simd.index()] = 0.93;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm11);
        assert_eq!(cm.true_cpi(&x, Environment::SingleThreaded), 1.2);
        x[EventId::Simd.index()] = 0.82;
        x[EventId::LdBlkOlp.index()] = 6e-3;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm5);
        let cpi = cm.true_cpi(&x, Environment::SingleThreaded);
        assert!((1.3..1.9).contains(&cpi), "lbm cpi {cpi}");
    }

    #[test]
    fn omnetpp_regime_has_high_cpi() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::DtlbMiss.index()] = 1.3e-3;
        x[EventId::L2Miss.index()] = 1.2e-3;
        x[EventId::LdBlkOlp.index()] = 2e-3;
        x[EventId::Br.index()] = 0.22;
        assert_eq!(cm.regime(&x, Environment::SingleThreaded), Regime::CpuLm24);
        let cpi = cm.true_cpi(&x, Environment::SingleThreaded);
        assert!((1.8..2.6).contains(&cpi), "omnetpp cpi {cpi}");
    }

    #[test]
    fn omp_root_regimes_follow_overlap_and_stores() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::LdBlkOlp.index()] = 1.2e-2;
        x[EventId::Store.index()] = 0.05;
        assert_eq!(cm.regime(&x, Environment::MultiThreaded), Regime::OmpLm17);
        x[EventId::Store.index()] = 0.12;
        assert_eq!(cm.regime(&x, Environment::MultiThreaded), Regime::OmpLm18);
    }

    #[test]
    fn omp_lm18_cpi_matches_paper_band() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::LdBlkOlp.index()] = 1.5e-2;
        x[EventId::Store.index()] = 0.11;
        x[EventId::PageWalk.index()] = 5e-3;
        // Paper: "The average CPI for this class is a moderately high
        // 1.49".
        let cpi = cm.true_cpi(&x, Environment::MultiThreaded);
        assert!((1.3..1.7).contains(&cpi), "lm18 cpi {cpi}");
    }

    #[test]
    fn omp_lm16_reaches_high_cpi() {
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::Simd.index()] = 0.88;
        x[EventId::Mul.index()] = 0.12;
        x[EventId::L1DMiss.index()] = 0.035;
        assert_eq!(cm.regime(&x, Environment::MultiThreaded), Regime::OmpLm16);
        // Paper: "The average CPI for LM16 is 2.50".
        let cpi = cm.true_cpi(&x, Environment::MultiThreaded);
        assert!((2.1..2.9).contains(&cpi), "lm16 cpi {cpi}");
    }

    #[test]
    fn environment_changes_cpi_for_same_densities() {
        // The same counter-visible densities yield different CPIs in the
        // two environments: the latent contention term the paper's
        // transferability analysis hinges on.
        let cm = CostModel::default();
        let mut x = base_densities();
        x[EventId::LdBlkOlp.index()] = 1.2e-2;
        x[EventId::Store.index()] = 0.12;
        x[EventId::PageWalk.index()] = 5e-3;
        x[EventId::DtlbMiss.index()] = 1e-4; // low: CPU regime = LM1
        let cpu = cm.true_cpi(&x, Environment::SingleThreaded);
        let omp = cm.true_cpi(&x, Environment::MultiThreaded);
        assert!(
            (cpu - omp).abs() > 0.3,
            "environments indistinguishable: {cpu} vs {omp}"
        );
    }

    #[test]
    fn every_regime_is_reachable() {
        use std::collections::HashSet;
        let cm = CostModel::default();
        let mut seen = HashSet::new();
        // Scan a coarse grid over the discriminating events.
        let dtlbs = [5e-5, 5e-4, 1.5e-3];
        let l2s = [1e-4, 8e-4];
        let stas = [1e-4, 2e-3];
        let misprs = [5e-5, 2e-3, 5e-3];
        let simds = [0.02, 0.4, 0.6, 0.85, 0.95];
        let olps = [1e-4, 3e-3, 1.5e-2];
        let stores = [0.05, 0.12];
        let muls = [0.01, 0.1];
        let misaligns = [1e-4, 5e-3];
        let splits = [1e-4, 6e-3];
        for &dtlb in &dtlbs {
            for &l2 in &l2s {
                for &sta in &stas {
                    for &mispr in &misprs {
                        for &simd in &simds {
                            for &olp in &olps {
                                for &store in &stores {
                                    for &mul in &muls {
                                        for &mis in &misaligns {
                                            for &spl in &splits {
                                                let mut x = base_densities();
                                                x[EventId::DtlbMiss.index()] = dtlb;
                                                x[EventId::L2Miss.index()] = l2;
                                                x[EventId::LdBlkStA.index()] = sta;
                                                x[EventId::MisprBr.index()] = mispr;
                                                x[EventId::Simd.index()] = simd;
                                                x[EventId::LdBlkOlp.index()] = olp;
                                                x[EventId::Store.index()] = store;
                                                x[EventId::Mul.index()] = mul;
                                                x[EventId::Misalign.index()] = mis;
                                                x[EventId::SplitLoad.index()] = spl;
                                                for env in [
                                                    Environment::SingleThreaded,
                                                    Environment::MultiThreaded,
                                                ] {
                                                    seen.insert(cm.regime(&x, env));
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 21, "unreached regimes: {:?}", seen);
    }

    #[test]
    fn cpi_always_positive() {
        let cm = CostModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let mut x = [0.0; N_EVENTS];
            for v in x.iter_mut() {
                *v = rand::Rng::gen::<f64>(&mut rng) * 0.5;
            }
            for env in [Environment::SingleThreaded, Environment::MultiThreaded] {
                assert!(cm.true_cpi(&x, env) > 0.0);
                assert!(cm.noisy_cpi(&x, env, &mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn noise_is_multiplicative_and_centered() {
        let cm = CostModel::new(0.05);
        let x = base_densities();
        let truth = cm.true_cpi(&x, Environment::SingleThreaded);
        let mut rng = StdRng::seed_from_u64(10);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| cm.noisy_cpi(&x, Environment::SingleThreaded, &mut rng))
            .sum::<f64>()
            / n as f64;
        // Lognormal mean = truth * exp(sigma^2/2) ~ truth * 1.00125.
        assert!(
            (mean / truth - 1.0).abs() < 0.01,
            "mean ratio {}",
            mean / truth
        );
    }

    #[test]
    fn contention_scales_only_multithreaded_store_costs() {
        let base = CostModel::default();
        let heavy = CostModel::default().with_contention(2.0);
        let mut x = base_densities();
        x[EventId::LdBlkOlp.index()] = 1.5e-2;
        x[EventId::Store.index()] = 0.11;
        x[EventId::PageWalk.index()] = 5e-3;
        // Multi-threaded CPI rises with contention.
        let c1 = base.true_cpi(&x, Environment::MultiThreaded);
        let c2 = heavy.true_cpi(&x, Environment::MultiThreaded);
        assert!(c2 > c1 + 0.2, "contention had no effect: {c1} vs {c2}");
        // Single-threaded CPI is untouched.
        x[EventId::DtlbMiss.index()] = 1e-4;
        assert_eq!(
            base.true_cpi(&x, Environment::SingleThreaded),
            heavy.true_cpi(&x, Environment::SingleThreaded)
        );
    }

    #[test]
    fn contention_one_is_identity() {
        let a = CostModel::default();
        let b = CostModel::default().with_contention(1.0);
        let x = base_densities();
        for env in [Environment::SingleThreaded, Environment::MultiThreaded] {
            assert_eq!(a.true_cpi(&x, env), b.true_cpi(&x, env));
        }
    }

    #[test]
    fn regime_is_multithreaded_flag() {
        assert!(Regime::OmpLm17.is_multithreaded());
        assert!(!Regime::CpuLm1.is_multithreaded());
    }
}
