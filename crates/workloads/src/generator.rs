//! Suite-level dataset generation.
//!
//! A [`Suite`] owns its benchmark models and execution environment; the
//! generator draws intervals benchmark-by-benchmark (allocating samples
//! in proportion to instruction-count weights, matching the paper's
//! "number of samples selected for each benchmark is proportional to the
//! number of instructions required to execute that benchmark"), runs
//! each interval through the latent cost model, and measures it through
//! the multiplexed counter bank.

use crate::costmodel::{CostModel, Environment};
use crate::phases::BenchmarkModel;
use perfcounters::counters::{CounterBank, CounterConfig};
use perfcounters::events::EventId;
use perfcounters::{Dataset, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of dataset generation: the counter architecture plus
/// the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GeneratorConfig {
    /// Simulated PMU configuration (multiplexing noise etc.).
    pub counters: CounterConfig,
    /// Ground-truth cost model (CPI noise etc.).
    pub cost: CostModel,
}

/// A benchmark suite: a named set of [`BenchmarkModel`]s sharing one
/// execution [`Environment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    name: String,
    environment: Environment,
    benchmarks: Vec<BenchmarkModel>,
}

impl Suite {
    /// Creates a suite from parts.
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty.
    pub fn new(name: &str, environment: Environment, benchmarks: Vec<BenchmarkModel>) -> Self {
        assert!(!benchmarks.is_empty(), "suite must have benchmarks");
        Suite {
            name: name.to_owned(),
            environment,
            benchmarks,
        }
    }

    /// The synthetic SPEC CPU2006 suite (29 benchmarks, single-threaded).
    pub fn cpu2006() -> Self {
        crate::registry::CPU2006.materialize()
    }

    /// The synthetic SPEC OMP2001 medium suite (11 benchmarks,
    /// multi-threaded).
    pub fn omp2001() -> Self {
        crate::registry::OMP2001.materialize()
    }

    /// Suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution environment (latent: not visible in any counter).
    pub fn environment(&self) -> Environment {
        self.environment
    }

    /// The benchmark models.
    pub fn benchmarks(&self) -> &[BenchmarkModel] {
        &self.benchmarks
    }

    /// The memory-hierarchy events scaled by
    /// [`Suite::with_memory_pressure`].
    pub const MEMORY_EVENTS: [EventId; 10] = [
        EventId::L1DMiss,
        EventId::L1IMiss,
        EventId::L2Miss,
        EventId::DtlbMiss,
        EventId::LdBlkStA,
        EventId::LdBlkStd,
        EventId::LdBlkOlp,
        EventId::SplitLoad,
        EventId::SplitStore,
        EventId::Misalign,
    ];

    /// Returns a copy of this suite with every phase's memory-hierarchy
    /// event densities scaled by `factor` — a model of running smaller
    /// input sets (`factor < 1`: working sets fit better, fewer misses)
    /// or larger ones (`factor > 1`). The instruction mix is untouched.
    #[must_use]
    pub fn with_memory_pressure(mut self, factor: f64) -> Self {
        self.name = format!("{} (memory x{factor})", self.name);
        self.benchmarks = self
            .benchmarks
            .into_iter()
            .map(|b| {
                let name = b.name().to_owned();
                let weight = b.weight();
                let mut out = BenchmarkModel::new(&name, weight);
                for phase in b.phases() {
                    out = out.phase(phase.clone().with_scaled(&Self::MEMORY_EVENTS, factor));
                }
                out
            })
            .collect();
        self
    }

    /// Number of samples each benchmark receives out of `total`,
    /// proportional to instruction-count weight. The counts sum exactly
    /// to `total` (largest-remainder rounding).
    pub fn sample_allocation(&self, total: usize) -> Vec<usize> {
        let weight_sum: f64 = self.benchmarks.iter().map(BenchmarkModel::weight).sum();
        let exact: Vec<f64> = self
            .benchmarks
            .iter()
            .map(|b| total as f64 * b.weight() / weight_sum)
            .collect();
        let mut counts: Vec<usize> = exact.iter().map(|x| x.floor() as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the largest fractional parts.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = exact[a] - exact[a].floor();
            let fb = exact[b] - exact[b].floor();
            fb.total_cmp(&fa)
        });
        let n_benchmarks = counts.len();
        let mut cursor = 0;
        while assigned < total {
            counts[order[cursor % n_benchmarks]] += 1;
            assigned += 1;
            cursor += 1;
        }
        counts
    }

    /// Generates one measured interval for a benchmark model.
    fn generate_one<R: Rng + ?Sized>(
        &self,
        bench: &BenchmarkModel,
        config: &GeneratorConfig,
        bank: &CounterBank,
        rng: &mut R,
    ) -> Sample {
        let phase = bench.pick_phase(rng);
        let densities = phase.sample_densities(rng);
        let cpi = config.cost.noisy_cpi(&densities, self.environment, rng);
        let truth = Sample::from_densities(cpi, &densities);
        bank.measure(&truth, rng)
    }

    /// Generates a labeled dataset with `total` samples allocated across
    /// benchmarks by weight. All benchmark names are registered even if a
    /// tiny `total` leaves some with zero samples.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        total: usize,
        config: &GeneratorConfig,
    ) -> Dataset {
        let bank = CounterBank::new(config.counters);
        let counts = self.sample_allocation(total);
        let mut ds = Dataset::with_capacity(total);
        for b in &self.benchmarks {
            ds.add_benchmark(b.name());
        }
        for (bench, &n) in self.benchmarks.iter().zip(&counts) {
            let label = ds.add_benchmark(bench.name());
            for _ in 0..n {
                let sample = self.generate_one(bench, config, &bank, rng);
                ds.push(sample, label);
            }
        }
        ds
    }

    /// Generates a labeled dataset like [`Suite::generate`], spreading
    /// benchmark blocks over up to `n_threads` scoped worker threads.
    ///
    /// The output depends only on the rng state and `total`, never on
    /// `n_threads`: each benchmark's block is drawn from its own stream,
    /// seeded from the caller's rng in benchmark order, and blocks are
    /// assembled in benchmark order. Note the per-benchmark streams mean
    /// the samples differ from (but are statistically equivalent to) the
    /// single-stream sequential path of [`Suite::generate`], which is
    /// kept byte-stable for existing seeds.
    pub fn generate_par<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        total: usize,
        config: &GeneratorConfig,
        n_threads: usize,
    ) -> Dataset {
        let counts = self.sample_allocation(total);
        let seeds: Vec<u64> = self.benchmarks.iter().map(|_| rng.next_u64()).collect();
        let bank = CounterBank::new(config.counters);
        let n_workers = n_threads.max(1).min(self.benchmarks.len());
        let mut blocks: Vec<Option<Vec<Sample>>> = vec![None; self.benchmarks.len()];
        if n_workers <= 1 {
            for (i, (bench, &n)) in self.benchmarks.iter().zip(&counts).enumerate() {
                let mut stream = StdRng::seed_from_u64(seeds[i]);
                blocks[i] = Some(self.generate_block(bench, n, config, &bank, &mut stream));
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n_workers);
                for worker in 0..n_workers {
                    let counts = &counts;
                    let seeds = &seeds;
                    let bank = &bank;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = worker;
                        while i < self.benchmarks.len() {
                            let mut stream = StdRng::seed_from_u64(seeds[i]);
                            out.push((
                                i,
                                self.generate_block(
                                    &self.benchmarks[i],
                                    counts[i],
                                    config,
                                    bank,
                                    &mut stream,
                                ),
                            ));
                            i += n_workers;
                        }
                        out
                    }));
                }
                for handle in handles {
                    for (i, block) in handle.join().expect("generator worker panicked") {
                        blocks[i] = Some(block);
                    }
                }
            });
        }
        let mut ds = Dataset::with_capacity(total);
        for b in &self.benchmarks {
            ds.add_benchmark(b.name());
        }
        for (bench, block) in self.benchmarks.iter().zip(blocks) {
            let label = ds.add_benchmark(bench.name());
            for sample in block.expect("every block is generated") {
                ds.push(sample, label);
            }
        }
        ds
    }

    /// Generates `n` measured intervals for one benchmark model.
    fn generate_block<R: Rng + ?Sized>(
        &self,
        bench: &BenchmarkModel,
        n: usize,
        config: &GeneratorConfig,
        bank: &CounterBank,
        rng: &mut R,
    ) -> Vec<Sample> {
        (0..n)
            .map(|_| self.generate_one(bench, config, bank, rng))
            .collect()
    }

    /// Generates `n` samples for a single benchmark (by name).
    ///
    /// Returns `None` if the benchmark is not part of this suite.
    pub fn generate_benchmark<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        name: &str,
        n: usize,
        config: &GeneratorConfig,
    ) -> Option<Dataset> {
        let bench = self.benchmarks.iter().find(|b| b.name() == name)?;
        let bank = CounterBank::new(config.counters);
        let mut ds = Dataset::with_capacity(n);
        let label = ds.add_benchmark(bench.name());
        for _ in 0..n {
            let sample = self.generate_one(bench, config, &bank, rng);
            ds.push(sample, label);
        }
        Some(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cpu2006_suite_shape() {
        let s = Suite::cpu2006();
        assert_eq!(s.benchmarks().len(), 29);
        assert_eq!(s.environment(), Environment::SingleThreaded);
    }

    #[test]
    fn omp2001_suite_shape() {
        let s = Suite::omp2001();
        assert_eq!(s.benchmarks().len(), 11);
        assert_eq!(s.environment(), Environment::MultiThreaded);
    }

    #[test]
    fn allocation_sums_to_total() {
        let s = Suite::cpu2006();
        for total in [0, 1, 29, 100, 12345] {
            let counts = s.sample_allocation(total);
            assert_eq!(counts.iter().sum::<usize>(), total);
            assert_eq!(counts.len(), 29);
        }
    }

    #[test]
    fn allocation_roughly_proportional() {
        let s = Suite::cpu2006();
        let counts = s.sample_allocation(29_000);
        let weight_sum: f64 = s.benchmarks().iter().map(|b| b.weight()).sum();
        for (b, &c) in s.benchmarks().iter().zip(&counts) {
            let expected = 29_000.0 * b.weight() / weight_sum;
            assert!(
                (c as f64 - expected).abs() <= 1.0,
                "{}: {c} vs {expected}",
                b.name()
            );
        }
    }

    #[test]
    fn generate_produces_labeled_physical_samples() {
        let s = Suite::cpu2006();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = s.generate(&mut rng, 500, &GeneratorConfig::default());
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.benchmark_count(), 29);
        for (sample, label) in ds.iter() {
            assert!(sample.is_physical());
            assert!(ds.benchmark_name(label).is_some());
        }
    }

    #[test]
    fn generate_benchmark_filters_by_name() {
        let s = Suite::omp2001();
        let mut rng = StdRng::seed_from_u64(2);
        let ds = s
            .generate_benchmark(&mut rng, "330.art_m", 100, &GeneratorConfig::default())
            .unwrap();
        assert_eq!(ds.len(), 100);
        assert!(s
            .generate_benchmark(&mut rng, "999.nope", 10, &GeneratorConfig::default())
            .is_none());
    }

    #[test]
    fn suite_mean_cpis_match_paper_bands() {
        // Paper Section VI: CPU2006 mean CPI ~0.96, OMP2001 mean ~1.21,
        // and OMP2001 is clearly higher.
        let mut rng = StdRng::seed_from_u64(3);
        let config = GeneratorConfig::default();
        let cpu = Suite::cpu2006().generate(&mut rng, 8000, &config);
        let omp = Suite::omp2001().generate(&mut rng, 8000, &config);
        let cpu_mean = cpu.cpi_summary().unwrap().mean();
        let omp_mean = omp.cpi_summary().unwrap().mean();
        assert!((0.75..1.2).contains(&cpu_mean), "cpu mean {cpu_mean}");
        assert!((1.0..1.55).contains(&omp_mean), "omp mean {omp_mean}");
        assert!(omp_mean > cpu_mean + 0.1);
    }

    #[test]
    fn memory_pressure_scaling_shifts_miss_densities_and_cpi() {
        let config = GeneratorConfig::default();
        let light = Suite::cpu2006().with_memory_pressure(0.5);
        let heavy = Suite::cpu2006();
        assert!(light.name().contains("memory"));
        let mut rng = StdRng::seed_from_u64(42);
        let small = light.generate(&mut rng, 5_000, &config);
        let mut rng = StdRng::seed_from_u64(42);
        let full = heavy.generate(&mut rng, 5_000, &config);
        let small_dtlb = small
            .summary(perfcounters::EventId::DtlbMiss)
            .unwrap()
            .mean();
        let full_dtlb = full
            .summary(perfcounters::EventId::DtlbMiss)
            .unwrap()
            .mean();
        assert!(
            (small_dtlb / full_dtlb - 0.5).abs() < 0.1,
            "dtlb ratio {}",
            small_dtlb / full_dtlb
        );
        // Lighter memory pressure -> lower CPI.
        assert!(small.cpi_summary().unwrap().mean() < full.cpi_summary().unwrap().mean() - 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Suite::cpu2006();
        let config = GeneratorConfig::default();
        let a = s.generate(&mut StdRng::seed_from_u64(7), 200, &config);
        let b = s.generate(&mut StdRng::seed_from_u64(7), 200, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_par_is_thread_count_invariant() {
        let s = Suite::cpu2006();
        let config = GeneratorConfig::default();
        let serial = s.generate_par(&mut StdRng::seed_from_u64(21), 600, &config, 1);
        for threads in [2, 4, 8, 64] {
            let par = s.generate_par(&mut StdRng::seed_from_u64(21), 600, &config, threads);
            assert_eq!(serial, par, "n_threads={threads} changed the dataset");
        }
    }

    #[test]
    fn generate_par_matches_generate_shape() {
        let s = Suite::omp2001();
        let config = GeneratorConfig::default();
        let ds = s.generate_par(&mut StdRng::seed_from_u64(22), 500, &config, 4);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.benchmark_count(), 11);
        let counts = s.sample_allocation(500);
        for ((sample, label), _) in ds.iter().zip(0..) {
            assert!(sample.is_physical());
            assert!(ds.benchmark_name(label).is_some());
        }
        // Per-benchmark block sizes follow the same allocation as the
        // sequential generator.
        for (i, bench) in s.benchmarks().iter().enumerate() {
            let got = ds
                .iter()
                .filter(|(_, label)| ds.benchmark_name(*label) == Some(bench.name()))
                .count();
            assert_eq!(got, counts[i], "{}", bench.name());
        }
    }

    #[test]
    fn generate_par_deterministic_given_seed() {
        let s = Suite::cpu2006();
        let config = GeneratorConfig::default();
        let a = s.generate_par(&mut StdRng::seed_from_u64(23), 300, &config, 4);
        let b = s.generate_par(&mut StdRng::seed_from_u64(23), 300, &config, 4);
        assert_eq!(a, b);
        let c = s.generate_par(&mut StdRng::seed_from_u64(24), 300, &config, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn oracle_counters_disable_noise() {
        let mut config = GeneratorConfig::default();
        config.counters.multiplexing_noise = false;
        let s = Suite::cpu2006();
        let mut rng = StdRng::seed_from_u64(8);
        let ds = s.generate(&mut rng, 100, &config);
        assert_eq!(ds.len(), 100);
    }
}
