//! Synthetic SPEC CPU2006 and SPEC OMP2001 workload models.
//!
//! The original study measured licensed SPEC binaries on an Intel Core 2
//! Duo. Neither the benchmarks nor the hardware are available here, so
//! this crate substitutes a *workload simulator* with three layers:
//!
//! 1. [`phases`] — each benchmark is a weighted mixture of execution
//!    phases; a phase is a joint distribution over the 19 Table I event
//!    densities (truncated normals). The 29 CPU2006 benchmarks
//!    ([`cpu2006`]) and 11 OMP2001-medium benchmarks ([`omp2001`]) are
//!    parameterized to land in the qualitative regimes the paper reports
//!    for them (e.g. 482.sphinx3 split-load heavy, 471.omnetpp DTLB/L2
//!    heavy, 328.fma3d_m store + load-block-overlap heavy).
//! 2. [`costmodel`] — a latent, regime-dependent cost model produces the
//!    ground-truth CPI from the *true* event densities. The piecewise
//!    structure (different event costs in different microarchitectural
//!    regimes) is what makes M5' trees the right model class, exactly as
//!    on real hardware. The [`costmodel::Environment`]
//!    distinguishes single-threaded (CPU2006) from multi-threaded
//!    (OMP2001) execution: the multi-threaded regime set reflects
//!    coherence and store-forwarding pressure that no counter observes
//!    directly — mirroring the paper's explanation for why the two
//!    suites' models do not transfer to each other.
//! 3. [`generator`] — drives the phases through the cost model and the
//!    [`perfcounters`] multiplexing simulator to emit labeled
//!    [`Dataset`](perfcounters::Dataset)s.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use workloads::generator::{GeneratorConfig, Suite};
//!
//! let suite = Suite::cpu2006();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = suite.generate(&mut rng, 1000, &GeneratorConfig::default());
//! assert_eq!(data.len(), 1000);
//! assert_eq!(data.benchmark_count(), 29);
//! ```

pub mod costmodel;
pub mod cpu2006;
pub mod cpu2017;
pub mod cpu2026;
pub mod generator;
pub mod omp2001;
pub mod phases;
pub mod registry;
pub mod trace;

pub use costmodel::{CostModel, Environment};
pub use generator::{GeneratorConfig, Suite};
pub use phases::{BenchmarkModel, Phase};
pub use registry::{SuiteDef, SuiteRegistry};
pub use trace::{generate_trace, Trace, TraceConfig};
