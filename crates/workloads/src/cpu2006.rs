//! Synthetic models of the 29 SPEC CPU2006 benchmarks.
//!
//! Each benchmark's phase mixture is parameterized so that, after
//! classification through a model tree trained on the whole suite, the
//! benchmark lands in the qualitative regions the paper's Table II
//! reports: ten benchmarks dominated by the low-DTLB-pressure LM1 regime
//! (five of them above 90%), 482.sphinx3 split-load heavy, 471.omnetpp
//! DTLB/L2 heavy with CPI ≈ 2.1, 470.lbm and 436.cactusADM SIMD heavy,
//! and 429.mcf maximally dissimilar from 444.namd.

use crate::phases::{BenchmarkModel, Phase};
use perfcounters::events::EventId::*;

/// Number of benchmarks in SPEC CPU2006.
pub const N_BENCHMARKS: usize = 29;

/// Quiet low-DTLB phase: the paper's LM1 regime (CPI around 0.6).
fn lm1(weight: f64) -> Phase {
    Phase::new("lm1", weight)
}

/// DTLB pressure with store-address load blocks and well-predicted
/// branches: the LM7 regime.
fn lm7(weight: f64) -> Phase {
    Phase::new("lm7", weight)
        .with(DtlbMiss, 4.0e-4, 0.3)
        .with(LdBlkStA, 9.0e-4, 0.3)
        .with(MisprBr, 8.0e-5, 0.4)
        .with(L2Miss, 3.8e-4, 0.12)
        .with(SplitStore, 1.2e-3, 0.4)
}

/// DTLB pressure with store-address load blocks and mispredicted
/// branches: the LM8 regime.
fn lm8(weight: f64) -> Phase {
    Phase::new("lm8", weight)
        .with(DtlbMiss, 4.0e-4, 0.3)
        .with(LdBlkStA, 9.0e-4, 0.3)
        .with(MisprBr, 6.0e-3, 0.25)
        .with(L2Miss, 3.0e-4, 0.25)
}

/// Heavy DTLB + L2 pressure (471.omnetpp's regime; CPI around 2.1).
fn lm24(weight: f64) -> Phase {
    Phase::new("lm24", weight)
        .with(DtlbMiss, 1.3e-3, 0.25)
        .with(L2Miss, 1.2e-3, 0.25)
        .with(LdBlkOlp, 2.0e-3, 0.4)
        .with(Br, 0.22, 0.1)
}

/// L2-bound streaming plateau (CPI 1.44 constant).
fn streaming(weight: f64) -> Phase {
    Phase::new("streaming", weight)
        .with(DtlbMiss, 3.5e-4, 0.25)
        .with(L2Miss, 9.0e-4, 0.3)
        .with(Simd, 0.05, 0.5)
}

/// Split-load heavy phase (482.sphinx3's LM18 regime).
fn split_load(weight: f64) -> Phase {
    Phase::new("split-load", weight)
        .with(DtlbMiss, 4.0e-4, 0.3)
        .with(SplitLoad, 6.0e-3, 0.3)
        .with(L1DMiss, 2.0e-2, 0.3)
        .with(LdBlkStA, 8.0e-4, 0.4)
}

/// Very-high-SIMD plateau (436.cactusADM's LM11 regime; CPI 1.2).
fn simd_cactus(weight: f64) -> Phase {
    Phase::new("simd-cactus", weight)
        .with(DtlbMiss, 3.0e-4, 0.25)
        .with(L2Miss, 7.0e-4, 0.25)
        .with(Simd, 0.94, 0.015)
}

/// High-SIMD with overlapped stores (470.lbm's LM5 regime; CPI 1.6).
fn simd_lbm(weight: f64) -> Phase {
    Phase::new("simd-lbm", weight)
        .with(DtlbMiss, 2.5e-4, 0.2)
        .with(L2Miss, 8.0e-4, 0.25)
        .with(Simd, 0.83, 0.03)
        .with(LdBlkOlp, 6.0e-3, 0.3)
}

/// Mid-SIMD compute under DTLB pressure (the LM10 regime).
fn simd_mid(weight: f64) -> Phase {
    Phase::new("simd-mid", weight)
        .with(DtlbMiss, 3.0e-4, 0.25)
        .with(Simd, 0.65, 0.08)
}

/// Overlapped-store load blocks under DTLB pressure (the LM14 regime).
fn olp(weight: f64) -> Phase {
    Phase::new("olp", weight)
        .with(DtlbMiss, 3.0e-4, 0.25)
        .with(LdBlkOlp, 4.0e-3, 0.3)
        .with(Load, 0.35, 0.1)
}

/// The 29 benchmark models of SPEC CPU2006, with instruction-count
/// weights (their share of the suite's samples).
pub fn benchmarks() -> Vec<BenchmarkModel> {
    vec![
        // --- integer benchmarks ---
        BenchmarkModel::new("400.perlbench", 1.2)
            .phase(lm1(0.65))
            .phase(lm8(0.35)),
        BenchmarkModel::new("401.bzip2", 1.0)
            .phase(lm1(0.60))
            .phase(lm7(0.40)),
        BenchmarkModel::new("403.gcc", 1.1)
            .phase(lm1(0.50))
            .phase(lm8(0.30))
            .phase(lm24(0.20)),
        BenchmarkModel::new("429.mcf", 0.6)
            .phase(lm24(0.75))
            .phase(lm8(0.25)),
        BenchmarkModel::new("445.gobmk", 1.0)
            .phase(lm1(0.55))
            .phase(lm8(0.45)),
        BenchmarkModel::new("456.hmmer", 1.1)
            .phase(lm1(0.97))
            .phase(lm7(0.03)),
        BenchmarkModel::new("458.sjeng", 1.0)
            .phase(lm1(0.55))
            .phase(lm8(0.45)),
        BenchmarkModel::new("462.libquantum", 1.0)
            .phase(streaming(0.70))
            .phase(lm1(0.30)),
        BenchmarkModel::new("464.h264ref", 1.3)
            .phase(lm1(0.55))
            .phase(lm7(0.15))
            .phase(lm8(0.15))
            .phase(simd_mid(0.15)),
        BenchmarkModel::new("471.omnetpp", 0.7)
            .phase(lm24(0.80))
            .phase(lm1(0.20)),
        BenchmarkModel::new("473.astar", 0.9)
            .phase(lm1(0.50))
            .phase(lm8(0.20))
            .phase(lm7(0.15))
            .phase(lm24(0.05))
            .phase(olp(0.10)),
        BenchmarkModel::new("483.xalancbmk", 1.0)
            .phase(lm1(0.40))
            .phase(lm8(0.30))
            .phase(lm7(0.30)),
        // --- floating-point benchmarks ---
        BenchmarkModel::new("410.bwaves", 1.2)
            .phase(lm7(0.50))
            .phase(lm1(0.50)),
        BenchmarkModel::new("416.gamess", 1.3)
            .phase(lm1(0.93))
            .phase(lm8(0.07)),
        BenchmarkModel::new("433.milc", 0.9)
            .phase(streaming(0.50))
            .phase(lm7(0.30))
            .phase(lm1(0.20)),
        BenchmarkModel::new("434.zeusmp", 1.0)
            .phase(lm1(0.60))
            .phase(simd_lbm(0.20))
            .phase(lm7(0.20)),
        BenchmarkModel::new("435.gromacs", 1.0)
            .phase(lm1(0.95))
            .phase(simd_mid(0.05)),
        BenchmarkModel::new("436.cactusADM", 0.9)
            .phase(simd_cactus(0.55))
            .phase(lm1(0.45)),
        BenchmarkModel::new("437.leslie3d", 1.0)
            .phase(lm7(0.40))
            .phase(lm1(0.40))
            .phase(streaming(0.20)),
        BenchmarkModel::new("444.namd", 1.1)
            .phase(lm1(0.97))
            .phase(simd_mid(0.03)),
        BenchmarkModel::new("447.dealII", 1.0)
            .phase(lm1(0.92))
            .phase(olp(0.08)),
        BenchmarkModel::new("450.soplex", 0.8)
            .phase(lm1(0.40))
            .phase(lm8(0.35))
            .phase(lm24(0.25)),
        BenchmarkModel::new("453.povray", 1.0)
            .phase(lm1(0.85))
            .phase(lm8(0.15)),
        BenchmarkModel::new("454.calculix", 1.1)
            .phase(lm1(0.93))
            .phase(lm7(0.07)),
        BenchmarkModel::new("459.GemsFDTD", 1.0)
            .phase(lm7(0.55))
            .phase(streaming(0.30))
            .phase(lm1(0.15)),
        BenchmarkModel::new("465.tonto", 1.0)
            .phase(lm1(0.80))
            .phase(lm7(0.20)),
        BenchmarkModel::new("470.lbm", 0.9)
            .phase(simd_lbm(0.55))
            .phase(streaming(0.25))
            .phase(lm1(0.20)),
        BenchmarkModel::new("481.wrf", 1.1)
            .phase(lm1(0.60))
            .phase(lm7(0.20))
            .phase(simd_mid(0.20)),
        BenchmarkModel::new("482.sphinx3", 0.9)
            .phase(split_load(0.72))
            .phase(lm1(0.28)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::{CostModel, Environment, Regime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_29_uniquely_named_benchmarks() {
        let bs = benchmarks();
        assert_eq!(bs.len(), N_BENCHMARKS);
        let mut names: Vec<&str> = bs.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_BENCHMARKS);
    }

    #[test]
    fn phase_weights_sum_to_one() {
        for b in benchmarks() {
            let total: f64 = b.phases().iter().map(|p| p.weight()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: phase weights sum to {total}",
                b.name()
            );
        }
    }

    #[test]
    fn hmmer_lands_in_lm1_regime() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let hmmer = bs.iter().find(|b| b.name() == "456.hmmer").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut lm1_count = 0;
        let n = 2000;
        for _ in 0..n {
            let phase = hmmer.pick_phase(&mut rng);
            let d = phase.sample_densities(&mut rng);
            if cm.regime(&d, Environment::SingleThreaded) == Regime::CpuLm1 {
                lm1_count += 1;
            }
        }
        let share = lm1_count as f64 / n as f64;
        assert!(share > 0.9, "hmmer LM1 share {share}");
    }

    #[test]
    fn sphinx_is_split_load_dominated() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let sphinx = bs.iter().find(|b| b.name() == "482.sphinx3").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut split_count = 0;
        let n = 2000;
        for _ in 0..n {
            let phase = sphinx.pick_phase(&mut rng);
            let d = phase.sample_densities(&mut rng);
            if cm.regime(&d, Environment::SingleThreaded) == Regime::CpuLm18 {
                split_count += 1;
            }
        }
        let share = split_count as f64 / n as f64;
        assert!((0.55..0.9).contains(&share), "sphinx LM18 share {share}");
    }

    #[test]
    fn omnetpp_has_high_mean_cpi() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let omnetpp = bs.iter().find(|b| b.name() == "471.omnetpp").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                let phase = omnetpp.pick_phase(&mut rng);
                let d = phase.sample_densities(&mut rng);
                cm.true_cpi(&d, Environment::SingleThreaded)
            })
            .sum::<f64>()
            / n as f64;
        // Paper: omnetpp's dominant class has "a relatively high CPI of
        // 2.1"; with the 20% LM1 phase the benchmark mean is a bit lower.
        assert!((1.5..2.4).contains(&mean), "omnetpp mean CPI {mean}");
    }

    #[test]
    fn mcf_and_namd_occupy_disjoint_regimes() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let mut rng = StdRng::seed_from_u64(4);
        let mut regime_share = |name: &str, regime: Regime| {
            let b = bs.iter().find(|b| b.name() == name).unwrap();
            let n = 1000;
            let mut hits = 0;
            for _ in 0..n {
                let phase = b.pick_phase(&mut rng);
                let d = phase.sample_densities(&mut rng);
                if cm.regime(&d, Environment::SingleThreaded) == regime {
                    hits += 1;
                }
            }
            hits as f64 / n as f64
        };
        assert!(regime_share("429.mcf", Regime::CpuLm1) < 0.1);
        assert!(regime_share("444.namd", Regime::CpuLm1) > 0.9);
    }
}
