//! Phase-based benchmark models.
//!
//! A benchmark is a weighted mixture of execution *phases*; each phase is
//! a joint distribution over the 19 Table I event densities (independent
//! truncated normals around phase-specific means). This mirrors how real
//! SPEC workloads traverse distinct program phases with characteristic
//! counter signatures — the phenomenon that makes interval sampling and
//! per-leaf behavior classes meaningful in the first place.

use mathkit::sampling::{truncated_normal, weighted_index};
use perfcounters::events::{EventId, N_EVENTS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of one event's per-instruction density within a phase:
/// a truncated normal with the given mean and coefficient of variation,
/// clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensitySpec {
    /// Mean per-instruction density.
    pub mean: f64,
    /// Coefficient of variation (sd / mean).
    pub cv: f64,
}

impl DensitySpec {
    /// Creates a spec; negative means are clamped to zero.
    pub fn new(mean: f64, cv: f64) -> Self {
        DensitySpec {
            mean: mean.max(0.0),
            cv: cv.max(0.0),
        }
    }

    /// Draws one density.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        truncated_normal(rng, self.mean, self.cv * self.mean, 0.0, 1.0)
    }
}

/// One execution phase: a name, a weight (share of the benchmark's
/// intervals), and a density spec per event.
///
/// # Examples
///
/// ```
/// use perfcounters::EventId;
/// use workloads::Phase;
///
/// let phase = Phase::new("tlb-walk", 0.4)
///     .with(EventId::DtlbMiss, 5e-4, 0.3)
///     .with(EventId::LdBlkStA, 9e-4, 0.3);
/// assert_eq!(phase.weight(), 0.4);
/// ```
/// How one event's density is drawn within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventSpec {
    /// Independent truncated normal.
    Independent(DensitySpec),
    /// Proportional to another (independent) event's drawn value:
    /// `density = ratio * source_density * noise`, with a truncated-normal
    /// noise factor of mean 1 and the given coefficient of variation.
    /// Used for physically coupled events — e.g. page walks occur while
    /// resolving DTLB misses, so `PageWalk ≈ ratio · DtlbMiss`.
    Linked {
        /// The independent event this one follows.
        source: EventId,
        /// Mean ratio of this event's density to the source's.
        ratio: f64,
        /// Coefficient of variation of the multiplicative noise.
        cv: f64,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    name: String,
    weight: f64,
    specs: Vec<EventSpec>,
}

impl Phase {
    /// Creates a phase with "quiet workload" default densities: a
    /// realistic scalar instruction mix, warm caches, and negligible rare
    /// events. Defaults place single-threaded samples in the paper's LM1
    /// regime and multi-threaded samples in the low-CPI scalar regime.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn new(name: &str, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "phase weight must be positive, got {weight}"
        );
        let mut specs = vec![EventSpec::Independent(DensitySpec::new(0.0, 0.0)); N_EVENTS];
        let defaults: [(EventId, f64, f64); 18] = [
            (EventId::Load, 0.28, 0.12),
            (EventId::Store, 0.10, 0.18),
            (EventId::MisprBr, 8e-4, 0.45),
            (EventId::Br, 0.18, 0.15),
            (EventId::L1DMiss, 8e-3, 0.35),
            (EventId::L1IMiss, 5e-4, 0.5),
            (EventId::L2Miss, 1.5e-4, 0.5),
            (EventId::DtlbMiss, 6e-5, 0.5),
            (EventId::LdBlkStA, 1.5e-4, 0.5),
            (EventId::LdBlkStd, 1.0e-4, 0.5),
            (EventId::LdBlkOlp, 3.0e-4, 0.6),
            (EventId::SplitLoad, 2.0e-4, 0.7),
            (EventId::SplitStore, 1.0e-4, 0.7),
            (EventId::Misalign, 2.0e-4, 0.7),
            (EventId::Div, 1.0e-3, 0.5),
            (EventId::Mul, 1.0e-2, 0.5),
            (EventId::FpAsst, 1.0e-6, 1.0),
            (EventId::Simd, 2.0e-2, 0.7),
        ];
        for (e, mean, cv) in defaults {
            specs[e.index()] = EventSpec::Independent(DensitySpec::new(mean, cv));
        }
        // Page walks occur while resolving DTLB misses: by default they
        // track the DTLB miss density.
        specs[EventId::PageWalk.index()] = EventSpec::Linked {
            source: EventId::DtlbMiss,
            ratio: 0.95,
            cv: 0.15,
        };
        Phase {
            name: name.to_owned(),
            weight,
            specs,
        }
    }

    /// Overrides one event's density distribution (builder style).
    #[must_use]
    pub fn with(mut self, event: EventId, mean: f64, cv: f64) -> Self {
        self.specs[event.index()] = EventSpec::Independent(DensitySpec::new(mean, cv));
        self
    }

    /// Scales the mean densities of the given (independent) events by
    /// `factor`, leaving their coefficients of variation unchanged.
    /// Linked events follow their sources automatically. Used to model
    /// smaller input sets (lower memory pressure) without redefining
    /// phases.
    #[must_use]
    pub fn with_scaled(mut self, events: &[EventId], factor: f64) -> Self {
        let factor = factor.max(0.0);
        for e in events {
            if let EventSpec::Independent(spec) = self.specs[e.index()] {
                self.specs[e.index()] =
                    EventSpec::Independent(DensitySpec::new(spec.mean * factor, spec.cv));
            }
        }
        self
    }

    /// Makes `event` proportional to `source`'s drawn value:
    /// `density = ratio * source * noise(1, cv)` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `source` is itself linked (chains are not supported) or
    /// if `event == source`.
    #[must_use]
    pub fn with_linked(mut self, event: EventId, source: EventId, ratio: f64, cv: f64) -> Self {
        assert_ne!(event, source, "an event cannot be linked to itself");
        assert!(
            matches!(self.specs[source.index()], EventSpec::Independent(_)),
            "link source {} must be an independent event",
            source.short_name()
        );
        self.specs[event.index()] = EventSpec::Linked {
            source,
            ratio: ratio.max(0.0),
            cv: cv.max(0.0),
        };
        self
    }

    /// Phase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mixture weight (share of the benchmark's intervals).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The spec for one event.
    pub fn spec(&self, event: EventId) -> EventSpec {
        self.specs[event.index()]
    }

    /// The *effective* mean density of one event (for linked events, the
    /// ratio times the source's mean).
    pub fn mean_density(&self, event: EventId) -> f64 {
        match self.specs[event.index()] {
            EventSpec::Independent(spec) => spec.mean,
            EventSpec::Linked { source, ratio, .. } => match self.specs[source.index()] {
                EventSpec::Independent(spec) => ratio * spec.mean,
                EventSpec::Linked { .. } => 0.0, // unreachable by construction
            },
        }
    }

    /// Draws a full true-density vector for one interval: independent
    /// events first, then linked events from their sources' drawn values.
    pub fn sample_densities<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; N_EVENTS] {
        let mut out = [0.0; N_EVENTS];
        for (slot, spec) in out.iter_mut().zip(&self.specs) {
            if let EventSpec::Independent(d) = spec {
                *slot = d.sample(rng);
            }
        }
        for i in 0..N_EVENTS {
            if let EventSpec::Linked { source, ratio, cv } = self.specs[i] {
                let factor = truncated_normal(rng, 1.0, cv, 0.0, 3.0);
                out[i] = (ratio * out[source.index()] * factor).clamp(0.0, 1.0);
            }
        }
        out
    }
}

/// A benchmark: a name, an instruction-count weight (its share of the
/// suite's total instructions, hence of the suite's samples), and its
/// phase mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkModel {
    name: String,
    weight: f64,
    phases: Vec<Phase>,
}

impl BenchmarkModel {
    /// Creates an empty benchmark model.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn new(name: &str, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "benchmark weight must be positive, got {weight}"
        );
        BenchmarkModel {
            name: name.to_owned(),
            weight,
            phases: Vec::new(),
        }
    }

    /// Adds a phase (builder style).
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Benchmark name (e.g. `"429.mcf"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instruction-count weight within its suite.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Picks a phase according to the mixture weights.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark has no phases.
    pub fn pick_phase<R: Rng + ?Sized>(&self, rng: &mut R) -> &Phase {
        assert!(
            !self.phases.is_empty(),
            "benchmark {} has no phases",
            self.name
        );
        let weights: Vec<f64> = self.phases.iter().map(Phase::weight).collect();
        &self.phases[weighted_index(rng, &weights)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_are_quiet() {
        let p = Phase::new("base", 1.0);
        assert!(p.mean_density(EventId::DtlbMiss) < 1e-4);
        assert!(p.mean_density(EventId::Load) > 0.1);
    }

    #[test]
    fn with_overrides_single_event() {
        let p = Phase::new("x", 1.0).with(EventId::Simd, 0.8, 0.1);
        assert_eq!(p.mean_density(EventId::Simd), 0.8);
        assert!(p.mean_density(EventId::Load) > 0.1); // untouched default
    }

    #[test]
    fn sampled_densities_in_unit_interval() {
        let p = Phase::new("x", 1.0).with(EventId::Simd, 0.95, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let d = p.sample_densities(&mut rng);
            assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn sampled_mean_tracks_spec() {
        let p = Phase::new("x", 1.0).with(EventId::L2Miss, 5e-4, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| p.sample_densities(&mut rng)[EventId::L2Miss.index()])
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5e-4).abs() / 5e-4 < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_mean_samples_exactly_zero() {
        let p = Phase::new("x", 1.0).with(EventId::FpAsst, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.sample_densities(&mut rng)[EventId::FpAsst.index()], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn phase_rejects_bad_weight() {
        let _ = Phase::new("x", 0.0);
    }

    #[test]
    fn pick_phase_follows_weights() {
        let b = BenchmarkModel::new("b", 1.0)
            .phase(Phase::new("a", 0.9))
            .phase(Phase::new("b", 0.1));
        let mut rng = StdRng::seed_from_u64(4);
        let mut a_count = 0;
        for _ in 0..5000 {
            if b.pick_phase(&mut rng).name() == "a" {
                a_count += 1;
            }
        }
        let share = a_count as f64 / 5000.0;
        assert!((share - 0.9).abs() < 0.03, "share {share}");
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn pick_phase_requires_phases() {
        let b = BenchmarkModel::new("empty", 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = b.pick_phase(&mut rng);
    }

    #[test]
    fn density_spec_clamps_negative_mean() {
        let s = DensitySpec::new(-1.0, 0.5);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn linked_event_tracks_source() {
        let p = Phase::new("x", 1.0)
            .with(EventId::DtlbMiss, 5e-4, 0.3)
            .with_linked(EventId::PageWalk, EventId::DtlbMiss, 0.9, 0.1);
        assert!((p.mean_density(EventId::PageWalk) - 4.5e-4).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(6);
        // Correlation between the pair should be very high.
        let n = 3000;
        let mut dtlb = Vec::with_capacity(n);
        let mut pw = Vec::with_capacity(n);
        for _ in 0..n {
            let d = p.sample_densities(&mut rng);
            dtlb.push(d[EventId::DtlbMiss.index()]);
            pw.push(d[EventId::PageWalk.index()]);
        }
        let c = mathkit::describe::correlation(&dtlb, &pw).unwrap();
        assert!(c > 0.9, "correlation {c}");
        let mean_pw: f64 = pw.iter().sum::<f64>() / n as f64;
        assert!((mean_pw / 4.5e-4 - 1.0).abs() < 0.05, "mean {mean_pw}");
    }

    #[test]
    #[should_panic(expected = "independent")]
    fn chained_links_rejected() {
        let _ = Phase::new("x", 1.0)
            .with(EventId::DtlbMiss, 5e-4, 0.3)
            .with_linked(EventId::PageWalk, EventId::DtlbMiss, 0.9, 0.1)
            .with_linked(EventId::FpAsst, EventId::PageWalk, 0.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "linked to itself")]
    fn self_link_rejected() {
        let _ = Phase::new("x", 1.0).with_linked(EventId::Div, EventId::Div, 1.0, 0.1);
    }
}
