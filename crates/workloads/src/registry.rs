//! Generation-parameterized suite registry.
//!
//! The paper studies exactly two suites, and early versions of this
//! repository hardcoded that pair everywhere. The registry dissolves
//! that: a [`SuiteDef`] is a declarative description of one benchmark
//! suite (identifier, display name, generation year, execution
//! environment, benchmark-model constructor), and the
//! [`SuiteRegistry`] is the ordered collection every layer above —
//! pipeline specs, the transfer matrix, the CLI — resolves suites
//! from. Adding a suite is now one `SuiteDef` plus a benchmark module;
//! nothing downstream enumerates suites by hand.
//!
//! The built-in registry spans three SPEC CPU generations plus the
//! paper's multi-threaded suite:
//!
//! | tag       | generation | environment     | benchmarks |
//! |-----------|------------|-----------------|------------|
//! | `cpu2006` | 2006       | single-threaded | 29         |
//! | `omp2001` | 2001       | multi-threaded  | 11         |
//! | `cpu2017` | 2017       | single-threaded | 23         |
//! | `cpu2026` | 2026       | single-threaded | 15         |
//!
//! `legacy_token` exists for the artifact store: the two original
//! suites were fingerprinted by the literal strings `"cpu2006"` /
//! `"omp2001"` before the registry existed, and those tokens are
//! frozen so every pre-registry cache key and golden snapshot stays
//! bit-stable. New suites carry no token and are fingerprinted by
//! content (see `pipeline::fingerprint::suite_def_fingerprint`).

use crate::costmodel::Environment;
use crate::generator::Suite;
use crate::phases::BenchmarkModel;
use std::sync::OnceLock;

/// Declarative description of one benchmark suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteDef {
    /// Stable lowercase identifier; the CLI `--suite` value and the
    /// registry lookup key.
    pub tag: &'static str,
    /// Human-readable suite name (dataset labels, report headers).
    pub display_name: &'static str,
    /// Benchmark-suite generation year (2001, 2006, 2017, 2026).
    pub generation: u16,
    /// Execution environment shared by the suite's benchmarks.
    pub environment: Environment,
    /// Constructor of the suite's benchmark models.
    pub benchmarks: fn() -> Vec<BenchmarkModel>,
    /// Frozen pre-registry fingerprint token. `Some` only for the two
    /// original suites whose artifact-store keys predate the registry;
    /// never assign one to a new suite.
    pub legacy_token: Option<&'static str>,
}

impl SuiteDef {
    /// Builds the concrete [`Suite`] this definition describes.
    pub fn materialize(&self) -> Suite {
        Suite::new(self.display_name, self.environment, (self.benchmarks)())
    }
}

/// The synthetic SPEC CPU2006 suite (29 benchmarks, single-threaded).
pub static CPU2006: SuiteDef = SuiteDef {
    tag: "cpu2006",
    display_name: "SPEC CPU2006",
    generation: 2006,
    environment: Environment::SingleThreaded,
    benchmarks: crate::cpu2006::benchmarks,
    legacy_token: Some("cpu2006"),
};

/// The synthetic SPEC OMP2001 medium suite (11 benchmarks,
/// multi-threaded).
pub static OMP2001: SuiteDef = SuiteDef {
    tag: "omp2001",
    display_name: "SPEC OMP2001",
    generation: 2001,
    environment: Environment::MultiThreaded,
    benchmarks: crate::omp2001::benchmarks,
    legacy_token: Some("omp2001"),
};

/// The synthetic SPEC CPU2017 rate suite (23 benchmarks,
/// single-threaded).
pub static CPU2017: SuiteDef = SuiteDef {
    tag: "cpu2017",
    display_name: "SPEC CPU2017",
    generation: 2017,
    environment: Environment::SingleThreaded,
    benchmarks: crate::cpu2017::benchmarks,
    legacy_token: None,
};

/// The forward-looking synthetic CPU2026-style suite (15 benchmarks,
/// single-threaded, wide-SIMD and large-footprint regimes).
pub static CPU2026: SuiteDef = SuiteDef {
    tag: "cpu2026",
    display_name: "SPEC CPU2026",
    generation: 2026,
    environment: Environment::SingleThreaded,
    benchmarks: crate::cpu2026::benchmarks,
    legacy_token: None,
};

/// An ordered collection of [`SuiteDef`]s, looked up by tag.
#[derive(Debug, Clone)]
pub struct SuiteRegistry {
    defs: Vec<&'static SuiteDef>,
}

impl SuiteRegistry {
    /// Builds a registry from explicit definitions (tests compose
    /// ad-hoc registries to prove insertion-order invariance).
    ///
    /// # Panics
    ///
    /// Panics on duplicate tags — a registry where `by_tag` is
    /// ambiguous would silently alias artifacts.
    pub fn new(defs: Vec<&'static SuiteDef>) -> Self {
        for (i, a) in defs.iter().enumerate() {
            for b in &defs[i + 1..] {
                assert!(a.tag != b.tag, "duplicate suite tag {:?}", a.tag);
            }
        }
        SuiteRegistry { defs }
    }

    /// The built-in registry, in generation order of first release.
    pub fn builtin() -> Self {
        SuiteRegistry::new(vec![&OMP2001, &CPU2006, &CPU2017, &CPU2026])
    }

    /// The process-wide built-in registry.
    pub fn global() -> &'static SuiteRegistry {
        static GLOBAL: OnceLock<SuiteRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SuiteRegistry::builtin)
    }

    /// Looks a definition up by its tag.
    pub fn by_tag(&self, tag: &str) -> Option<&'static SuiteDef> {
        self.defs.iter().copied().find(|d| d.tag == tag)
    }

    /// All definitions, in registry order.
    pub fn defs(&self) -> &[&'static SuiteDef] {
        &self.defs
    }

    /// All registered tags, in registry order.
    pub fn tags(&self) -> Vec<&'static str> {
        self.defs.iter().map(|d| d.tag).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_four_suites_in_generation_order() {
        let reg = SuiteRegistry::builtin();
        assert_eq!(reg.tags(), ["omp2001", "cpu2006", "cpu2017", "cpu2026"]);
        let generations: Vec<u16> = reg.defs().iter().map(|d| d.generation).collect();
        assert_eq!(generations, [2001, 2006, 2017, 2026]);
    }

    #[test]
    fn by_tag_resolves_every_builtin_and_rejects_unknowns() {
        let reg = SuiteRegistry::global();
        for tag in reg.tags() {
            let def = reg.by_tag(tag).expect("registered tag resolves");
            assert_eq!(def.tag, tag);
        }
        assert!(reg.by_tag("spec95").is_none());
    }

    #[test]
    fn only_legacy_suites_carry_legacy_tokens() {
        assert_eq!(CPU2006.legacy_token, Some("cpu2006"));
        assert_eq!(OMP2001.legacy_token, Some("omp2001"));
        assert_eq!(CPU2017.legacy_token, None);
        assert_eq!(CPU2026.legacy_token, None);
    }

    #[test]
    fn materialize_matches_legacy_constructors() {
        assert_eq!(CPU2006.materialize(), Suite::cpu2006());
        assert_eq!(OMP2001.materialize(), Suite::omp2001());
    }

    #[test]
    fn every_builtin_suite_materializes_nonempty() {
        for def in SuiteRegistry::global().defs() {
            let suite = def.materialize();
            assert!(!suite.benchmarks().is_empty(), "{} empty", def.tag);
            assert_eq!(suite.name(), def.display_name);
            assert_eq!(suite.environment(), def.environment);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate suite tag")]
    fn duplicate_tags_rejected() {
        let _ = SuiteRegistry::new(vec![&CPU2006, &CPU2006]);
    }
}
