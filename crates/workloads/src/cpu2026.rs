//! Synthetic models of a forward-looking SPEC CPU2026-style suite
//! (15 benchmarks).
//!
//! Two generations past the paper, the workload mix the SPEC CPU2026
//! characterization literature describes is qualitatively different:
//! ML-adjacent and media kernels push the vectorized share far beyond
//! 2006 levels, and data-intensive footprints (graph stores, columnar
//! scans) drive DTLB and last-level-cache pressure deep past the
//! densities the 2006 suite ever visits. The phase mixtures below
//! concentrate the suite in exactly those regions — the wide-SIMD
//! plateaus and the heavy-DTLB/L3 regime at 2–3× its 2006 densities —
//! so a CPU2006-trained model must extrapolate where it has almost no
//! training mass. This is the "far generation" point on the
//! transfer-decay curve.

use crate::phases::{BenchmarkModel, Phase};
use perfcounters::events::EventId::*;

/// Number of benchmarks in the CPU2026-style suite.
pub const N_BENCHMARKS: usize = 15;

/// Quiet compute, 2026 flavor: even "quiet" code carries a vectorized
/// share and a footprint near the DTLB regime boundary.
fn quiet(weight: f64) -> Phase {
    Phase::new("quiet26", weight)
        .with(DtlbMiss, 1.6e-4, 0.5)
        .with(L2Miss, 2.6e-4, 0.5)
        .with(Simd, 0.15, 0.4)
}

/// Large-footprint data traversal: DTLB and L3 pressure at 2–3× the
/// densities 471.omnetpp reached in 2006 (deep in the LM24 regime).
fn footprint(weight: f64) -> Phase {
    Phase::new("footprint26", weight)
        .with(DtlbMiss, 2.2e-3, 0.2)
        .with(L2Miss, 1.8e-3, 0.2)
        .with(LdBlkOlp, 3.0e-3, 0.35)
        .with(Br, 0.25, 0.1)
}

/// Streaming scans over huge working sets: straddles the
/// heavy-DTLB boundary between the streaming plateau and LM24.
fn tlb_stream(weight: f64) -> Phase {
    Phase::new("tlb-stream26", weight)
        .with(DtlbMiss, 9.0e-4, 0.3)
        .with(L2Miss, 1.3e-3, 0.25)
        .with(Simd, 0.12, 0.5)
}

/// Wide-vector kernels living on the SIMD plateau (densities past the
/// 91% cactusADM threshold with almost no scalar residue).
fn wide_simd(weight: f64) -> Phase {
    Phase::new("wide-simd26", weight)
        .with(DtlbMiss, 3.5e-4, 0.25)
        .with(L2Miss, 8.0e-4, 0.25)
        .with(Simd, 0.95, 0.01)
}

/// Vector streaming with overlapped stores at post-2006 densities
/// (the LM5 regime extrapolated well past 470.lbm's event rates).
fn simd_stream(weight: f64) -> Phase {
    Phase::new("simd-stream26", weight)
        .with(DtlbMiss, 3.0e-4, 0.2)
        .with(L2Miss, 1.1e-3, 0.25)
        .with(Simd, 0.86, 0.025)
        .with(LdBlkOlp, 7.0e-3, 0.3)
}

/// Mid-SIMD compute over large pages under DTLB pressure (the LM10
/// regime with a heavier vector share than any 2006 member).
fn simd_tlb(weight: f64) -> Phase {
    Phase::new("simd-tlb26", weight)
        .with(DtlbMiss, 6.0e-4, 0.25)
        .with(L2Miss, 3.0e-4, 0.3)
        .with(Simd, 0.72, 0.06)
}

/// Store-address blocking under DTLB pressure at 2026 densities (the
/// LM7 regime, heavier than its 2006 instances).
fn sta(weight: f64) -> Phase {
    Phase::new("sta26", weight)
        .with(DtlbMiss, 6.0e-4, 0.3)
        .with(LdBlkStA, 1.3e-3, 0.3)
        .with(MisprBr, 1.0e-4, 0.4)
        .with(L2Miss, 4.2e-4, 0.15)
        .with(SplitStore, 1.6e-3, 0.4)
}

/// The 15 benchmark models of the CPU2026-style suite, with
/// instruction-count weights (their share of the suite's samples).
pub fn benchmarks() -> Vec<BenchmarkModel> {
    vec![
        // --- data-intensive integer benchmarks ---
        BenchmarkModel::new("901.graphdb_r", 0.8)
            .phase(footprint(0.70))
            .phase(tlb_stream(0.30)),
        BenchmarkModel::new("905.columnar_r", 0.9)
            .phase(tlb_stream(0.55))
            .phase(footprint(0.25))
            .phase(quiet(0.20)),
        BenchmarkModel::new("909.pathfind_r", 0.9)
            .phase(footprint(0.45))
            .phase(quiet(0.35))
            .phase(sta(0.20)),
        BenchmarkModel::new("913.simjit_r", 1.0)
            .phase(quiet(0.55))
            .phase(sta(0.30))
            .phase(tlb_stream(0.15)),
        BenchmarkModel::new("917.protoserde_r", 1.0)
            .phase(quiet(0.45))
            .phase(sta(0.35))
            .phase(simd_tlb(0.20)),
        // --- vector / ML-adjacent benchmarks ---
        BenchmarkModel::new("921.dnninfer_r", 1.2)
            .phase(wide_simd(0.65))
            .phase(simd_tlb(0.25))
            .phase(quiet(0.10)),
        BenchmarkModel::new("925.gnnprop_r", 0.9)
            .phase(simd_tlb(0.40))
            .phase(footprint(0.35))
            .phase(wide_simd(0.25)),
        BenchmarkModel::new("929.fluidx_r", 1.0)
            .phase(simd_stream(0.60))
            .phase(tlb_stream(0.25))
            .phase(quiet(0.15)),
        BenchmarkModel::new("933.weatherx_r", 1.1)
            .phase(simd_stream(0.40))
            .phase(sta(0.30))
            .phase(simd_tlb(0.30)),
        BenchmarkModel::new("937.raytrace_r", 1.1)
            .phase(simd_tlb(0.50))
            .phase(quiet(0.30))
            .phase(wide_simd(0.20)),
        BenchmarkModel::new("941.genomics_r", 0.9)
            .phase(tlb_stream(0.40))
            .phase(simd_tlb(0.35))
            .phase(footprint(0.25)),
        BenchmarkModel::new("945.femsolve_r", 1.0)
            .phase(simd_stream(0.45))
            .phase(sta(0.35))
            .phase(quiet(0.20)),
        BenchmarkModel::new("949.latticeqcd_r", 1.0)
            .phase(wide_simd(0.55))
            .phase(simd_stream(0.30))
            .phase(quiet(0.15)),
        BenchmarkModel::new("953.vecsearch_r", 0.9)
            .phase(simd_tlb(0.45))
            .phase(tlb_stream(0.35))
            .phase(wide_simd(0.20)),
        BenchmarkModel::new("957.videotrans_r", 1.1)
            .phase(simd_tlb(0.45))
            .phase(simd_stream(0.30))
            .phase(quiet(0.25)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::{CostModel, Environment, Regime};
    use perfcounters::events::EventId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_15_uniquely_named_benchmarks() {
        let bs = benchmarks();
        assert_eq!(bs.len(), N_BENCHMARKS);
        let mut names: Vec<&str> = bs.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_BENCHMARKS);
    }

    #[test]
    fn phase_weights_sum_to_one() {
        for b in benchmarks() {
            let total: f64 = b.phases().iter().map(|p| p.weight()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: phase weights sum to {total}",
                b.name()
            );
        }
    }

    #[test]
    fn graphdb_lives_deep_in_the_heavy_dtlb_regime() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let b = bs.iter().find(|b| b.name() == "901.graphdb_r").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let mut lm24 = 0;
        let mut cpi_sum = 0.0;
        for _ in 0..n {
            let d = b.pick_phase(&mut rng).sample_densities(&mut rng);
            if cm.regime(&d, Environment::SingleThreaded) == Regime::CpuLm24 {
                lm24 += 1;
            }
            cpi_sum += cm.true_cpi(&d, Environment::SingleThreaded);
        }
        let share = lm24 as f64 / n as f64;
        assert!(share > 0.6, "graphdb LM24 share {share}");
        // Well past omnetpp's 2.1: CPI the 2006 suite never produced.
        let mean = cpi_sum / n as f64;
        assert!(mean > 2.4, "graphdb mean CPI {mean}");
    }

    #[test]
    fn vector_share_far_exceeds_cpu2006() {
        let mean_simd = |bs: &[BenchmarkModel]| {
            let total: f64 = bs
                .iter()
                .map(|b| {
                    b.phases()
                        .iter()
                        .map(|p| p.weight() * p.mean_density(EventId::Simd))
                        .sum::<f64>()
                })
                .sum();
            total / bs.len() as f64
        };
        let s2026 = mean_simd(&benchmarks());
        let s2006 = mean_simd(&crate::cpu2006::benchmarks());
        assert!(s2026 > 2.0 * s2006, "simd share {s2026} vs 2006 {s2006}");
    }

    #[test]
    fn generation_shift_is_monotone_in_mean_cpi() {
        let cm = CostModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mean_cpi = |bs: &[BenchmarkModel]| {
            let n = 400;
            let total: f64 = bs
                .iter()
                .map(|b| {
                    (0..n)
                        .map(|_| {
                            let d = b.pick_phase(&mut rng).sample_densities(&mut rng);
                            cm.true_cpi(&d, Environment::SingleThreaded)
                        })
                        .sum::<f64>()
                })
                .sum();
            total / (n * bs.len()) as f64
        };
        let c2006 = mean_cpi(&crate::cpu2006::benchmarks());
        let c2017 = mean_cpi(&crate::cpu2017::benchmarks());
        let c2026 = mean_cpi(&benchmarks());
        assert!(
            c2006 < c2017 && c2017 < c2026,
            "means not monotone: {c2006} / {c2017} / {c2026}"
        );
        assert!(
            c2026 > c2006 + 0.25,
            "2026 shift too small: {c2026} vs {c2006}"
        );
    }
}
