//! Synthetic models of the 11 SPEC OMP2001 (medium) benchmarks.
//!
//! Phase mixtures follow the paper's Section V narrative: 314.mgrid_m and
//! 332.ammp_m spend three quarters of their time in the
//! load-block-overlap regime LM17; 328.fma3d_m and 318.galgel_m fall
//! almost entirely into the store-rich LM18; 316.applu_m is SIMD+multiply
//! heavy (LM16, high CPI); 320.equake_m is dominated by the branchy
//! L2-bound LM14; 330.art_m is a low-CPI (≈0.53) scalar benchmark; and
//! 312.swim_m / 310.wupwise_m are spread over the SIMD subtree.

use crate::phases::{BenchmarkModel, Phase};
use perfcounters::events::EventId::*;

/// Number of benchmarks in SPEC OMP2001 (medium).
pub const N_BENCHMARKS: usize = 11;

/// Quiet scalar phase: the LM3 regime (CPI 0.53).
fn quiet(weight: f64) -> Phase {
    Phase::new("quiet", weight)
        .with(MisprBr, 4.0e-4, 0.4)
        .with(Mul, 3.0e-2, 0.6)
}

/// Scalar, store-sensitive, branchy phase: the LM2 regime.
fn store_branchy(weight: f64) -> Phase {
    Phase::new("store-branchy", weight)
        .with(MisprBr, 2.0e-3, 0.3)
        .with(Store, 0.12, 0.15)
        .with(Mul, 4.0e-2, 0.6)
}

/// Scalar, L2-bound, misalignment-sensitive phase: the LM6 regime.
fn misalign_l2(weight: f64) -> Phase {
    Phase::new("misalign-l2", weight)
        .with(L2Miss, 9.0e-4, 0.25)
        .with(MisprBr, 4.0e-4, 0.4)
        .with(L1DMiss, 1.5e-2, 0.3)
        .with(Misalign, 2.0e-3, 0.4)
        .with(Mul, 5.0e-2, 0.6)
}

/// Scalar, L2-bound, branchy phase (320.equake_m's LM14 regime).
fn branchy_l2(weight: f64) -> Phase {
    Phase::new("branchy-l2", weight)
        .with(L2Miss, 9.0e-4, 0.25)
        .with(MisprBr, 5.0e-3, 0.3)
        .with(L1DMiss, 1.0e-2, 0.3)
        .with(Mul, 4.0e-2, 0.6)
}

/// Load-block-overlap with moderate stores: the LM17 regime (CPI ≈ 1.16).
fn overlap_moderate(weight: f64) -> Phase {
    Phase::new("overlap-moderate", weight)
        .with(LdBlkOlp, 1.2e-2, 0.25)
        .with(Store, 0.05, 0.2)
        .with(L1DMiss, 1.2e-2, 0.3)
        .with(LdBlkStA, 1.0e-3, 0.35)
        .with(PageWalk, 2.0e-4, 0.4)
        .with(Br, 0.12, 0.12)
        .with(Mul, 6.0e-2, 0.6)
}

/// Load-block-overlap with heavy stores: the LM18 regime (CPI ≈ 1.49).
fn overlap_stores(weight: f64) -> Phase {
    Phase::new("overlap-stores", weight)
        .with(LdBlkOlp, 1.5e-2, 0.25)
        .with(Store, 0.11, 0.1)
        .with(DtlbMiss, 2.0e-3, 0.3)
        .with_linked(PageWalk, DtlbMiss, 2.5, 0.2)
        .with(Div, 1.0e-3, 0.5)
        .with(Mul, 6.0e-2, 0.6)
}

/// SIMD + multiply heavy compute: 316.applu_m's LM16 regime (CPI ≈ 2.5).
fn simd_mul(weight: f64) -> Phase {
    Phase::new("simd-mul", weight)
        .with(Simd, 0.70, 0.06)
        .with(Mul, 0.12, 0.2)
        .with(L1DMiss, 1.2e-2, 0.25)
        .with(Br, 0.12, 0.12)
}

/// SIMD with misaligned operands: the LM11 plateau (CPI 2.79).
fn simd_misalign(weight: f64) -> Phase {
    Phase::new("simd-misalign", weight)
        .with(Simd, 0.55, 0.1)
        .with(Mul, 1.0e-2, 0.4)
        .with(Misalign, 5.0e-3, 0.3)
}

/// SIMD with store-address blocks: the LM15 regime.
fn simd_sta(weight: f64) -> Phase {
    Phase::new("simd-sta", weight)
        .with(Simd, 0.55, 0.1)
        .with(Mul, 1.0e-2, 0.4)
        .with(LdBlkStA, 2.0e-3, 0.3)
        .with(PageWalk, 2.0e-4, 0.4)
}

/// Plain SIMD streaming: the LM13 regime (swim/mgrid style).
fn simd_stream(weight: f64) -> Phase {
    Phase::new("simd-stream", weight)
        .with(Simd, 0.70, 0.06)
        .with(Mul, 2.0e-2, 0.4)
}

/// The 11 benchmark models of SPEC OMP2001 (medium input set).
pub fn benchmarks() -> Vec<BenchmarkModel> {
    vec![
        BenchmarkModel::new("310.wupwise_m", 1.1)
            .phase(quiet(0.15))
            .phase(store_branchy(0.20))
            .phase(misalign_l2(0.25))
            .phase(simd_stream(0.20))
            .phase(simd_misalign(0.10))
            .phase(overlap_moderate(0.10)),
        BenchmarkModel::new("312.swim_m", 1.0)
            .phase(simd_stream(0.75))
            .phase(simd_mul(0.15))
            .phase(overlap_moderate(0.10)),
        BenchmarkModel::new("314.mgrid_m", 1.1)
            .phase(overlap_moderate(0.85))
            .phase(simd_stream(0.12))
            .phase(quiet(0.03)),
        BenchmarkModel::new("316.applu_m", 1.0)
            .phase(simd_mul(0.75))
            .phase(simd_stream(0.12))
            .phase(simd_sta(0.08))
            .phase(quiet(0.05)),
        BenchmarkModel::new("318.galgel_m", 0.9)
            .phase(overlap_stores(0.95))
            .phase(quiet(0.05)),
        BenchmarkModel::new("320.equake_m", 1.0)
            .phase(branchy_l2(0.54))
            .phase(misalign_l2(0.09))
            .phase(simd_stream(0.09))
            .phase(overlap_moderate(0.09))
            .phase(overlap_stores(0.09))
            .phase(quiet(0.10)),
        BenchmarkModel::new("324.apsi_m", 1.0)
            .phase(overlap_moderate(0.80))
            .phase(simd_sta(0.12))
            .phase(quiet(0.08)),
        BenchmarkModel::new("326.gafort_m", 1.0)
            .phase(store_branchy(0.50))
            .phase(quiet(0.30))
            .phase(overlap_moderate(0.20)),
        BenchmarkModel::new("328.fma3d_m", 1.1)
            .phase(overlap_stores(0.98))
            .phase(quiet(0.02)),
        BenchmarkModel::new("330.art_m", 0.9)
            .phase(quiet(0.90))
            .phase(store_branchy(0.10)),
        BenchmarkModel::new("332.ammp_m", 1.0)
            .phase(overlap_moderate(0.80))
            .phase(simd_sta(0.12))
            .phase(quiet(0.08)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::{CostModel, Environment, Regime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn regime_share(name: &str, regime: Regime, seed: u64) -> f64 {
        let cm = CostModel::default();
        let bs = benchmarks();
        let b = bs.iter().find(|b| b.name() == name).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2000;
        let mut hits = 0;
        for _ in 0..n {
            let phase = b.pick_phase(&mut rng);
            let d = phase.sample_densities(&mut rng);
            if cm.regime(&d, Environment::MultiThreaded) == regime {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn has_11_uniquely_named_benchmarks() {
        let bs = benchmarks();
        assert_eq!(bs.len(), N_BENCHMARKS);
        let mut names: Vec<&str> = bs.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_BENCHMARKS);
        assert!(names.iter().all(|n| n.ends_with("_m")));
    }

    #[test]
    fn phase_weights_sum_to_one() {
        for b in benchmarks() {
            let total: f64 = b.phases().iter().map(|p| p.weight()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: phase weights sum to {total}",
                b.name()
            );
        }
    }

    #[test]
    fn fma3d_is_lm18_dominated() {
        // Paper: "Over 95% of the execution time of ... 328.fma3d_m ...
        // falls into this class [LM18]".
        let share = regime_share("328.fma3d_m", Regime::OmpLm18, 1);
        assert!(share > 0.9, "fma3d LM18 share {share}");
    }

    #[test]
    fn mgrid_is_lm17_dominated() {
        // Paper: "Three quarters of the execution time of ...
        // 314.mgrid_m ... falls into LM17".
        let share = regime_share("314.mgrid_m", Regime::OmpLm17, 2);
        assert!((0.6..0.9).contains(&share), "mgrid LM17 share {share}");
    }

    #[test]
    fn art_is_low_cpi() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let art = bs.iter().find(|b| b.name() == "330.art_m").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                let phase = art.pick_phase(&mut rng);
                let d = phase.sample_densities(&mut rng);
                cm.true_cpi(&d, Environment::MultiThreaded)
            })
            .sum::<f64>()
            / n as f64;
        // Paper: art is "a low CPI (0.53) benchmark".
        assert!((0.4..0.75).contains(&mean), "art mean CPI {mean}");
    }

    #[test]
    fn applu_is_high_cpi_simd() {
        let cm = CostModel::default();
        let bs = benchmarks();
        let applu = bs.iter().find(|b| b.name() == "316.applu_m").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                let phase = applu.pick_phase(&mut rng);
                let d = phase.sample_densities(&mut rng);
                cm.true_cpi(&d, Environment::MultiThreaded)
            })
            .sum::<f64>()
            / n as f64;
        // Paper: "The average CPI of 1.99 is high due to the high average
        // CPI from LM16."
        assert!((1.55..2.4).contains(&mean), "applu mean CPI {mean}");
    }

    #[test]
    fn galgel_lm18_share_high() {
        let share = regime_share("318.galgel_m", Regime::OmpLm18, 5);
        assert!(share > 0.85, "galgel LM18 share {share}");
    }
}
