//! Time-ordered execution traces.
//!
//! The paper's samples are *consecutive* 2M-instruction intervals of a
//! benchmark's execution: phases appear as temporal runs, not as i.i.d.
//! draws. This module generates such traces with a Markov phase process —
//! each interval either stays in the current phase or re-draws a phase
//! from the mixture — whose stationary distribution equals the
//! benchmark's phase weights, so aggregate statistics match
//! [`Suite::generate`](crate::generator::Suite::generate) while the
//! temporal structure (phase runs, CPI time series) becomes available for
//! phase-oriented analyses.

use crate::costmodel::Environment;
use crate::generator::{GeneratorConfig, Suite};
use crate::phases::BenchmarkModel;
use mathkit::sampling::weighted_index;
use perfcounters::counters::CounterBank;
use perfcounters::{Dataset, Sample};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Markov phase process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Expected number of consecutive intervals spent in a phase before
    /// re-drawing (geometric run lengths). The paper's workloads dwell in
    /// phases for long stretches; 50 intervals (100M instructions) is a
    /// realistic default.
    pub mean_run_length: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mean_run_length: 50.0,
        }
    }
}

/// A time-ordered trace of measured intervals from one benchmark, with
/// ground-truth phase labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    benchmark: String,
    samples: Vec<Sample>,
    phase_indices: Vec<usize>,
    phase_names: Vec<String>,
}

impl Trace {
    /// The benchmark this trace came from.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The measured samples, in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Ground-truth phase index of each interval (indexes into
    /// [`Trace::phase_names`]).
    pub fn phase_indices(&self) -> &[usize] {
        &self.phase_indices
    }

    /// Phase names, in the benchmark model's phase order.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// The CPI time series.
    pub fn cpi_series(&self) -> Vec<f64> {
        self.samples.iter().map(Sample::cpi).collect()
    }

    /// Run-length encoding of the phase sequence: `(phase index, run
    /// length)` in time order.
    pub fn phase_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        for &p in &self.phase_indices {
            match runs.last_mut() {
                Some((phase, len)) if *phase == p => *len += 1,
                _ => runs.push((p, 1)),
            }
        }
        runs
    }

    /// Converts the trace into a labeled [`Dataset`] (one benchmark,
    /// time order preserved).
    pub fn to_dataset(&self) -> Dataset {
        let mut ds = Dataset::with_capacity(self.len());
        let label = ds.add_benchmark(&self.benchmark);
        for s in &self.samples {
            ds.push(s.clone(), label);
        }
        ds
    }
}

/// Generates a time-ordered trace for one benchmark of a suite.
///
/// Returns `None` if the benchmark is not part of the suite.
pub fn generate_trace<R: Rng + ?Sized>(
    suite: &Suite,
    rng: &mut R,
    benchmark_name: &str,
    n_intervals: usize,
    generator: &GeneratorConfig,
    trace_config: &TraceConfig,
) -> Option<Trace> {
    let bench: &BenchmarkModel = suite
        .benchmarks()
        .iter()
        .find(|b| b.name() == benchmark_name)?;
    let bank = CounterBank::new(generator.counters);
    let env: Environment = suite.environment();
    let weights: Vec<f64> = bench.phases().iter().map(|p| p.weight()).collect();
    let stay_probability = 1.0 - 1.0 / trace_config.mean_run_length.max(1.0);

    let mut samples = Vec::with_capacity(n_intervals);
    let mut phase_indices = Vec::with_capacity(n_intervals);
    let mut current = weighted_index(rng, &weights);
    for _ in 0..n_intervals {
        if rng.gen::<f64>() >= stay_probability {
            current = weighted_index(rng, &weights);
        }
        let phase = &bench.phases()[current];
        let densities = phase.sample_densities(rng);
        let cpi = generator.cost.noisy_cpi(&densities, env, rng);
        let truth = Sample::from_densities(cpi, &densities);
        samples.push(bank.measure(&truth, rng));
        phase_indices.push(current);
    }
    Some(Trace {
        benchmark: bench.name().to_owned(),
        samples,
        phase_indices,
        phase_names: bench.phases().iter().map(|p| p.name().to_owned()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace(name: &str, n: usize, run: f64, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_trace(
            &Suite::cpu2006(),
            &mut rng,
            name,
            n,
            &GeneratorConfig::default(),
            &TraceConfig {
                mean_run_length: run,
            },
        )
        .expect("benchmark exists")
    }

    #[test]
    fn unknown_benchmark_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(generate_trace(
            &Suite::cpu2006(),
            &mut rng,
            "999.nope",
            10,
            &GeneratorConfig::default(),
            &TraceConfig::default(),
        )
        .is_none());
    }

    #[test]
    fn trace_has_requested_length_and_valid_phases() {
        let t = trace("403.gcc", 500, 50.0, 1);
        assert_eq!(t.len(), 500);
        assert_eq!(t.benchmark(), "403.gcc");
        let n_phases = t.phase_names().len();
        assert!(t.phase_indices().iter().all(|&p| p < n_phases));
        assert!(t.samples().iter().all(Sample::is_physical));
    }

    #[test]
    fn run_lengths_scale_with_config() {
        let short = trace("403.gcc", 4000, 5.0, 2);
        let long = trace("403.gcc", 4000, 100.0, 3);
        let mean_run = |t: &Trace| {
            let runs = t.phase_runs();
            t.len() as f64 / runs.len() as f64
        };
        let ms = mean_run(&short);
        let ml = mean_run(&long);
        assert!(
            ml > 3.0 * ms,
            "long-run trace should have much longer runs: {ml} vs {ms}"
        );
    }

    #[test]
    fn phase_runs_reconstruct_sequence() {
        let t = trace("456.hmmer", 300, 10.0, 4);
        let total: usize = t.phase_runs().iter().map(|&(_, l)| l).sum();
        assert_eq!(total, t.len());
        // Adjacent runs always differ in phase... not guaranteed by RLE
        // construction? It is: equal adjacent phases merge into one run.
        for w in t.phase_runs().windows(2) {
            assert_ne!(w[0].0, w[1].0);
        }
    }

    #[test]
    fn stationary_distribution_matches_weights() {
        // gcc: lm1 0.50 / lm8 0.30 / lm24 0.20.
        let t = trace("403.gcc", 60_000, 10.0, 5);
        let n_phases = t.phase_names().len();
        let mut counts = vec![0usize; n_phases];
        for &p in t.phase_indices() {
            counts[p] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / t.len() as f64).collect();
        let expected = [0.50, 0.30, 0.20];
        for (s, e) in shares.iter().zip(expected) {
            assert!((s - e).abs() < 0.05, "share {s} vs expected {e}");
        }
    }

    #[test]
    fn to_dataset_preserves_order() {
        let t = trace("429.mcf", 100, 20.0, 6);
        let ds = t.to_dataset();
        assert_eq!(ds.len(), 100);
        for i in 0..100 {
            assert_eq!(ds.sample(i), &t.samples()[i]);
        }
        assert_eq!(ds.benchmark_name(0), Some("429.mcf"));
    }

    #[test]
    fn cpi_series_tracks_phase_changes() {
        // mcf's lm24 phase (CPI ~2.2) vs lm8 (CPI ~0.8): CPI within a run
        // should be much less variable than across the whole trace.
        let t = trace("429.mcf", 5000, 100.0, 7);
        let series = t.cpi_series();
        let overall_sd = mathkit::describe::std_dev(&series).unwrap();
        // Mean per-run sd.
        let mut run_sds = Vec::new();
        let mut start = 0;
        for (_, len) in t.phase_runs() {
            if len >= 10 {
                run_sds.push(mathkit::describe::std_dev(&series[start..start + len]).unwrap());
            }
            start += len;
        }
        let mean_run_sd = run_sds.iter().sum::<f64>() / run_sds.len() as f64;
        assert!(
            mean_run_sd < 0.5 * overall_sd,
            "within-run sd {mean_run_sd} vs overall {overall_sd}"
        );
    }
}
