//! Synthetic models of the 23 SPEC CPU2017 rate benchmarks.
//!
//! CPU2017 is one benchmark generation past the paper's data: the same
//! single-threaded cost regimes apply, but the suite's *mixture* over
//! them shifts. Published CPU2017 characterizations report larger
//! working sets (more DTLB and L2 pressure at the reference inputs),
//! a broader vectorized share, and the familiar pointer-chasing
//! outliers (505.mcf_r, 520.omnetpp_r) pushed harder than their 2006
//! ancestors. The phase mixtures below encode that moderate
//! distribution shift: every regime a CPU2006-trained model knows
//! still occurs, but with different frequencies and densities — the
//! "near generation" point on the transfer-decay curve.

use crate::phases::{BenchmarkModel, Phase};
use perfcounters::events::EventId::*;

/// Number of benchmarks in SPEC CPU2017 (rate).
pub const N_BENCHMARKS: usize = 23;

/// Quiet compute phase, 2017 flavor: warm caches but a slightly larger
/// footprint than the 2006 LM1 phase (DTLB density near the regime
/// boundary instead of far below it).
fn quiet(weight: f64) -> Phase {
    Phase::new("quiet17", weight)
        .with(DtlbMiss, 1.4e-4, 0.5)
        .with(L2Miss, 2.2e-4, 0.5)
}

/// DTLB pressure with store-address blocks and well-predicted branches
/// (the LM7 regime at 2017 densities).
fn sta_quietbr(weight: f64) -> Phase {
    Phase::new("sta-quietbr17", weight)
        .with(DtlbMiss, 5.0e-4, 0.3)
        .with(LdBlkStA, 1.1e-3, 0.3)
        .with(MisprBr, 9.0e-5, 0.4)
        .with(L2Miss, 4.0e-4, 0.15)
        .with(SplitStore, 1.4e-3, 0.4)
}

/// DTLB pressure with store-address blocks and mispredicted branches
/// (the LM8 regime; deeper speculation than 2006).
fn sta_branchy(weight: f64) -> Phase {
    Phase::new("sta-branchy17", weight)
        .with(DtlbMiss, 5.0e-4, 0.3)
        .with(LdBlkStA, 1.1e-3, 0.3)
        .with(MisprBr, 7.0e-3, 0.25)
        .with(L2Miss, 3.2e-4, 0.25)
}

/// Pointer-chasing with heavy DTLB + L2 pressure (505.mcf_r and
/// 520.omnetpp_r; the LM24 regime pushed past its 2006 densities).
fn pointer_chase(weight: f64) -> Phase {
    Phase::new("pointer-chase17", weight)
        .with(DtlbMiss, 1.5e-3, 0.25)
        .with(L2Miss, 1.4e-3, 0.25)
        .with(LdBlkOlp, 2.4e-3, 0.4)
        .with(Br, 0.24, 0.1)
}

/// L2-bound streaming plateau at 2017 bandwidth pressure.
fn streaming(weight: f64) -> Phase {
    Phase::new("streaming17", weight)
        .with(DtlbMiss, 4.0e-4, 0.25)
        .with(L2Miss, 1.1e-3, 0.3)
        .with(Simd, 0.08, 0.5)
}

/// Very-high-SIMD plateau (507.cactuBSSN_r inherits 436.cactusADM's
/// regime).
fn simd_wide(weight: f64) -> Phase {
    Phase::new("simd-wide17", weight)
        .with(DtlbMiss, 3.2e-4, 0.25)
        .with(L2Miss, 7.5e-4, 0.25)
        .with(Simd, 0.93, 0.02)
}

/// High-SIMD streaming with overlapped stores (519.lbm_r inherits
/// 470.lbm's regime).
fn simd_stream(weight: f64) -> Phase {
    Phase::new("simd-stream17", weight)
        .with(DtlbMiss, 2.8e-4, 0.2)
        .with(L2Miss, 9.0e-4, 0.25)
        .with(Simd, 0.82, 0.03)
        .with(LdBlkOlp, 6.5e-3, 0.3)
}

/// Mid-SIMD compute under DTLB pressure (media and rendering codes;
/// the LM10 regime with a broader vectorized share than 2006).
fn simd_mid(weight: f64) -> Phase {
    Phase::new("simd-mid17", weight)
        .with(DtlbMiss, 3.2e-4, 0.25)
        .with(Simd, 0.68, 0.07)
}

/// Split-load heavy phase (unaligned buffer traversal; the LM18
/// regime).
fn split_load(weight: f64) -> Phase {
    Phase::new("split-load17", weight)
        .with(DtlbMiss, 4.5e-4, 0.3)
        .with(SplitLoad, 5.5e-3, 0.3)
        .with(L1DMiss, 1.8e-2, 0.3)
        .with(LdBlkStA, 9.0e-4, 0.4)
}

/// Overlapped-store load blocks under DTLB pressure (the LM14 regime).
fn olp(weight: f64) -> Phase {
    Phase::new("olp17", weight)
        .with(DtlbMiss, 3.4e-4, 0.25)
        .with(LdBlkOlp, 4.5e-3, 0.3)
        .with(Load, 0.36, 0.1)
}

/// The 23 benchmark models of SPEC CPU2017 (rate), with
/// instruction-count weights (their share of the suite's samples).
pub fn benchmarks() -> Vec<BenchmarkModel> {
    vec![
        // --- integer benchmarks ---
        BenchmarkModel::new("500.perlbench_r", 1.1)
            .phase(quiet(0.55))
            .phase(sta_branchy(0.45)),
        BenchmarkModel::new("502.gcc_r", 1.1)
            .phase(quiet(0.40))
            .phase(sta_branchy(0.35))
            .phase(pointer_chase(0.25)),
        BenchmarkModel::new("505.mcf_r", 0.7)
            .phase(pointer_chase(0.80))
            .phase(sta_branchy(0.20)),
        BenchmarkModel::new("520.omnetpp_r", 0.7)
            .phase(pointer_chase(0.75))
            .phase(quiet(0.25)),
        BenchmarkModel::new("523.xalancbmk_r", 1.0)
            .phase(quiet(0.35))
            .phase(sta_branchy(0.30))
            .phase(sta_quietbr(0.35)),
        BenchmarkModel::new("525.x264_r", 1.2)
            .phase(simd_mid(0.55))
            .phase(quiet(0.30))
            .phase(sta_quietbr(0.15)),
        BenchmarkModel::new("531.deepsjeng_r", 1.0)
            .phase(quiet(0.60))
            .phase(sta_branchy(0.40)),
        BenchmarkModel::new("541.leela_r", 1.0)
            .phase(quiet(0.65))
            .phase(sta_branchy(0.35)),
        BenchmarkModel::new("548.exchange2_r", 1.1)
            .phase(quiet(0.95))
            .phase(sta_quietbr(0.05)),
        BenchmarkModel::new("557.xz_r", 0.9)
            .phase(quiet(0.45))
            .phase(sta_branchy(0.25))
            .phase(pointer_chase(0.15))
            .phase(split_load(0.15)),
        // --- floating-point benchmarks ---
        BenchmarkModel::new("503.bwaves_r", 1.2)
            .phase(sta_quietbr(0.45))
            .phase(streaming(0.30))
            .phase(quiet(0.25)),
        BenchmarkModel::new("507.cactuBSSN_r", 0.9)
            .phase(simd_wide(0.60))
            .phase(quiet(0.40)),
        BenchmarkModel::new("508.namd_r", 1.1)
            .phase(quiet(0.90))
            .phase(simd_mid(0.10)),
        BenchmarkModel::new("510.parest_r", 1.0)
            .phase(quiet(0.60))
            .phase(sta_quietbr(0.25))
            .phase(olp(0.15)),
        BenchmarkModel::new("511.povray_r", 1.0)
            .phase(quiet(0.80))
            .phase(sta_branchy(0.20)),
        BenchmarkModel::new("519.lbm_r", 0.9)
            .phase(simd_stream(0.60))
            .phase(streaming(0.25))
            .phase(quiet(0.15)),
        BenchmarkModel::new("521.wrf_r", 1.1)
            .phase(quiet(0.50))
            .phase(sta_quietbr(0.25))
            .phase(simd_mid(0.25)),
        BenchmarkModel::new("526.blender_r", 1.1)
            .phase(quiet(0.45))
            .phase(simd_mid(0.35))
            .phase(sta_branchy(0.20)),
        BenchmarkModel::new("527.cam4_r", 1.0)
            .phase(quiet(0.55))
            .phase(sta_quietbr(0.30))
            .phase(streaming(0.15)),
        BenchmarkModel::new("538.imagick_r", 1.2)
            .phase(simd_mid(0.50))
            .phase(quiet(0.50)),
        BenchmarkModel::new("544.nab_r", 1.0)
            .phase(quiet(0.75))
            .phase(simd_mid(0.15))
            .phase(sta_quietbr(0.10)),
        BenchmarkModel::new("549.fotonik3d_r", 0.9)
            .phase(streaming(0.55))
            .phase(sta_quietbr(0.30))
            .phase(quiet(0.15)),
        BenchmarkModel::new("554.roms_r", 1.0)
            .phase(streaming(0.40))
            .phase(sta_quietbr(0.35))
            .phase(quiet(0.25)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::{CostModel, Environment, Regime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_23_uniquely_named_benchmarks() {
        let bs = benchmarks();
        assert_eq!(bs.len(), N_BENCHMARKS);
        let mut names: Vec<&str> = bs.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_BENCHMARKS);
    }

    #[test]
    fn phase_weights_sum_to_one() {
        for b in benchmarks() {
            let total: f64 = b.phases().iter().map(|p| p.weight()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: phase weights sum to {total}",
                b.name()
            );
        }
    }

    #[test]
    fn names_follow_the_2017_rate_convention() {
        for b in benchmarks() {
            assert!(b.name().ends_with("_r"), "{} not a rate name", b.name());
        }
    }

    fn regime_share(name: &str, regime: Regime, seed: u64) -> f64 {
        let cm = CostModel::default();
        let bs = benchmarks();
        let b = bs.iter().find(|b| b.name() == name).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2000;
        let mut hits = 0;
        for _ in 0..n {
            let phase = b.pick_phase(&mut rng);
            let d = phase.sample_densities(&mut rng);
            if cm.regime(&d, Environment::SingleThreaded) == regime {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn mcf_r_escapes_the_quiet_regime() {
        assert!(regime_share("505.mcf_r", Regime::CpuLm1, 1) < 0.15);
        assert!(regime_share("505.mcf_r", Regime::CpuLm24, 2) > 0.6);
    }

    #[test]
    fn cactu_r_hits_the_wide_simd_plateau() {
        let share = regime_share("507.cactuBSSN_r", Regime::CpuLm11, 3);
        assert!((0.4..0.8).contains(&share), "cactuBSSN LM11 share {share}");
    }

    #[test]
    fn suite_mean_cpi_sits_above_cpu2006() {
        // The generation shift is moderate: same regimes, heavier tail.
        let cm = CostModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean_cpi = |bs: &[BenchmarkModel]| {
            let n = 400;
            let total: f64 = bs
                .iter()
                .flat_map(|b| {
                    (0..n)
                        .map(|_| {
                            let d = b.pick_phase(&mut rng).sample_densities(&mut rng);
                            cm.true_cpi(&d, Environment::SingleThreaded)
                        })
                        .collect::<Vec<_>>()
                })
                .sum();
            total / (n * bs.len()) as f64
        };
        let cpu2017 = mean_cpi(&benchmarks());
        let cpu2006 = mean_cpi(&crate::cpu2006::benchmarks());
        assert!(
            cpu2017 > cpu2006 + 0.03,
            "2017 mean {cpu2017} vs 2006 mean {cpu2006}"
        );
    }
}
