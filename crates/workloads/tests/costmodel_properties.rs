//! Property-based tests of the latent cost model and generator.

use perfcounters::events::N_EVENTS;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::costmodel::{CostModel, Environment};
use workloads::generator::{GeneratorConfig, Suite};

fn density_vector() -> impl Strategy<Value = [f64; N_EVENTS]> {
    proptest::collection::vec(0.0f64..1.0, N_EVENTS).prop_map(|v| {
        let mut arr = [0.0; N_EVENTS];
        arr.copy_from_slice(&v);
        arr
    })
}

proptest! {
    #[test]
    fn cpi_finite_positive_everywhere(x in density_vector()) {
        let cm = CostModel::default();
        for env in [Environment::SingleThreaded, Environment::MultiThreaded] {
            let cpi = cm.true_cpi(&x, env);
            prop_assert!(cpi.is_finite());
            prop_assert!(cpi >= 0.15);
            prop_assert!(cpi < 1e4);
        }
    }

    #[test]
    fn regime_deterministic(x in density_vector()) {
        let cm = CostModel::default();
        for env in [Environment::SingleThreaded, Environment::MultiThreaded] {
            prop_assert_eq!(cm.regime(&x, env), cm.regime(&x, env));
            prop_assert_eq!(
                cm.regime(&x, env).is_multithreaded(),
                env == Environment::MultiThreaded
            );
        }
    }

    #[test]
    fn cpi_continuous_within_regime(x in density_vector(), bump in 0.0f64..1e-9) {
        // A vanishing perturbation that doesn't cross a threshold must
        // not move CPI discontinuously.
        let cm = CostModel::default();
        let mut y = x;
        y[0] += bump; // Load: never a regime predicate.
        for env in [Environment::SingleThreaded, Environment::MultiThreaded] {
            if cm.regime(&x, env) == cm.regime(&y, env) {
                let d = (cm.true_cpi(&x, env) - cm.true_cpi(&y, env)).abs();
                prop_assert!(d < 1e-6, "jump {d} within one regime");
            }
        }
    }

    #[test]
    fn noisy_cpi_brackets_truth(x in density_vector(), seed in 0u64..1000) {
        let cm = CostModel::new(0.04);
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = cm.true_cpi(&x, Environment::SingleThreaded);
        let noisy = cm.noisy_cpi(&x, Environment::SingleThreaded, &mut rng);
        // Lognormal(0.04): 6 sigma is a factor of ~1.27.
        prop_assert!(noisy > truth * 0.7 && noisy < truth * 1.4,
            "noisy {noisy} vs truth {truth}");
    }
}

#[test]
fn generated_suite_stays_inside_regime_vocabulary() {
    // Every generated sample's *true* regime must come from the suite's
    // environment (checked via the is_multithreaded flag over a sweep of
    // phase draws).
    let cm = CostModel::default();
    for (suite, env) in [
        (Suite::cpu2006(), Environment::SingleThreaded),
        (Suite::omp2001(), Environment::MultiThreaded),
    ] {
        let mut rng = StdRng::seed_from_u64(99);
        for bench in suite.benchmarks() {
            for _ in 0..50 {
                let phase = bench.pick_phase(&mut rng);
                let densities = phase.sample_densities(&mut rng);
                let regime = cm.regime(&densities, env);
                assert_eq!(
                    regime.is_multithreaded(),
                    env == Environment::MultiThreaded,
                    "{}: wrong regime family {regime:?}",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn suite_generation_scales_linearly_in_count() {
    let config = GeneratorConfig::default();
    let suite = Suite::omp2001();
    for n in [0, 1, 11, 997] {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = suite.generate(&mut rng, n, &config);
        assert_eq!(ds.len(), n);
    }
}
