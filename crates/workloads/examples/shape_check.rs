use modeltree::{display, M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn main() {
    let config = GeneratorConfig::default();
    for (suite, seed) in [(Suite::cpu2006(), 1u64), (Suite::omp2001(), 2u64)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = suite.generate(&mut rng, 20_000, &config);
        let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(200)).unwrap();
        println!("=== {} ===", suite.name());
        println!("{}", display::render_summary(&tree));
    }
}
