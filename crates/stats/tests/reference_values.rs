//! Checks against external reference values (R / textbook results) and
//! algebraic properties of the statistical routines.

use proptest::prelude::*;
use spec_stats::metrics::PredictionMetrics;
use spec_stats::nonparametric::{levene_test, mann_whitney_u, LeveneCenter};
use spec_stats::ttest::{paired_t_test, two_sample_t_test, welch_t_test};

// R: t.test(c(30.02,29.99,30.11,29.97,30.01,29.99),
//           c(29.89,29.93,29.72,29.98,30.02,29.98), var.equal=TRUE)
// t = 1.959, df = 10, p-value = 0.07857
#[test]
fn pooled_t_matches_r_example() {
    let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
    let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
    let r = two_sample_t_test(&a, &b).unwrap();
    assert!((r.statistic - 1.959).abs() < 1e-3, "t = {}", r.statistic);
    assert_eq!(r.dof, 10.0);
    assert!((r.p_value - 0.07857).abs() < 1e-4, "p = {}", r.p_value);
}

// Same data, Welch: t = 1.959, df = 7.03, p = 0.0907 (R default t.test).
#[test]
fn welch_t_matches_r_example() {
    let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
    let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
    let r = welch_t_test(&a, &b).unwrap();
    assert!((r.statistic - 1.959).abs() < 1e-3);
    assert!((r.dof - 7.03).abs() < 0.01, "dof = {}", r.dof);
    assert!((r.p_value - 0.0907).abs() < 5e-4, "p = {}", r.p_value);
}

// R: t.test(x, y, paired=TRUE) with x = 1..10, y = x + noise-free 0.5.
#[test]
fn paired_t_constant_shift() {
    let a: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
    let r = paired_t_test(&b, &a).unwrap();
    // Zero-variance differences with non-zero mean: infinite evidence.
    assert_eq!(r.statistic, f64::INFINITY);
    assert_eq!(r.p_value, 0.0);
}

// Mann-Whitney with clearly separated samples: U = 0, |z| near maximum.
#[test]
fn mann_whitney_fully_separated() {
    let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let b = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
    let r = mann_whitney_u(&a, &b).unwrap();
    assert!(r.p_value < 0.01, "p = {}", r.p_value);
    assert!(r.statistic < -2.5, "z = {}", r.statistic);
}

// Levene / Brown-Forsythe on samples with 4x sd ratio at n=100: W large.
#[test]
fn levene_detects_4x_sd() {
    let a: Vec<f64> = (0..100).map(|i| ((i % 10) as f64 - 4.5) * 0.1).collect();
    let b: Vec<f64> = (0..100).map(|i| ((i % 10) as f64 - 4.5) * 0.4).collect();
    let r = levene_test(&a, &b, LeveneCenter::Median).unwrap();
    assert!(r.significant_at(1e-4), "p = {}", r.p_value);
}

proptest! {
    #[test]
    fn t_statistic_antisymmetric(
        a in proptest::collection::vec(-100.0f64..100.0, 3..50),
        b in proptest::collection::vec(-100.0f64..100.0, 3..50),
    ) {
        let ab = two_sample_t_test(&a, &b).unwrap();
        let ba = two_sample_t_test(&b, &a).unwrap();
        prop_assert!((ab.statistic + ba.statistic).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn welch_p_value_in_unit_interval(
        a in proptest::collection::vec(-1e3f64..1e3, 2..40),
        b in proptest::collection::vec(-1e3f64..1e3, 2..40),
    ) {
        let r = welch_t_test(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.dof >= 1.0);
    }

    #[test]
    fn scaling_invariance_of_t(
        a in proptest::collection::vec(-10.0f64..10.0, 5..30),
        b in proptest::collection::vec(-10.0f64..10.0, 5..30),
        scale in 0.01f64..100.0,
    ) {
        // t is invariant under common positive rescaling.
        let r1 = two_sample_t_test(&a, &b).unwrap();
        let a2: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let b2: Vec<f64> = b.iter().map(|x| x * scale).collect();
        let r2 = two_sample_t_test(&a2, &b2).unwrap();
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-6 * (1.0 + r1.statistic.abs()));
    }

    #[test]
    fn mae_translation_property(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..50),
        shift in -5.0f64..5.0,
    ) {
        // Shifting all predictions by c changes MAE by at most |c|.
        let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
        let a: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let m1 = PredictionMetrics::from_predictions(&p, &a).unwrap();
        let p2: Vec<f64> = p.iter().map(|x| x + shift).collect();
        let m2 = PredictionMetrics::from_predictions(&p2, &a).unwrap();
        prop_assert!((m2.mae - m1.mae).abs() <= shift.abs() + 1e-9);
        // Correlation is unchanged by translation.
        prop_assert!((m2.correlation - m1.correlation).abs() < 1e-9);
    }

    #[test]
    fn mann_whitney_antisymmetric(
        a in proptest::collection::vec(-100.0f64..100.0, 5..40),
        b in proptest::collection::vec(-100.0f64..100.0, 5..40),
    ) {
        let ab = mann_whitney_u(&a, &b).unwrap();
        let ba = mann_whitney_u(&b, &a).unwrap();
        prop_assert!((ab.statistic + ba.statistic).abs() < 1e-6);
    }
}
