//! Degenerate-input guards for every `spec-stats` entry point.
//!
//! Contract: undersized inputs (`n < 2`, mismatched lengths, empty
//! slices) return `Err`, and zero-variance inputs return well-defined
//! finite-or-signed-infinite results — no entry point may panic or emit
//! NaN on them.

use spec_stats::bootstrap::{bootstrap_ci, correlation_ci, mae_ci};
use spec_stats::metrics::PredictionMetrics;
use spec_stats::nonparametric::{levene_test, mann_whitney_u, LeveneCenter};
use spec_stats::ttest::{cohens_d, paired_t_test, two_sample_t_test, welch_t_test};
use spec_stats::StatsError;

const CONST8: [f64; 8] = [2.0; 8];
const VARIED8: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];

#[test]
fn t_tests_reject_undersized_samples() {
    for bad in [&[] as &[f64], &[1.0]] {
        assert!(matches!(
            welch_t_test(bad, &VARIED8),
            Err(StatsError::InsufficientData(_))
        ));
        assert!(matches!(
            welch_t_test(&VARIED8, bad),
            Err(StatsError::InsufficientData(_))
        ));
        assert!(matches!(
            two_sample_t_test(bad, &VARIED8),
            Err(StatsError::InsufficientData(_))
        ));
        assert!(matches!(
            cohens_d(bad, &VARIED8),
            Err(StatsError::InsufficientData(_))
        ));
    }
    assert!(matches!(
        paired_t_test(&[1.0], &[1.0]),
        Err(StatsError::InsufficientData(_))
    ));
    assert!(matches!(
        paired_t_test(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
        Err(StatsError::LengthMismatch(_))
    ));
}

#[test]
fn t_tests_zero_variance_well_defined() {
    // Equal constants: no evidence of a difference.
    for r in [
        welch_t_test(&CONST8, &CONST8).unwrap(),
        two_sample_t_test(&CONST8, &CONST8).unwrap(),
        paired_t_test(&CONST8, &CONST8).unwrap(),
    ] {
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant_at(0.05));
    }
    // One side constant, the other varied: still finite and defined.
    for r in [
        welch_t_test(&CONST8, &VARIED8).unwrap(),
        two_sample_t_test(&CONST8, &VARIED8).unwrap(),
    ] {
        assert!(r.statistic.is_finite(), "t = {}", r.statistic);
        assert!(r.p_value.is_finite() && (0.0..=1.0).contains(&r.p_value));
    }
    // Distinct constants: perfect separation, signed infinity, p = 0.
    let hi = [3.0; 8];
    for r in [
        welch_t_test(&hi, &CONST8).unwrap(),
        two_sample_t_test(&hi, &CONST8).unwrap(),
        paired_t_test(&hi, &CONST8).unwrap(),
    ] {
        assert_eq!(r.statistic, f64::INFINITY);
        assert_eq!(r.p_value, 0.0);
    }
    assert_eq!(cohens_d(&CONST8, &CONST8).unwrap(), 0.0);
    assert_eq!(cohens_d(&hi, &CONST8).unwrap(), f64::INFINITY);
    assert_eq!(cohens_d(&CONST8, &hi).unwrap(), f64::NEG_INFINITY);
}

#[test]
fn bootstrap_rejects_degenerate_inputs() {
    let xs = [1.0, 2.0, 3.0, 4.0];
    let ys = [1.1, 2.1, 2.9, 4.2];
    // Length mismatch.
    assert!(matches!(
        bootstrap_ci(
            &xs,
            &ys[..3],
            |p, a| p.len().max(a.len()) as f64,
            100,
            0.95,
            1
        ),
        Err(StatsError::LengthMismatch(_))
    ));
    // n < 2.
    for n in 0..2 {
        assert!(matches!(
            mae_ci(&xs[..n], &ys[..n], 100, 0.95, 1),
            Err(StatsError::InsufficientData(_))
        ));
    }
    // Confidence outside (0, 1), including NaN.
    for conf in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
        assert!(matches!(
            mae_ci(&xs, &ys, 100, conf, 1),
            Err(StatsError::Domain(_))
        ));
    }
    // Zero resamples.
    assert!(matches!(
        correlation_ci(&xs, &ys, 0, 0.95, 1),
        Err(StatsError::Domain(_))
    ));
}

#[test]
fn bootstrap_zero_variance_inputs_give_degenerate_but_finite_cis() {
    // Constant predictions and actuals: every resample statistic is
    // identical, so the CI collapses to a point without panicking.
    let ci = mae_ci(&CONST8, &CONST8, 200, 0.95, 7).unwrap();
    assert_eq!(ci.point, 0.0);
    assert_eq!(ci.lower, 0.0);
    assert_eq!(ci.upper, 0.0);
    // Correlation against a constant vector is undefined per-resample;
    // the CI must still come back finite (the estimator maps undefined
    // correlations to 0).
    let ci = correlation_ci(&CONST8, &VARIED8, 200, 0.95, 7).unwrap();
    assert!(ci.lower.is_finite() && ci.upper.is_finite());
}

#[test]
fn mann_whitney_guards() {
    // Fewer than 8 combined observations is refused.
    assert!(mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0]).is_err());
    assert!(mann_whitney_u(&[], &VARIED8).is_err());
    // All-tied data: variance collapses; must be a defined non-result.
    let r = mann_whitney_u(&CONST8, &CONST8).unwrap();
    assert_eq!(r.statistic, 0.0);
    assert_eq!(r.p_value, 1.0);
    // Distinct constants still work (exact separation, tiny p).
    let r = mann_whitney_u(&CONST8, &[9.0; 8]).unwrap();
    assert!(r.p_value < 0.01, "p = {}", r.p_value);
}

#[test]
fn levene_guards() {
    assert!(levene_test(&[1.0, 2.0], &VARIED8, LeveneCenter::Mean).is_err());
    let r = levene_test(&CONST8, &CONST8, LeveneCenter::Median).unwrap();
    assert!(r.p_value.is_finite());
}

#[test]
fn prediction_metrics_guards() {
    assert!(PredictionMetrics::from_predictions(&[1.0], &[1.0]).is_err());
    assert!(PredictionMetrics::from_predictions(&[1.0, 2.0], &[1.0]).is_err());
    // Constant predictions: correlation undefined -> the metrics
    // constructor must not panic (C reported as 0).
    let m = PredictionMetrics::from_predictions(&CONST8, &VARIED8).unwrap();
    assert!(m.mae.is_finite());
    assert!(m.correlation.is_finite());
}
