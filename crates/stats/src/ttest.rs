//! Two-sample and paired Student-t tests.
//!
//! Follows the paper's Section VI-A: means and variances are estimated
//! with the unbiased estimators of Equations 8 and 9, the standard error
//! of the mean difference with Equation 10, and the test statistic with
//! Equation 11 (`t = (mu_1 - mu_2) / sigma_diff` on `n + m - 2` degrees
//! of freedom for the pooled test).

use crate::{Result, StatsError};
use mathkit::describe::{mean, variance};
use mathkit::dist::StudentT;
use serde::{Deserialize, Serialize};

/// The outcome of a t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub dof: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the first sample.
    pub mean_a: f64,
    /// Mean of the second sample.
    pub mean_b: f64,
    /// Standard error of the mean difference (Equation 10's
    /// `sigma_hat`).
    pub std_err: f64,
}

impl TTestResult {
    /// True if the null hypothesis (equal means) is rejected at level
    /// `alpha` (two-sided).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `alpha` is not in `(0, 1)`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        debug_assert!(alpha > 0.0 && alpha < 1.0);
        self.p_value < alpha
    }

    /// The two-sided critical value `t*` at level `alpha`; the paper
    /// compares `|t|` against 1.960 at 95% with large samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Domain`] if `alpha` is not in `(0, 1)`.
    pub fn critical_value(&self, alpha: f64) -> Result<f64> {
        let dist = StudentT::new(self.dof).map_err(|e| StatsError::Domain(e.to_string()))?;
        dist.two_sided_critical(alpha)
            .map_err(|e| StatsError::Domain(e.to_string()))
    }
}

/// Result for a zero-standard-error two-sample comparison: both sides
/// are exact constants, so the verdict is decided by the means alone —
/// `t = 0, p = 1` when they agree, `t = ±inf, p = 0` when they differ.
fn degenerate_constant(mean_a: f64, mean_b: f64, dof: f64) -> TTestResult {
    let diff = mean_a - mean_b;
    TTestResult {
        statistic: if diff == 0.0 {
            0.0
        } else {
            f64::INFINITY.copysign(diff)
        },
        dof,
        p_value: if diff == 0.0 { 1.0 } else { 0.0 },
        mean_a,
        mean_b,
        std_err: 0.0,
    }
}

fn finalize(statistic: f64, dof: f64, mean_a: f64, mean_b: f64, std_err: f64) -> TTestResult {
    let dist = StudentT::new(dof.max(1.0)).expect("dof >= 1");
    TTestResult {
        statistic,
        dof,
        p_value: dist.two_sided_p(statistic),
        mean_a,
        mean_b,
        std_err,
    }
}

/// Unequal-variance (Welch) two-sample t-test — the form of Equations
/// 10–11, which the paper notes is "robust against unequal variance when
/// the number of instances ... are not very different".
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer
/// than 2 elements.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 2 samples on each side, got {} and {}",
            a.len(),
            b.len()
        )));
    }
    let (ma, mb) = (mean(a).expect("non-empty"), mean(b).expect("non-empty"));
    let (va, vb) = (
        variance(a).expect("len >= 2"),
        variance(b).expect("len >= 2"),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let sea = va / na;
    let seb = vb / nb;
    let se = (sea + seb).sqrt();
    if se == 0.0 {
        // Both sides are constants. Equal constants carry no evidence of
        // a difference; distinct constants are a zero-noise separation
        // (infinitely strong evidence), matching `paired_t_test`.
        return Ok(degenerate_constant(ma, mb, na + nb - 2.0));
    }
    // Welch–Satterthwaite degrees of freedom.
    let dof = (sea + seb) * (sea + seb) / (sea * sea / (na - 1.0) + seb * seb / (nb - 1.0));
    Ok(finalize((ma - mb) / se, dof, ma, mb, se))
}

/// Pooled-variance two-sample t-test on `n + m - 2` degrees of freedom,
/// the classical form referenced by Equation 11.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer
/// than 2 elements.
pub fn two_sample_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 2 samples on each side, got {} and {}",
            a.len(),
            b.len()
        )));
    }
    let (ma, mb) = (mean(a).expect("non-empty"), mean(b).expect("non-empty"));
    let (va, vb) = (
        variance(a).expect("len >= 2"),
        variance(b).expect("len >= 2"),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let dof = na + nb - 2.0;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / dof;
    let se = (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    if se == 0.0 {
        return Ok(degenerate_constant(ma, mb, dof));
    }
    Ok(finalize((ma - mb) / se, dof, ma, mb, se))
}

/// Paired t-test on per-element differences (e.g. predicted vs actual on
/// the same test intervals).
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if the slices differ in length.
/// * [`StatsError::InsufficientData`] if fewer than 2 pairs.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch(format!(
            "{} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.len() < 2 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 2 pairs, got {}",
            a.len()
        )));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = mean(&diffs).expect("non-empty");
    let vd = variance(&diffs).expect("len >= 2");
    let n = diffs.len() as f64;
    let se = (vd / n).sqrt();
    let dof = n - 1.0;
    let (ma, mb) = (mean(a).expect("non-empty"), mean(b).expect("non-empty"));
    if se == 0.0 {
        // All differences identical: either exactly zero (no evidence)
        // or a perfectly constant shift (infinitely strong evidence,
        // signed by the direction of the shift).
        return Ok(TTestResult {
            statistic: if md == 0.0 {
                0.0
            } else {
                f64::INFINITY.copysign(md)
            },
            dof,
            p_value: if md == 0.0 { 1.0 } else { 0.0 },
            mean_a: ma,
            mean_b: mb,
            std_err: 0.0,
        });
    }
    Ok(finalize(md / se, dof, ma, mb, se))
}

/// Cohen's d effect size for two independent samples (pooled-sd
/// standardized mean difference). Complements the t statistic: with the
/// paper's huge samples, even negligible differences are "significant",
/// so the effect size says whether a rejection matters.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer
/// than 2 elements.
pub fn cohens_d(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 2 samples on each side, got {} and {}",
            a.len(),
            b.len()
        )));
    }
    let (ma, mb) = (mean(a).expect("non-empty"), mean(b).expect("non-empty"));
    let (va, vb) = (
        variance(a).expect("len >= 2"),
        variance(b).expect("len >= 2"),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled = (((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0)).sqrt();
    if pooled == 0.0 {
        return Ok(if ma == mb {
            0.0
        } else {
            f64::INFINITY.copysign(ma - mb)
        });
    }
    Ok((ma - mb) / pooled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn normal_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| mathkit::sampling::normal(&mut rng, mean, sd))
            .collect()
    }

    #[test]
    fn identical_distributions_accept_null() {
        let a = normal_sample(5000, 1.0, 0.5, 1);
        let b = normal_sample(5000, 1.0, 0.5, 2);
        for result in [
            two_sample_t_test(&a, &b).unwrap(),
            welch_t_test(&a, &b).unwrap(),
        ] {
            assert!(
                !result.significant_at(0.01),
                "t = {}, p = {}",
                result.statistic,
                result.p_value
            );
        }
    }

    #[test]
    fn shifted_distributions_reject_null() {
        let a = normal_sample(5000, 1.0, 0.5, 3);
        let b = normal_sample(5000, 1.2, 0.5, 4);
        for result in [
            two_sample_t_test(&a, &b).unwrap(),
            welch_t_test(&a, &b).unwrap(),
        ] {
            assert!(result.significant_at(0.001));
            assert!(result.statistic.abs() > 10.0);
        }
    }

    #[test]
    fn known_textbook_value() {
        // Classic small-sample check (pooled): a = {1,2,3,4,5},
        // b = {3,4,5,6,7}: t = -2/(sqrt(2.5)*sqrt(2/5)) = -2.0.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [3.0, 4.0, 5.0, 6.0, 7.0];
        let r = two_sample_t_test(&a, &b).unwrap();
        assert!((r.statistic + 2.0).abs() < 1e-12);
        assert_eq!(r.dof, 8.0);
        // p-value for |t|=2 on 8 dof is ~0.0805.
        assert!((r.p_value - 0.0805).abs() < 1e-3);
    }

    #[test]
    fn welch_dof_below_pooled_for_unequal_variances() {
        let a = normal_sample(100, 0.0, 0.1, 5);
        let b = normal_sample(100, 0.0, 3.0, 6);
        let w = welch_t_test(&a, &b).unwrap();
        let p = two_sample_t_test(&a, &b).unwrap();
        assert!(w.dof < p.dof);
    }

    #[test]
    fn paired_detects_small_systematic_shift() {
        let a = normal_sample(2000, 1.0, 0.5, 7);
        let b: Vec<f64> = a.iter().map(|x| x + 0.02).collect();
        // Unpaired can't see a 0.02 shift under sd 0.5 at n=2000, paired
        // can (the difference is exactly constant).
        let unpaired = two_sample_t_test(&a, &b).unwrap();
        let paired = paired_t_test(&a, &b).unwrap();
        assert!(!unpaired.significant_at(0.05));
        assert!(paired.significant_at(0.001));
    }

    #[test]
    fn paired_identical_is_insignificant() {
        let a = normal_sample(100, 1.0, 0.5, 8);
        let r = paired_t_test(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn input_validation() {
        assert!(two_sample_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[], &[1.0, 2.0]).is_err());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
        assert!(paired_t_test(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn constant_samples_handled() {
        let a = [2.0, 2.0, 2.0];
        let b = [2.0, 2.0, 2.0, 2.0];
        let r = two_sample_t_test(&a, &b).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn distinct_constants_are_infinitely_significant() {
        // Zero variance with different means is a perfect separation,
        // not "no evidence": t must be signed infinity and p zero.
        let lo = [1.0, 1.0, 1.0];
        let hi = [2.0, 2.0, 2.0];
        for r in [
            two_sample_t_test(&lo, &hi).unwrap(),
            welch_t_test(&lo, &hi).unwrap(),
        ] {
            assert_eq!(r.statistic, f64::NEG_INFINITY);
            assert_eq!(r.p_value, 0.0);
            assert!(r.significant_at(0.05));
        }
        let r = welch_t_test(&hi, &lo).unwrap();
        assert_eq!(r.statistic, f64::INFINITY);
        let p = paired_t_test(&lo, &hi).unwrap();
        assert_eq!(p.statistic, f64::NEG_INFINITY);
        assert_eq!(p.p_value, 0.0);
    }

    #[test]
    fn critical_value_matches_large_sample_1960() {
        // The paper: "the test rejects the Null hypothesis ... at 95%"
        // whenever |t| > 1.960 for large samples.
        let a = normal_sample(10000, 1.0, 0.5, 9);
        let b = normal_sample(10000, 1.0, 0.5, 10);
        let r = two_sample_t_test(&a, &b).unwrap();
        let crit = r.critical_value(0.05).unwrap();
        assert!((crit - 1.960).abs() < 1e-2, "crit {crit}");
    }

    #[test]
    fn cohens_d_known_cases() {
        // One pooled-sd separation.
        let a = [0.0, 1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a
            .iter()
            .map(|x| x + a.len() as f64 * 0.0 + 1.5811388)
            .collect();
        // sd of a (and b) = sqrt(2.5) = 1.5811; shift by exactly 1 sd.
        let d = cohens_d(&b, &a).unwrap();
        assert!((d - 1.0).abs() < 1e-6, "d = {d}");
        // Identical samples: zero effect.
        assert_eq!(cohens_d(&a, &a).unwrap(), 0.0);
        // Antisymmetry.
        assert!((cohens_d(&a, &b).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cohens_d_large_sample_insensitivity() {
        // Unlike t, d does not blow up with n: a fixed 0.1-sd shift gives
        // d ~ 0.1 at any size.
        for n in [100usize, 10_000] {
            let a = normal_sample(n, 0.0, 1.0, 20);
            let b = normal_sample(n, 0.1, 1.0, 21);
            let d = cohens_d(&b, &a).unwrap();
            assert!((d - 0.1).abs() < 0.06, "n={n}: d = {d}");
        }
    }

    #[test]
    fn cohens_d_degenerate() {
        assert!(cohens_d(&[1.0], &[1.0, 2.0]).is_err());
        let flat = [2.0, 2.0, 2.0];
        assert_eq!(cohens_d(&flat, &flat).unwrap(), 0.0);
        assert_eq!(cohens_d(&[3.0, 3.0], &[2.0, 2.0]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn result_serde_roundtrip() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        let r = two_sample_t_test(&a, &b).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: TTestResult = serde_json::from_str(&json).unwrap();
        assert!((back.statistic - r.statistic).abs() < 1e-12);
    }
}
