//! Bootstrap confidence intervals for prediction-accuracy metrics.
//!
//! The paper reports point estimates of `C` and MAE; this module adds
//! percentile-bootstrap confidence intervals so the transferability
//! verdicts can be stated with uncertainty — the "statistically rigorous"
//! treatment its related work (reference 18) advocates.

use crate::{Result, StatsError};
use mathkit::describe::correlation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// The statistic on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level (e.g. 0.95).
    pub confidence: f64,
    /// Number of bootstrap resamples drawn.
    pub n_resamples: usize,
}

impl BootstrapCi {
    /// True if the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Percentile bootstrap of an arbitrary paired statistic
/// `f(predicted, actual)`.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if the slices differ in length.
/// * [`StatsError::InsufficientData`] if fewer than 2 pairs.
/// * [`StatsError::Domain`] if `confidence` is not in `(0, 1)` or
///   `n_resamples == 0`.
pub fn bootstrap_ci<F>(
    predicted: &[f64],
    actual: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64], &[f64]) -> f64,
{
    if predicted.len() != actual.len() {
        return Err(StatsError::LengthMismatch(format!(
            "{} vs {}",
            predicted.len(),
            actual.len()
        )));
    }
    let n = predicted.len();
    if n < 2 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 2 pairs, got {n}"
        )));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::Domain(format!(
            "confidence {confidence} outside (0, 1)"
        )));
    }
    if n_resamples == 0 {
        return Err(StatsError::Domain("n_resamples must be positive".into()));
    }

    let point = statistic(predicted, actual);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut p_buf = vec![0.0; n];
    let mut a_buf = vec![0.0; n];
    for _ in 0..n_resamples {
        for slot in 0..n {
            let pick = rng.gen_range(0..n);
            p_buf[slot] = predicted[pick];
            a_buf[slot] = actual[pick];
        }
        stats.push(statistic(&p_buf, &a_buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let lo_idx = ((alpha / 2.0) * n_resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * n_resamples as f64) as usize).min(n_resamples - 1);
    Ok(BootstrapCi {
        point,
        lower: stats[lo_idx],
        upper: stats[hi_idx],
        confidence,
        n_resamples,
    })
}

/// Bootstrap CI of the mean absolute error.
///
/// # Errors
///
/// See [`bootstrap_ci`].
pub fn mae_ci(
    predicted: &[f64],
    actual: &[f64],
    n_resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<BootstrapCi> {
    bootstrap_ci(
        predicted,
        actual,
        |p, a| p.iter().zip(a).map(|(x, y)| (x - y).abs()).sum::<f64>() / p.len() as f64,
        n_resamples,
        confidence,
        seed,
    )
}

/// Bootstrap CI of the correlation coefficient `C`.
///
/// # Errors
///
/// See [`bootstrap_ci`].
pub fn correlation_ci(
    predicted: &[f64],
    actual: &[f64],
    n_resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<BootstrapCi> {
    bootstrap_ci(
        predicted,
        actual,
        |p, a| correlation(p, a).unwrap_or(0.0),
        n_resamples,
        confidence,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::sampling::normal;

    fn noisy_pairs(n: usize, noise: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let actual: Vec<f64> = (0..n).map(|i| 1.0 + (i % 10) as f64 * 0.1).collect();
        let predicted: Vec<f64> = actual
            .iter()
            .map(|a| a + normal(&mut rng, 0.0, noise))
            .collect();
        (predicted, actual)
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let (p, a) = noisy_pairs(500, 0.05, 1);
        let ci = mae_ci(&p, &a, 500, 0.95, 2).unwrap();
        assert!(ci.lower <= ci.point && ci.point <= ci.upper);
        assert!(ci.width() > 0.0);
        // MAE of N(0, 0.05) noise is 0.05 * sqrt(2/pi) ~ 0.0399.
        assert!(ci.contains(0.0399), "{ci:?}");
    }

    #[test]
    fn more_data_tightens_interval() {
        let (p1, a1) = noisy_pairs(100, 0.05, 3);
        let (p2, a2) = noisy_pairs(10_000, 0.05, 4);
        let ci1 = mae_ci(&p1, &a1, 300, 0.95, 5).unwrap();
        let ci2 = mae_ci(&p2, &a2, 300, 0.95, 6).unwrap();
        assert!(
            ci2.width() < 0.5 * ci1.width(),
            "{} vs {}",
            ci2.width(),
            ci1.width()
        );
    }

    #[test]
    fn correlation_ci_near_one_for_good_predictions() {
        let (p, a) = noisy_pairs(1000, 0.01, 7);
        let ci = correlation_ci(&p, &a, 300, 0.95, 8).unwrap();
        assert!(ci.lower > 0.99, "{ci:?}");
        assert!(ci.upper <= 1.0 + 1e-12);
    }

    #[test]
    fn perfect_predictions_have_degenerate_mae_ci() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let ci = mae_ci(&a, &a, 100, 0.9, 9).unwrap();
        assert_eq!(ci.point, 0.0);
        assert_eq!(ci.lower, 0.0);
        assert_eq!(ci.upper, 0.0);
    }

    #[test]
    fn input_validation() {
        let a = vec![1.0, 2.0, 3.0];
        assert!(mae_ci(&a, &a[..2], 100, 0.95, 0).is_err());
        assert!(mae_ci(&a[..1], &a[..1], 100, 0.95, 0).is_err());
        assert!(mae_ci(&a, &a, 0, 0.95, 0).is_err());
        assert!(mae_ci(&a, &a, 100, 1.5, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (p, a) = noisy_pairs(200, 0.1, 10);
        let c1 = mae_ci(&p, &a, 200, 0.95, 11).unwrap();
        let c2 = mae_ci(&p, &a, 200, 0.95, 11).unwrap();
        assert_eq!(c1, c2);
    }
}
