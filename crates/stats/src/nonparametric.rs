//! Non-parametric two-sample tests.
//!
//! The paper names "non-parametric tests such as Leven's \[sic\] and
//! Mann-Whitney tests" as the alternatives to the two-sample t-test;
//! both are provided here. Mann-Whitney uses the large-sample normal
//! approximation with tie correction (sample sizes in this domain are in
//! the tens of thousands); Levene's test uses the Brown–Forsythe
//! (median-centered) variant by default, which is robust for the skewed
//! CPI distributions counters produce.

use crate::{Result, StatsError};
use mathkit::describe::{mean, median};
use mathkit::dist::Normal;
use serde::{Deserialize, Serialize};

/// The outcome of a non-parametric test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonParametricResult {
    /// The test statistic (z for Mann-Whitney, W for Levene).
    pub statistic: f64,
    /// Two-sided p-value (approximate).
    pub p_value: f64,
}

impl NonParametricResult {
    /// True if the null hypothesis is rejected at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Mann-Whitney U test (two-sided, normal approximation with tie
/// correction): `H0` = the two samples come from the same distribution.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample is empty or
/// the combined sample is smaller than 8 (the normal approximation is
/// meaningless below that).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<NonParametricResult> {
    if a.is_empty() || b.is_empty() || a.len() + b.len() < 8 {
        return Err(StatsError::InsufficientData(format!(
            "need non-empty samples with combined size >= 8, got {} and {}",
            a.len(),
            b.len()
        )));
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let n = na + nb;

    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, bool)> = a
        .iter()
        .map(|&x| (x, true))
        .chain(b.iter().map(|&x| (x, false)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let count = (j - i + 1) as f64;
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_a += midrank;
            }
        }
        if count > 1.0 {
            tie_term += count * count * count - count;
        }
        i = j + 1;
    }

    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let var_u = na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        // Completely tied data: no evidence of difference.
        return Ok(NonParametricResult {
            statistic: 0.0,
            p_value: 1.0,
        });
    }
    // Continuity correction. Note f64::signum(0.0) is 1.0, so guard the
    // exactly-central case explicitly to keep the statistic antisymmetric.
    let diff = u_a - mean_u;
    let correction = if diff == 0.0 {
        0.0
    } else {
        0.5 * diff.signum()
    };
    let z = (diff - correction) / var_u.sqrt();
    let p = 2.0 * Normal::standard().sf(z.abs());
    Ok(NonParametricResult {
        statistic: z,
        p_value: p.min(1.0),
    })
}

/// Centering choice for Levene's test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeveneCenter {
    /// Classic Levene: deviations from the group mean.
    Mean,
    /// Brown–Forsythe: deviations from the group median (robust).
    Median,
}

/// Levene's test for equality of variances across two samples:
/// `H0` = equal variances. Returns the F-like W statistic with a normal
/// approximation to its p-value via the large-sample chi-square/1
/// equivalence (adequate at the sample sizes this workspace uses).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if either sample has fewer
/// than 3 elements.
pub fn levene_test(a: &[f64], b: &[f64], center: LeveneCenter) -> Result<NonParametricResult> {
    if a.len() < 3 || b.len() < 3 {
        return Err(StatsError::InsufficientData(format!(
            "need >= 3 samples on each side, got {} and {}",
            a.len(),
            b.len()
        )));
    }
    let center_of = |xs: &[f64]| -> f64 {
        match center {
            LeveneCenter::Mean => mean(xs).expect("non-empty"),
            LeveneCenter::Median => median(xs).expect("non-empty"),
        }
    };
    let ca = center_of(a);
    let cb = center_of(b);
    let za: Vec<f64> = a.iter().map(|x| (x - ca).abs()).collect();
    let zb: Vec<f64> = b.iter().map(|x| (x - cb).abs()).collect();

    let ma = mean(&za).expect("non-empty");
    let mb = mean(&zb).expect("non-empty");
    let na = za.len() as f64;
    let nb = zb.len() as f64;
    let grand = (na * ma + nb * mb) / (na + nb);

    let between = na * (ma - grand) * (ma - grand) + nb * (mb - grand) * (mb - grand);
    let within: f64 = za.iter().map(|z| (z - ma) * (z - ma)).sum::<f64>()
        + zb.iter().map(|z| (z - mb) * (z - mb)).sum::<f64>();
    if within == 0.0 {
        return Ok(NonParametricResult {
            statistic: if between == 0.0 { 0.0 } else { f64::INFINITY },
            p_value: if between == 0.0 { 1.0 } else { 0.0 },
        });
    }
    let dof2 = na + nb - 2.0;
    let w = dof2 * between / within; // F(1, dof2)
                                     // F(1, large dof2) ~ chi2(1) = z^2: two-sided normal p on sqrt(W).
    let p = 2.0 * Normal::standard().sf(w.max(0.0).sqrt());
    Ok(NonParametricResult {
        statistic: w,
        p_value: p.min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn normal_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| mathkit::sampling::normal(&mut rng, mean, sd))
            .collect()
    }

    #[test]
    fn mann_whitney_accepts_same_distribution() {
        let a = normal_sample(3000, 1.0, 0.5, 1);
        let b = normal_sample(3000, 1.0, 0.5, 2);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(!r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_rejects_shifted() {
        let a = normal_sample(3000, 1.0, 0.5, 3);
        let b = normal_sample(3000, 1.3, 0.5, 4);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.significant_at(1e-6));
        assert!(r.statistic.abs() > 5.0);
    }

    #[test]
    fn mann_whitney_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let b = vec![1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.2);
    }

    #[test]
    fn mann_whitney_fully_tied_data() {
        let a = vec![5.0; 20];
        let b = vec![5.0; 20];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mann_whitney_detects_distribution_difference_with_equal_means() {
        // Same mean, very different shape: a uniform vs bimodal extremes.
        let a: Vec<f64> = (0..2000).map(|i| (i % 100) as f64 / 100.0).collect();
        let b: Vec<f64> = (0..2000)
            .map(|i| if i % 2 == 0 { 0.45 } else { 0.55 })
            .collect();
        // Mann-Whitney tests stochastic ordering; these overlap heavily so
        // it may accept — mostly a smoke test that it runs with weird data.
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value.is_finite());
    }

    #[test]
    fn mann_whitney_input_validation() {
        assert!(mann_whitney_u(&[], &[1.0; 10]).is_err());
        assert!(mann_whitney_u(&[1.0, 2.0], &[3.0]).is_err());
    }

    #[test]
    fn levene_accepts_equal_variances() {
        let a = normal_sample(2000, 0.0, 1.0, 5);
        let b = normal_sample(2000, 5.0, 1.0, 6); // different mean, same sd
        for center in [LeveneCenter::Mean, LeveneCenter::Median] {
            let r = levene_test(&a, &b, center).unwrap();
            assert!(!r.significant_at(0.01), "{center:?}: p = {}", r.p_value);
        }
    }

    #[test]
    fn levene_rejects_unequal_variances() {
        let a = normal_sample(2000, 0.0, 1.0, 7);
        let b = normal_sample(2000, 0.0, 3.0, 8);
        for center in [LeveneCenter::Mean, LeveneCenter::Median] {
            let r = levene_test(&a, &b, center).unwrap();
            assert!(r.significant_at(1e-6), "{center:?}: p = {}", r.p_value);
        }
    }

    #[test]
    fn levene_constant_samples() {
        let a = vec![1.0; 10];
        let b = vec![1.0; 10];
        let r = levene_test(&a, &b, LeveneCenter::Mean).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn levene_input_validation() {
        assert!(levene_test(&[1.0, 2.0], &[1.0, 2.0, 3.0], LeveneCenter::Mean).is_err());
    }
}
