//! Prediction-accuracy metrics (the paper's Section VI-B).

use crate::{Result, StatsError};
use mathkit::describe::{correlation, mean};
use serde::{Deserialize, Serialize};

/// Acceptance thresholds for declaring a model transferable on accuracy
/// grounds. The paper "consider\[s\] for illustration that a correlation
/// coefficient of more than 0.85 and a mean absolute error of no more
/// than 0.15 \[are\] acceptable".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptanceThresholds {
    /// Minimum acceptable correlation coefficient `C`.
    pub min_correlation: f64,
    /// Maximum acceptable mean absolute error (in CPI units).
    pub max_mae: f64,
}

impl Default for AcceptanceThresholds {
    fn default() -> Self {
        AcceptanceThresholds {
            min_correlation: 0.85,
            max_mae: 0.15,
        }
    }
}

/// Accuracy of a set of predictions against actual values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionMetrics {
    /// Correlation coefficient `C` (Equation 12), in `[-1, 1]`.
    pub correlation: f64,
    /// Mean absolute error (Equation 13), same units as the target.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Relative absolute error: MAE normalized by the MAE of always
    /// predicting the actual mean (1.0 = no better than the mean).
    pub relative_absolute_error: f64,
    /// Mean of the predictions (the paper's `mu_12`).
    pub mean_predicted: f64,
    /// Mean of the actual values (the paper's `mu_2`).
    pub mean_actual: f64,
    /// Number of evaluated pairs.
    pub n: usize,
}

impl PredictionMetrics {
    /// Computes all metrics from parallel prediction/actual slices.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if lengths differ.
    /// * [`StatsError::InsufficientData`] if fewer than 2 pairs.
    pub fn from_predictions(predicted: &[f64], actual: &[f64]) -> Result<Self> {
        if predicted.len() != actual.len() {
            return Err(StatsError::LengthMismatch(format!(
                "{} predictions vs {} actuals",
                predicted.len(),
                actual.len()
            )));
        }
        if predicted.len() < 2 {
            return Err(StatsError::InsufficientData(format!(
                "need >= 2 pairs, got {}",
                predicted.len()
            )));
        }
        let n = predicted.len();
        let c = correlation(predicted, actual).expect("lengths checked");
        let mae = predicted
            .iter()
            .zip(actual)
            .map(|(p, a)| (p - a).abs())
            .sum::<f64>()
            / n as f64;
        let rmse = (predicted
            .iter()
            .zip(actual)
            .map(|(p, a)| (p - a) * (p - a))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        let mean_actual = mean(actual).expect("non-empty");
        let mean_baseline_mae =
            actual.iter().map(|a| (a - mean_actual).abs()).sum::<f64>() / n as f64;
        let relative_absolute_error = if mean_baseline_mae > 0.0 {
            mae / mean_baseline_mae
        } else if mae == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        Ok(PredictionMetrics {
            correlation: c,
            mae,
            rmse,
            relative_absolute_error,
            mean_predicted: mean(predicted).expect("non-empty"),
            mean_actual,
            n,
        })
    }

    /// True if both metrics pass the thresholds — the paper's
    /// accuracy-based transferability verdict.
    pub fn acceptable(&self, thresholds: &AcceptanceThresholds) -> bool {
        self.correlation > thresholds.min_correlation && self.mae <= thresholds.max_mae
    }
}

impl std::fmt::Display for PredictionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "C = {:.4}, MAE = {:.4}, RMSE = {:.4}, RAE = {:.4} (n = {})",
            self.correlation, self.mae, self.rmse, self.relative_absolute_error, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let m = PredictionMetrics::from_predictions(&actual, &actual).unwrap();
        assert!((m.correlation - 1.0).abs() < 1e-12);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.relative_absolute_error, 0.0);
        assert!(m.acceptable(&AcceptanceThresholds::default()));
    }

    #[test]
    fn constant_offset_hurts_mae_not_correlation() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let predicted: Vec<f64> = actual.iter().map(|a| a + 0.5).collect();
        let m = PredictionMetrics::from_predictions(&predicted, &actual).unwrap();
        assert!((m.correlation - 1.0).abs() < 1e-12);
        assert!((m.mae - 0.5).abs() < 1e-12);
        assert!(!m.acceptable(&AcceptanceThresholds::default()));
    }

    #[test]
    fn anti_correlated_predictions() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let predicted = [4.0, 3.0, 2.0, 1.0];
        let m = PredictionMetrics::from_predictions(&predicted, &actual).unwrap();
        assert!((m.correlation + 1.0).abs() < 1e-12);
        assert!(!m.acceptable(&AcceptanceThresholds::default()));
    }

    #[test]
    fn rae_relative_to_mean_baseline() {
        let actual = [0.0, 2.0];
        // Mean baseline MAE = 1.0; predictions off by 0.5 -> RAE 0.5.
        let predicted = [0.5, 1.5];
        let m = PredictionMetrics::from_predictions(&predicted, &actual).unwrap();
        assert!((m.relative_absolute_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_actual_edge_cases() {
        let actual = [2.0, 2.0, 2.0];
        let perfect = PredictionMetrics::from_predictions(&actual, &actual).unwrap();
        assert_eq!(perfect.relative_absolute_error, 0.0);
        let off = PredictionMetrics::from_predictions(&[3.0, 3.0, 3.0], &actual).unwrap();
        assert_eq!(off.relative_absolute_error, f64::INFINITY);
        // Correlation degenerates to 0 for constant inputs.
        assert_eq!(off.correlation, 0.0);
    }

    #[test]
    fn input_validation() {
        assert!(PredictionMetrics::from_predictions(&[1.0], &[1.0, 2.0]).is_err());
        assert!(PredictionMetrics::from_predictions(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn display_contains_metrics() {
        let m = PredictionMetrics::from_predictions(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        let text = m.to_string();
        assert!(text.contains("C = "));
        assert!(text.contains("MAE = "));
    }

    #[test]
    fn thresholds_default_matches_paper() {
        let t = AcceptanceThresholds::default();
        assert_eq!(t.min_correlation, 0.85);
        assert_eq!(t.max_mae, 0.15);
    }

    proptest! {
        #[test]
        fn prop_mae_le_rmse_times_sqrt1(
            pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..100)
        ) {
            let predicted: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let actual: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let m = PredictionMetrics::from_predictions(&predicted, &actual).unwrap();
            // Jensen: MAE <= RMSE always.
            prop_assert!(m.mae <= m.rmse + 1e-9);
            prop_assert!((-1.0..=1.0).contains(&m.correlation));
            prop_assert!(m.mae >= 0.0);
        }
    }
}
