//! Statistical machinery for model-transferability assessment.
//!
//! The paper's Section VI assesses whether a performance model trained on
//! workload suite P can be used to study suite Q, using two families of
//! techniques that this crate implements:
//!
//! * [`ttest`] — two-sample Student-t tests (pooled and Welch), including
//!   the exact estimator chain of the paper's Equations 8–11, applied
//!   both to dataset-vs-dataset comparisons (`H0: P1 = P2`) and to
//!   predicted-vs-actual comparisons (`H0: P_pred = P2`).
//! * [`nonparametric`] — the Mann-Whitney U test and Levene's test, the
//!   non-parametric alternatives the paper names.
//! * [`metrics`] — prediction-accuracy metrics: the correlation
//!   coefficient `C` (Equation 12) and the mean absolute error
//!   (Equation 13), plus RMSE and relative errors, with the paper's
//!   acceptance thresholds (`C > 0.85`, `MAE <= 0.15`).
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for those
//!   metrics.
//!
//! # Examples
//!
//! ```
//! use spec_stats::ttest::two_sample_t_test;
//!
//! let a: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
//! let b: Vec<f64> = (0..100).map(|i| (i % 7) as f64 + 0.01).collect();
//! let result = two_sample_t_test(&a, &b).unwrap();
//! // Nearly identical distributions: the difference is insignificant.
//! assert!(!result.significant_at(0.05));
//! ```

pub mod bootstrap;
pub mod metrics;
pub mod nonparametric;
pub mod ttest;

pub use bootstrap::{bootstrap_ci, correlation_ci, mae_ci, BootstrapCi};
pub use metrics::{AcceptanceThresholds, PredictionMetrics};
pub use ttest::{cohens_d, two_sample_t_test, welch_t_test, TTestResult};

/// Errors from statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// A sample was empty or too small for the requested test.
    InsufficientData(String),
    /// Paired inputs had mismatched lengths.
    LengthMismatch(String),
    /// A parameter was outside its domain (e.g. `alpha` not in (0, 1)).
    Domain(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            StatsError::LengthMismatch(msg) => write!(f, "length mismatch: {msg}"),
            StatsError::Domain(msg) => write!(f, "domain error: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!StatsError::InsufficientData("n=1".into())
            .to_string()
            .is_empty());
        assert!(StatsError::Domain("alpha".into())
            .to_string()
            .contains("alpha"));
    }
}
