//! Open-loop and saturating load generation against a running server.
//!
//! **Open loop** ([`Mode::OpenLoop`]) models independent users: request
//! `i` of `n` is *scheduled* at `t₀ + i/rate` regardless of how the
//! server is doing, and its latency is measured **from the scheduled
//! arrival to response completion**. A slow server therefore charges
//! queueing delay to itself instead of silently slowing the client down
//! — the coordinated-omission trap closed-loop benchmarks fall into.
//! Requests fan out round-robin over a fixed set of keep-alive
//! connections; each connection pair-runs a writer (fires on schedule,
//! never waits for responses) and a reader (HTTP/1.1 answers in order,
//! so it just counts responses off the front of the schedule queue).
//!
//! **Saturate** ([`Mode::Saturate`]) measures capacity: each connection
//! keeps a fixed number of pipelined requests in flight and replaces
//! each response with a fresh request, yielding the server's sustained
//! throughput ceiling (the number the batching-vs-unbatched comparison
//! uses).
//!
//! Request bodies are pre-rendered byte blobs — the generator spends
//! its cycles on scheduling and socket I/O, not formatting — which
//! matters on the 1-vCPU bench container where client and server share
//! the core.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use perfcounters::events::N_EVENTS;

/// Arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed-rate open-loop arrivals (requests/second across all
    /// connections), coordinated-omission-safe latency.
    OpenLoop {
        /// Aggregate arrival rate, requests per second.
        rate: f64,
    },
    /// Closed-loop saturation: every connection keeps `inflight`
    /// pipelined requests outstanding.
    Saturate {
        /// Outstanding requests per connection.
        inflight: usize,
    },
}

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4600`.
    pub addr: String,
    /// Keep-alive connections to spread load over.
    pub connections: usize,
    /// Total requests to send across all connections.
    pub total_requests: usize,
    /// Fraction of requests hitting `/classify` instead of `/predict`
    /// (interleaved deterministically, not sampled).
    pub classify_fraction: f64,
    /// Arrival process.
    pub mode: Mode,
}

/// What came back.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 429 responses (shed by backpressure — expected under overload).
    pub rejected: usize,
    /// Any other status, or transport failures.
    pub failed: usize,
    /// Wall clock from first scheduled send to last response.
    pub elapsed: Duration,
    /// Completed (2xx + 429) responses per second of `elapsed`.
    pub throughput: f64,
    /// Latency percentiles over 2xx responses, microseconds. Open-loop
    /// latencies are measured against the arrival schedule.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Worst observed, microseconds.
    pub max_us: f64,
}

/// Renders the pre-built request blob for one row.
fn render_request(path: &str, row: &[f64]) -> Vec<u8> {
    use std::fmt::Write as _;
    assert_eq!(row.len(), N_EVENTS);
    let mut body = String::with_capacity(N_EVENTS * 20);
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{v}");
    }
    body.push('\n');
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "POST {path} HTTP/1.1\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    out
}

/// Incremental HTTP response scanner: counts complete responses in a
/// byte stream and reports each one's status. Tolerates any split of
/// the stream across reads.
struct ResponseScanner {
    buf: Vec<u8>,
}

impl ResponseScanner {
    fn new() -> ResponseScanner {
        ResponseScanner { buf: Vec::new() }
    }

    /// Feeds bytes; invokes `on_response(status)` per completed
    /// response. Consumed bytes are compacted **once per feed**, not
    /// per response — under deep pipelining one read can carry hundreds
    /// of responses, and a per-response drain would memmove the
    /// remaining buffer quadratically (measured as a hard ~170k req/s
    /// generator ceiling before this was hoisted).
    fn feed(&mut self, bytes: &[u8], mut on_response: impl FnMut(u16)) -> Result<(), String> {
        self.buf.extend_from_slice(bytes);
        let mut consumed = 0usize;
        let result = loop {
            let rest = &self.buf[consumed..];
            let Some(head_end) = rest
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|p| p + 4)
            else {
                break Ok(());
            };
            let head = match std::str::from_utf8(&rest[..head_end - 4]) {
                Ok(head) => head,
                Err(_) => break Err("non-UTF-8 response head".to_string()),
            };
            let Some(status) = head.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()) else {
                break Err(format!("bad status line: {head:.60}"));
            };
            let mut content_length = 0usize;
            let mut bad_length = false;
            for line in head.split("\r\n").skip(1) {
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        match value.trim().parse() {
                            Ok(length) => content_length = length,
                            Err(_) => bad_length = true,
                        }
                    }
                }
            }
            if bad_length {
                break Err("bad Content-Length".to_string());
            }
            let total = head_end + content_length;
            if rest.len() < total {
                break Ok(());
            }
            consumed += total;
            on_response(status);
        };
        self.buf.drain(..consumed);
        result
    }
}

struct Tally {
    ok: usize,
    rejected: usize,
    failed: usize,
    latencies_us: Vec<u64>,
}

/// Drives the configured load and aggregates the report.
///
/// `rows` supplies request payloads, cycled round-robin; it must be
/// non-empty with `N_EVENTS` densities per row.
pub fn run(cfg: &LoadgenConfig, rows: &[Vec<f64>]) -> std::io::Result<LoadgenReport> {
    assert!(!rows.is_empty(), "loadgen needs at least one payload row");
    assert!(cfg.connections > 0 && cfg.total_requests > 0);
    // Pre-render every distinct request blob (payload × endpoint).
    let predict_blobs: Vec<Vec<u8>> = rows.iter().map(|r| render_request("/predict", r)).collect();
    let classify_blobs: Vec<Vec<u8>> = rows
        .iter()
        .map(|r| render_request("/classify", r))
        .collect();
    let classify_every = if cfg.classify_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / cfg.classify_fraction).round().max(1.0) as usize
    };
    let blob_of = |i: usize| -> &[u8] {
        let pool = if classify_every != usize::MAX && i % classify_every == classify_every - 1 {
            &classify_blobs
        } else {
            &predict_blobs
        };
        &pool[i % pool.len()]
    };

    let started = Instant::now();
    let tallies: Vec<Mutex<Tally>> = (0..cfg.connections)
        .map(|_| {
            Mutex::new(Tally {
                ok: 0,
                rejected: 0,
                failed: 0,
                latencies_us: Vec::new(),
            })
        })
        .collect();
    let tallies = Arc::new(tallies);
    let sent_total = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| -> std::io::Result<()> {
        for conn in 0..cfg.connections {
            // Requests are assigned round-robin: connection c owns the
            // global requests {c, c+C, c+2C, ...}.
            let my_requests: Vec<usize> = (conn..cfg.total_requests)
                .step_by(cfg.connections)
                .collect();
            if my_requests.is_empty() {
                continue;
            }
            let stream = TcpStream::connect(&cfg.addr)?;
            stream.set_nodelay(true)?;
            let tallies = Arc::clone(&tallies);
            let sent_total = Arc::clone(&sent_total);
            let blob_of = &blob_of;
            match cfg.mode {
                Mode::OpenLoop { rate } => {
                    // Writer fires on the arrival schedule; reader
                    // matches responses to scheduled instants in FIFO
                    // order (HTTP/1.1 responses arrive in request
                    // order on one connection).
                    let schedule: Arc<Mutex<std::collections::VecDeque<Instant>>> =
                        Arc::new(Mutex::new(std::collections::VecDeque::new()));
                    let reader_stream = stream.try_clone()?;
                    let reader_schedule = Arc::clone(&schedule);
                    let n_mine = my_requests.len();
                    scope.spawn(move || {
                        read_side(reader_stream, n_mine, &tallies[conn], &reader_schedule)
                    });
                    scope.spawn(move || {
                        let mut stream = stream;
                        for &i in &my_requests {
                            let due = started + Duration::from_secs_f64(i as f64 / rate);
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            // Record the *scheduled* time: latency
                            // includes any send-side queueing the
                            // server's slowness caused.
                            schedule.lock().expect("schedule lock").push_back(due);
                            if stream.write_all(blob_of(i)).is_err() {
                                break;
                            }
                            sent_total.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                Mode::Saturate { inflight } => {
                    scope.spawn(move || {
                        let mut stream = stream;
                        let mut scanner = ResponseScanner::new();
                        let mut sends: std::collections::VecDeque<Instant> =
                            std::collections::VecDeque::new();
                        let mut next = 0usize;
                        let mut done = 0usize;
                        let n_mine = my_requests.len();
                        let mut chunk = [0u8; 64 * 1024];
                        let mut write_buf: Vec<u8> = Vec::with_capacity(16 * 1024);
                        while done < n_mine {
                            // Top up the pipeline in one buffered write.
                            write_buf.clear();
                            let mut topped_up = 0usize;
                            while next < n_mine && sends.len() < inflight {
                                write_buf.extend_from_slice(blob_of(my_requests[next]));
                                sends.push_back(Instant::now());
                                next += 1;
                                topped_up += 1;
                            }
                            if !write_buf.is_empty() {
                                if stream.write_all(&write_buf).is_err() {
                                    break;
                                }
                                sent_total.fetch_add(topped_up, Ordering::Relaxed);
                            }
                            let n = match stream.read(&mut chunk) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => n,
                            };
                            let mut tally = tallies[conn].lock().expect("tally lock");
                            let completed = &mut 0usize;
                            let result = scanner.feed(&chunk[..n], |status| {
                                *completed += 1;
                                let sent = sends.pop_front().unwrap_or_else(Instant::now);
                                record(&mut tally, status, sent.elapsed());
                            });
                            done += *completed;
                            if result.is_err() {
                                tally.failed += n_mine - done;
                                break;
                            }
                        }
                    });
                }
            }
        }
        Ok(())
    })?;

    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        sent: sent_total.load(Ordering::Relaxed),
        elapsed,
        ..LoadgenReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for tally in tallies.iter() {
        let tally = tally.lock().expect("tally lock");
        report.ok += tally.ok;
        report.rejected += tally.rejected;
        report.failed += tally.failed;
        latencies.extend_from_slice(&tally.latencies_us);
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1] as f64
    };
    report.p50_us = percentile(0.50);
    report.p99_us = percentile(0.99);
    report.max_us = latencies.last().copied().unwrap_or(0) as f64;
    report.throughput = (report.ok + report.rejected) as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(report)
}

fn record(tally: &mut Tally, status: u16, latency: Duration) {
    match status {
        200..=299 => {
            tally.ok += 1;
            tally
                .latencies_us
                .push(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
        }
        429 => tally.rejected += 1,
        _ => tally.failed += 1,
    }
}

/// Open-loop reader side: drain responses until `expected` have been
/// seen (or the stream dies), charging each against its scheduled
/// arrival instant.
fn read_side(
    mut stream: TcpStream,
    expected: usize,
    tally: &Mutex<Tally>,
    schedule: &Mutex<std::collections::VecDeque<Instant>>,
) {
    let mut scanner = ResponseScanner::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut seen = 0usize;
    while seen < expected {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut tally = tally.lock().expect("tally lock");
        let seen_ref = &mut seen;
        let result = scanner.feed(&chunk[..n], |status| {
            *seen_ref += 1;
            let scheduled = schedule
                .lock()
                .expect("schedule lock")
                .pop_front()
                .unwrap_or_else(Instant::now);
            record(&mut tally, status, scheduled.elapsed());
        });
        if result.is_err() {
            break;
        }
    }
    let mut tally = tally.lock().expect("tally lock");
    tally.failed += expected - seen;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_handles_arbitrary_splits() {
        let stream = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody\
                       HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\n\r\n\
                       HTTP/1.1 200 OK\r\nX-Model-Version: ff\r\nContent-Length: 2\r\n\r\nok";
        for split in 0..stream.len() {
            let mut scanner = ResponseScanner::new();
            let mut statuses = Vec::new();
            scanner
                .feed(&stream[..split], |s| statuses.push(s))
                .unwrap();
            scanner
                .feed(&stream[split..], |s| statuses.push(s))
                .unwrap();
            assert_eq!(statuses, vec![200, 429, 200], "split at {split}");
        }
    }

    #[test]
    fn request_blob_is_valid_http() {
        let row = vec![0.5; N_EVENTS];
        let blob = render_request("/predict", &row);
        let parsed = crate::http::parse_request(&blob).unwrap().unwrap();
        assert_eq!(parsed.0.method, "POST");
        assert_eq!(parsed.0.path, "/predict");
        assert_eq!(parsed.1, blob.len());
        let body = String::from_utf8(parsed.0.body.to_vec()).unwrap();
        assert_eq!(body.trim().split(',').count(), N_EVENTS);
    }
}
