//! Prediction-as-a-service over compiled model trees.
//!
//! The paper's regression models only pay off at fleet scale if a CPI
//! or speedup prediction is as cheap to *query* as it is to compute:
//! ROADMAP item 1 calls for an async prediction service as the direct
//! path to the heavy-traffic north star. This crate is that service,
//! built like everything else in the workspace — dependency-free over
//! `std`, with the vendored-stub philosophy extended to the network
//! edge: a hand-rolled HTTP/1.1 subset ([`http`]) instead of a web
//! framework, `std::net` blocking sockets instead of an async runtime.
//!
//! # Architecture
//!
//! ```text
//! clients ──► acceptor ──► per-connection handlers ──► coalescer ──► BatchKernel
//!                │                │   (parse, validate)    │  (one columnar batch
//!                │                │                        │   per window/size)
//!                │                ◄── tickets (oneshot) ───┘
//!                └─ registry: name → Arc<ModelVersion> (atomic hot swap)
//! ```
//!
//! * [`registry`] — models keyed by name, each an immutable
//!   [`registry::ModelVersion`] (compiled engine + pipeline fingerprint
//!   version). Swapping a model is one `Arc` store; in-flight batches
//!   keep the `Arc` they captured at submit time, so a swap can never
//!   mix versions within a request.
//! * [`coalesce`] — concurrent single-row requests accumulate into one
//!   columnar [`modeltree::CompiledTree::predict_batch`] invocation,
//!   flushed when the batch reaches `max_batch_rows` or the oldest
//!   request has waited `window` (time-or-size trigger). A bounded
//!   pending-row queue sheds overload with HTTP 429 + `Retry-After`
//!   instead of collapsing.
//! * [`server`] — the protocol edge: request parsing and hardening,
//!   endpoint dispatch, pipelining (every complete request buffered on
//!   a connection is submitted before the first response is awaited, so
//!   one keep-alive connection can fill a batch by itself), and the
//!   `serve.*` obskit metrics.
//! * [`loadgen`] — an open-loop (fixed arrival schedule, latency
//!   measured against the *schedule*, so queueing delay is charged to
//!   the server — no coordinated omission) and saturating load
//!   generator used by `bench_serve` and the CI smoke job.
//!
//! # Determinism contract
//!
//! A served prediction is **byte-identical** to the offline
//! `predict_all`/`predict_batch` result for the same model and row:
//! engine outputs are pure per-row functions (bit-identical for every
//! batch composition and thread count, see `modeltree::compiled`), and
//! both the vendored JSON writer and this crate's text rendering print
//! `f64` via Rust's shortest-round-trip `{}` formatting, which
//! parses back to the identical bits. The testkit `serve_e2e` suite
//! enforces this end to end, including under concurrent hot swap.

pub mod coalesce;
pub mod http;
pub mod loadgen;
pub mod registry;
pub mod server;

pub use coalesce::{Coalescer, CoalescerConfig, Outcome, RequestKind, SubmitError};
pub use loadgen::{LoadgenConfig, LoadgenReport, Mode};
pub use registry::{ModelRegistry, ModelVersion};
pub use server::{set_trace_sample, Server, ServerConfig};
