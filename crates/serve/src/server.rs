//! The HTTP edge: accept loop, per-connection handlers, endpoint
//! dispatch, and request hardening.
//!
//! Thread model (epoll-free on purpose — blocking `std::net` sockets
//! and OS threads are the `std`-only analogue of the vendored-stub
//! philosophy): one acceptor thread plus one handler thread per live
//! connection, capped at [`ServerConfig::max_connections`] (503 beyond
//! the cap). Handlers don't compute predictions; they parse, validate,
//! and hand rows to the shared [`Coalescer`], which is where the
//! cross-connection batching happens.
//!
//! **Pipelining is the throughput lever:** a handler first parses and
//! submits *every* complete request sitting in its read buffer, and
//! only then blocks on the tickets in order, writing all responses in
//! one buffered write. A single keep-alive connection streaming
//! requests can therefore fill a whole coalescer batch between two
//! socket reads.
//!
//! Endpoints:
//!
//! | method+path      | behavior                                              |
//! |------------------|-------------------------------------------------------|
//! | `POST /predict`      | CPI per row; text or JSON body (see [`parse_rows`])   |
//! | `POST /classify`     | 1-based linear-model number per row                   |
//! | `GET  /healthz`      | `ok\n` + `name@version` models, uptime, SLO monitors  |
//! | `GET  /metrics`      | obskit metrics: JSON, or OpenMetrics when negotiated  |
//! | `POST /swap`         | hot-swap: load `{"model","key"}` from the store       |
//! | `POST /debug/flight` | dump the flight-recorder ring as JSON                 |
//! | `POST /shutdown`     | acknowledge, then stop accepting and drain            |
//!
//! `/metrics` content negotiation: JSON stays the default (back-compat
//! for existing scrapers); `?format=prom` / `?format=openmetrics` or an
//! `Accept` mentioning `openmetrics` selects the Prometheus-style text
//! exposition ([`obskit::prom`]); `?format=json` forces JSON.
//!
//! Every 200 to `/predict`/`/classify` carries `X-Model-Version` (the
//! registry fingerprint), pinning observed predictions to an exact
//! model version even across concurrent hot swaps. When tracing is on,
//! one request in [`SPECREPRO_TRACE_SAMPLE`] is assigned a request id
//! from a lock-free allocator; the id rides the coalescer into the
//! queue-wait/batch/engine spans, tags the request's own parse and
//! respond spans, and is echoed in `X-Request-Id` — one Chrome-trace
//! export reconstructs the request's whole path. With tracing off the
//! sampler costs a single relaxed atomic load.
//!
//! [`SPECREPRO_TRACE_SAMPLE`]: sample_req_id

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obskit::metrics::{self, Hist, Metric};
use obskit::monitor::MonitorSet;
use obskit::ring::{self, FlightKind};
use perfcounters::events::N_EVENTS;
use pipeline::{ArtifactStore, Fingerprint};
use serde_json::Value;

use crate::coalesce::{Coalescer, CoalescerConfig, Outcome, RequestKind, SubmitError, Ticket};
use crate::http::{self, Request};
use crate::registry::{ModelRegistry, ModelVersion};

/// Rows one request may carry; more is shed with 413 so a single client
/// cannot monopolize batches or balloon handler memory.
pub const MAX_ROWS_PER_REQUEST: usize = 16 * 1024;

/// Handler socket-read timeout: the granularity at which parked
/// connections notice a server shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server knobs. `Default` binds an ephemeral loopback port with the
/// default batching policy.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Batching policy for the shared coalescer.
    pub coalescer: CoalescerConfig,
    /// Live-connection cap; accepts beyond it get an immediate 503.
    pub max_connections: usize,
    /// Artifact store backing `POST /swap` (`None` disables swapping).
    pub store: Option<ArtifactStore>,
    /// Model served when a request names none. Defaults to the sole
    /// registered model; with several registered, nameless requests are
    /// rejected with 400.
    pub default_model: Option<String>,
    /// SLO monitor rules evaluated on every `GET /healthz`. Defaults to
    /// none (body stays exactly `ok\n`); `specrepro serve` installs
    /// [`MonitorSet::standard_serve`].
    pub monitors: MonitorSet,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            coalescer: CoalescerConfig::default(),
            max_connections: 64,
            store: None,
            default_model: None,
            monitors: MonitorSet::new(),
        }
    }
}

/// A running prediction server. Dropping it (or calling
/// [`Server::shutdown`]) stops the acceptor, drains handlers, and
/// resolves every in-flight request.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    coalescer: Coalescer,
    stop: AtomicBool,
    active: AtomicUsize,
    addr: SocketAddr,
    max_connections: usize,
    store: Option<ArtifactStore>,
    default_model: Option<String>,
    started: Instant,
    monitors: Mutex<MonitorSet>,
}

impl Server {
    /// Binds and starts serving `registry` with the given config.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            coalescer: Coalescer::start(cfg.coalescer),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            addr,
            max_connections: cfg.max_connections,
            store: cfg.store,
            default_model: cfg.default_model,
            started: Instant::now(),
            monitors: Mutex::new(cfg.monitors),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("serve-acceptor".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        obskit::emit(
            "serve",
            "serve.listening",
            &[("addr", &addr)],
            obskit::log_env_enabled(),
        );
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once `/shutdown` has been received (or [`Server::shutdown`]
    /// called).
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Blocks until the server stops (a `/shutdown` request arrives)
    /// and every connection has drained.
    pub fn join(mut self) {
        self.stop_and_drain(false);
    }

    /// Stops accepting, drains live connections, and returns.
    pub fn shutdown(mut self) {
        self.stop_and_drain(true);
    }

    fn stop_and_drain(&mut self, initiate: bool) {
        if initiate {
            self.shared.stop.store(true, Ordering::Release);
        }
        // Unblock the acceptor's blocking accept() with a no-op
        // connection; if the trigger was /shutdown the handler already
        // did this, but a second poke is harmless.
        if let Some(handle) = self.acceptor.take() {
            if initiate {
                let _ = TcpStream::connect(self.addr);
            }
            let _ = handle.join();
        }
        // Handlers notice the stop flag within one read timeout.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_drain(true);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.active.load(Ordering::Acquire) >= shared.max_connections {
            // Over the cap: a one-shot 503 without spawning anything.
            let mut out = Vec::new();
            http::write_response(
                &mut out,
                503,
                http::reason_of(503),
                &[("Retry-After", "1"), ("Connection", "close")],
                b"connection limit reached\n",
            );
            let mut stream = stream;
            let _ = stream.write_all(&out);
            continue;
        }
        metrics::incr(Metric::ServeConnections);
        shared.active.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.active.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            shared.active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// What a dispatched request resolves to: an immediate response, or a
/// coalescer ticket to await after the whole read buffer is drained.
enum Reply {
    Now(Vec<u8>),
    Pending {
        ticket: Ticket,
        version: Arc<ModelVersion>,
        json: bool,
        start: Instant,
        /// Trace request id; 0 = not sampled.
        req_id: u64,
    },
}

/// Sentinel meaning "env not parsed yet" in [`TRACE_SAMPLE`].
const TRACE_SAMPLE_UNSET: u64 = u64::MAX;
static TRACE_SAMPLE: AtomicU64 = AtomicU64::new(TRACE_SAMPLE_UNSET);
static NEXT_REQUEST: AtomicU64 = AtomicU64::new(0);

/// Overrides `SPECREPRO_TRACE_SAMPLE` programmatically (tests, CLI
/// flags): sample one request in `every`; `0` turns request ids off
/// without touching tracing itself.
pub fn set_trace_sample(every: u64) {
    let every = if every == TRACE_SAMPLE_UNSET {
        0
    } else {
        every
    };
    TRACE_SAMPLE.store(every, Ordering::Relaxed);
}

fn trace_sample_every() -> u64 {
    let cached = TRACE_SAMPLE.load(Ordering::Relaxed);
    if cached != TRACE_SAMPLE_UNSET {
        return cached;
    }
    let parsed = std::env::var("SPECREPRO_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(1);
    let parsed = if parsed == TRACE_SAMPLE_UNSET {
        0
    } else {
        parsed
    };
    TRACE_SAMPLE.store(parsed, Ordering::Relaxed);
    parsed
}

/// Allocates a request id when this request is sampled for tracing,
/// `0` otherwise. Ids come off a lock-free ordinal counter, so a
/// sampled id is unique for the process lifetime and doubles as the
/// request's arrival rank. With tracing disabled the cost is exactly
/// the one relaxed load inside [`obskit::tracing_enabled`].
fn sample_req_id() -> u64 {
    if !obskit::tracing_enabled() {
        return 0;
    }
    let every = trace_sample_every();
    if every == 0 {
        return 0;
    }
    let ordinal = NEXT_REQUEST.fetch_add(1, Ordering::Relaxed);
    if ordinal.is_multiple_of(every) {
        ordinal + 1 // ids are 1-based; 0 means "not sampled"
    } else {
        0
    }
}

/// 429s inside one second that trigger a flight-recorder autodump.
const SHED_BURST_THRESHOLD: u64 = 64;
static SHED_WINDOW_START_US: AtomicU64 = AtomicU64::new(0);
static SHED_COUNT: AtomicU64 = AtomicU64::new(0);

/// Counts a load shed and autodumps the flight ring on a burst. The
/// window arithmetic is deliberately racy — a lost count under
/// contention merely delays a diagnostic dump by one shed.
fn note_shed() {
    if !obskit::ring_enabled() {
        return;
    }
    let now = obskit::span::now_us();
    let start = SHED_WINDOW_START_US.load(Ordering::Relaxed);
    if now.saturating_sub(start) > 1_000_000 {
        SHED_WINDOW_START_US.store(now, Ordering::Relaxed);
        SHED_COUNT.store(1, Ordering::Relaxed);
        return;
    }
    if SHED_COUNT.fetch_add(1, Ordering::Relaxed) + 1 >= SHED_BURST_THRESHOLD {
        SHED_COUNT.store(0, Ordering::Relaxed);
        ring::autodump("shed-burst");
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = String::with_capacity(256);
    'conn: loop {
        if shared.stop.load(Ordering::Acquire) && buf.is_empty() {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        buf.extend_from_slice(&chunk[..n]);

        // Pipelining: drain every complete request before awaiting any
        // ticket, so co-buffered requests share one coalescer batch.
        let mut replies: Vec<Reply> = Vec::new();
        let mut close_after = false;
        let mut consumed = 0usize;
        loop {
            match http::parse_request(&buf[consumed..]) {
                Ok(Some((request, used))) => {
                    consumed += used;
                    if !request.keep_alive {
                        close_after = true;
                    }
                    replies.push(dispatch(&request, shared));
                    if close_after {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Unsalvageable stream: flush what preceded the
                    // garbage, then answer it and close.
                    replies.push(Reply::Now(render_error(e.status(), &e.to_string(), true)));
                    close_after = true;
                    consumed = buf.len();
                    break;
                }
            }
        }
        buf.drain(..consumed);

        if replies.is_empty() {
            continue;
        }
        out.clear();
        for reply in replies {
            match reply {
                Reply::Now(bytes) => out.extend_from_slice(&bytes),
                Reply::Pending {
                    ticket,
                    version,
                    json,
                    start,
                    req_id,
                } => {
                    let outcome = ticket.wait();
                    let respond_started = (req_id != 0).then(Instant::now);
                    render_outcome(
                        &mut out,
                        &mut scratch,
                        outcome,
                        &version.version,
                        json,
                        req_id,
                    );
                    if let Some(responded) = respond_started {
                        obskit::span::complete_since(
                            "serve",
                            "serve.respond",
                            responded,
                            &[("req_id", &req_id)],
                        );
                        obskit::span::complete_since(
                            "serve",
                            "serve.request",
                            start,
                            &[("req_id", &req_id), ("model", &version.name)],
                        );
                    }
                    metrics::observe(
                        Hist::ServeRequestNs,
                        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
            }
        }
        if stream.write_all(&out).is_err() || close_after {
            break 'conn;
        }
    }
}

fn dispatch(request: &Request<'_>, shared: &Arc<Shared>) -> Reply {
    metrics::incr(Metric::ServeRequests);
    match (request.method, request.path) {
        ("POST", "/predict") => submit_rows(request, shared, RequestKind::Predict),
        ("POST", "/classify") => submit_rows(request, shared, RequestKind::Classify),
        ("GET", "/healthz") => Reply::Now(render_healthz(shared)),
        ("GET", "/metrics") => {
            if wants_openmetrics(request) {
                Reply::Now(render(
                    200,
                    &[("Content-Type", obskit::prom::CONTENT_TYPE)],
                    obskit::prom::prom_text().as_bytes(),
                ))
            } else {
                Reply::Now(render(
                    200,
                    &[("Content-Type", "application/json")],
                    obskit::export::metrics_json().as_bytes(),
                ))
            }
        }
        ("POST", "/debug/flight") => {
            ring::record(FlightKind::Dump, 0, 0, 0);
            metrics::incr(Metric::ObsFlightDumps);
            Reply::Now(render(
                200,
                &[("Content-Type", "application/json")],
                ring::dump_json().as_bytes(),
            ))
        }
        ("POST", "/swap") => Reply::Now(handle_swap(request, shared)),
        ("POST", "/shutdown") => {
            shared.stop.store(true, Ordering::Release);
            // Poke the blocking accept() so the acceptor sees the flag.
            let _ = TcpStream::connect(shared.addr);
            Reply::Now(render(
                200,
                &[("Connection", "close"), ("Content-Type", "text/plain")],
                b"shutting down\n",
            ))
        }
        (_, "/predict" | "/classify" | "/swap" | "/shutdown" | "/debug/flight") => {
            bad(405, "use POST", &[("Allow", "POST")])
        }
        (_, "/healthz" | "/metrics") => bad(405, "use GET", &[("Allow", "GET")]),
        _ => bad(404, "unknown endpoint", &[]),
    }
}

/// `/metrics` format negotiation: an explicit `?format=` wins, then the
/// `Accept` header; JSON is the default so pre-existing scrapers keep
/// receiving byte-compatible documents.
fn wants_openmetrics(request: &Request<'_>) -> bool {
    for pair in request.query.split('&') {
        if let Some(format) = pair.strip_prefix("format=") {
            return matches!(format, "prom" | "prometheus" | "openmetrics");
        }
    }
    request
        .accept
        .is_some_and(|accept| accept.to_ascii_lowercase().contains("openmetrics"))
}

/// `GET /healthz`: liveness plus the operational headlines — per-model
/// version fingerprints (`X-Models: name@version,...`), uptime (also
/// published as the `serve.uptime_seconds` gauge), and the configured
/// SLO monitors evaluated against a fresh metrics snapshot. The body is
/// exactly `ok\n` while no monitor fires; firing monitors append one
/// line each and are counted in `X-Monitors-Firing`.
fn render_healthz(shared: &Shared) -> Vec<u8> {
    use std::fmt::Write as _;
    metrics::gauge_set(
        Metric::ServeUptimeSeconds,
        shared.started.elapsed().as_secs(),
    );
    let mut models = String::new();
    for (i, (name, version)) in shared.registry.versions().iter().enumerate() {
        if i > 0 {
            models.push(',');
        }
        let _ = write!(models, "{name}@{version}");
    }
    let alerts = shared
        .monitors
        .lock()
        .expect("monitor lock poisoned")
        .evaluate(&metrics::snapshot());
    let firing = alerts.len().to_string();
    let mut body = String::from("ok\n");
    for alert in &alerts {
        let _ = writeln!(
            body,
            "monitor {} firing: value {} over threshold {}",
            alert.rule, alert.value, alert.threshold
        );
    }
    render(
        200,
        &[
            ("X-Models", &models),
            ("X-Monitors-Firing", &firing),
            ("Content-Type", "text/plain"),
        ],
        body.as_bytes(),
    )
}

/// `POST /predict` / `POST /classify`: validate, resolve the model
/// version, and enqueue on the coalescer.
fn submit_rows(request: &Request<'_>, shared: &Arc<Shared>, kind: RequestKind) -> Reply {
    let start = Instant::now();
    let json = request.content_type.is_some_and(|t| {
        t.get(.."application/json".len())
            .is_some_and(|p| p.eq_ignore_ascii_case("application/json"))
    });
    let (rows, body_model) = match parse_rows(request.body, json) {
        Ok(parsed) => parsed,
        Err((status, msg)) => return bad(status, &msg, &[]),
    };
    let name = request.model.or(body_model.as_deref());
    let model = match resolve_model(shared, name) {
        Ok(model) => model,
        Err((status, msg)) => return bad(status, &msg, &[]),
    };
    let n_rows = rows.len() / N_EVENTS;
    let req_id = sample_req_id();
    if req_id != 0 {
        metrics::incr(Metric::ServeRequestsTraced);
        obskit::span::complete_since(
            "serve",
            "serve.parse",
            start,
            &[("req_id", &req_id), ("rows", &n_rows)],
        );
    }
    match shared
        .coalescer
        .submit_traced(Arc::clone(&model), kind, rows, req_id)
    {
        Ok(ticket) => Reply::Pending {
            ticket,
            version: model,
            json,
            start,
            req_id,
        },
        Err(SubmitError::Busy) => {
            metrics::incr(Metric::ServeRejectedBusy);
            ring::record(FlightKind::LoadShed, req_id, n_rows as u64, 0);
            note_shed();
            Reply::Now(render_error(429, "prediction queue is full", false))
        }
        Err(SubmitError::ShuttingDown) => {
            Reply::Now(render_error(503, "server is shutting down", false))
        }
    }
}

/// Decodes a request body into row-major densities.
///
/// Text bodies (`text/plain` or untyped): one row per line, either
/// **dense** (exactly `N_EVENTS` floats, comma/space separated) or
/// **sparse** (`index:value` pairs, unset events zero). JSON bodies:
/// `{"rows": [[f64; N_EVENTS], ...], "model": "name"?}`.
///
/// Every value must be finite — anything else is a 400 carrying the
/// engine's own [`modeltree::TreeError::NonFiniteAttribute`] rendering,
/// mirroring what the trainer would say offline.
#[allow(clippy::type_complexity)]
fn parse_rows(body: &[u8], json: bool) -> Result<(Vec<f64>, Option<String>), (u16, String)> {
    let (rows, model, n_rows) = if json {
        parse_rows_json(body)?
    } else {
        parse_rows_text(body)?
    };
    if n_rows == 0 {
        return Err((400, "no rows in request body".into()));
    }
    if n_rows > MAX_ROWS_PER_REQUEST {
        return Err((
            413,
            format!("{n_rows} rows exceeds the {MAX_ROWS_PER_REQUEST}-row request cap"),
        ));
    }
    if let Some(bad) = rows.iter().position(|v| !v.is_finite()) {
        let err = modeltree::TreeError::NonFiniteAttribute(format!(
            "row {} event index {} is {}",
            bad / N_EVENTS,
            bad % N_EVENTS,
            rows[bad]
        ));
        return Err((400, err.to_string()));
    }
    Ok((rows, model))
}

#[allow(clippy::type_complexity)]
fn parse_rows_text(body: &[u8]) -> Result<(Vec<f64>, Option<String>, usize), (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
    let mut rows = Vec::new();
    let mut n_rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if n_rows >= MAX_ROWS_PER_REQUEST {
            n_rows += 1; // enough to trip the cap check upstream
            break;
        }
        let base = rows.len();
        if line.contains(':') {
            // Sparse: "index:value" pairs.
            rows.resize(base + N_EVENTS, 0.0);
            for token in line.split([',', ' ', '\t']).filter(|t| !t.is_empty()) {
                let Some((index, value)) = token.split_once(':') else {
                    return Err((
                        400,
                        format!("line {}: token {token:?} is not index:value", lineno + 1),
                    ));
                };
                let index: usize = index.parse().map_err(|_| {
                    (
                        400,
                        format!("line {}: bad event index {index:?}", lineno + 1),
                    )
                })?;
                if index >= N_EVENTS {
                    return Err((
                        400,
                        format!(
                            "line {}: event index {index} out of range (< {N_EVENTS})",
                            lineno + 1
                        ),
                    ));
                }
                let value: f64 = value
                    .parse()
                    .map_err(|_| (400, format!("line {}: bad value {value:?}", lineno + 1)))?;
                rows[base + index] = value;
            }
        } else {
            // Dense: exactly N_EVENTS floats.
            for token in line.split([',', ' ', '\t']).filter(|t| !t.is_empty()) {
                let value: f64 = token
                    .parse()
                    .map_err(|_| (400, format!("line {}: bad value {token:?}", lineno + 1)))?;
                rows.push(value);
            }
            if rows.len() - base != N_EVENTS {
                return Err((
                    400,
                    format!(
                        "line {}: expected {N_EVENTS} dense values, got {}",
                        lineno + 1,
                        rows.len() - base
                    ),
                ));
            }
        }
        n_rows += 1;
    }
    Ok((rows, None, n_rows))
}

#[allow(clippy::type_complexity)]
fn parse_rows_json(body: &[u8]) -> Result<(Vec<f64>, Option<String>, usize), (u16, String)> {
    let value: Value =
        serde_json::from_slice(body).map_err(|e| (400, format!("invalid JSON body: {e}")))?;
    let model = value
        .get("model")
        .and_then(Value::as_str)
        .map(str::to_string);
    let Some(Value::Array(row_values)) = value.get("rows") else {
        return Err((400, "JSON body must carry a \"rows\" array".into()));
    };
    let n_rows = row_values.len();
    if n_rows > MAX_ROWS_PER_REQUEST {
        return Ok((Vec::new(), model, n_rows)); // cap check upstream
    }
    let mut rows = Vec::with_capacity(n_rows * N_EVENTS);
    for (r, row) in row_values.iter().enumerate() {
        let Value::Array(cells) = row else {
            return Err((400, format!("rows[{r}] is not an array")));
        };
        if cells.len() != N_EVENTS {
            return Err((
                400,
                format!("rows[{r}] has {} values, expected {N_EVENTS}", cells.len()),
            ));
        }
        for (c, cell) in cells.iter().enumerate() {
            let Some(v) = cell.as_f64() else {
                return Err((400, format!("rows[{r}][{c}] is not a number")));
            };
            rows.push(v);
        }
    }
    Ok((rows, model, n_rows))
}

/// Resolves the request's model name (explicit, or the server default,
/// or the registry's sole entry).
fn resolve_model(shared: &Shared, name: Option<&str>) -> Result<Arc<ModelVersion>, (u16, String)> {
    let named = name.or(shared.default_model.as_deref());
    match named {
        Some(name) => shared
            .registry
            .get(name)
            .ok_or_else(|| (404, format!("unknown model {name:?}"))),
        None => {
            let names = shared.registry.names();
            match names.as_slice() {
                [] => Err((503, "no model registered".into())),
                [only] => Ok(shared.registry.get(only).expect("sole model exists")),
                _ => Err((
                    400,
                    format!(
                        "several models registered ({}); name one via X-Model",
                        names.join(", ")
                    ),
                )),
            }
        }
    }
}

/// `POST /swap`: `{"model": "name", "key": "fingerprint-hex"}` loads
/// the tree artifact under `key` from the store and atomically swaps it
/// in as `name`'s current version.
fn handle_swap(request: &Request<'_>, shared: &Arc<Shared>) -> Vec<u8> {
    let Some(store) = &shared.store else {
        return render_error(503, "no artifact store configured", false);
    };
    let value: Value = match serde_json::from_slice(request.body) {
        Ok(v) => v,
        Err(e) => return render_error(400, &format!("invalid JSON body: {e}"), false),
    };
    let (Some(model), Some(key_hex)) = (
        value.get("model").and_then(Value::as_str),
        value.get("key").and_then(Value::as_str),
    ) else {
        return render_error(400, "swap body must carry \"model\" and \"key\"", false);
    };
    let Some(key) = Fingerprint::from_hex(key_hex) else {
        return render_error(
            400,
            &format!("{key_hex:?} is not a fingerprint (1-32 hex digits)"),
            false,
        );
    };
    match shared.registry.load_from_store(store, model, key) {
        Ok(version) => {
            ring::record(
                FlightKind::SwapApplied,
                key.0 as u64,
                (key.0 >> 64) as u64,
                0,
            );
            let body = format!(
                "{{\"model\":{},\"version\":\"{}\"}}\n",
                serde_json::to_string(&version.name).expect("string serializes"),
                version.version
            );
            render(
                200,
                &[("Content-Type", "application/json")],
                body.as_bytes(),
            )
        }
        Err(msg) => {
            ring::record(
                FlightKind::SwapFailed,
                key.0 as u64,
                (key.0 >> 64) as u64,
                0,
            );
            ring::autodump("swap-failure");
            render_error(404, &msg, false)
        }
    }
}

/// Renders a resolved coalescer outcome. Text responses print one value
/// per line with Rust's shortest-round-trip `{}` float formatting —
/// parsing the text back yields bit-identical `f64`s, which is what the
/// determinism suite asserts. JSON responses use the vendored writer,
/// which formats floats the same way.
fn render_outcome(
    out: &mut Vec<u8>,
    scratch: &mut String,
    outcome: Outcome,
    version: &str,
    json: bool,
    req_id: u64,
) {
    use std::fmt::Write as _;
    let req_id_value;
    let mut headers: Vec<(&str, &str)> = vec![
        ("X-Model-Version", version),
        (
            "Content-Type",
            if json {
                "application/json"
            } else {
                "text/plain"
            },
        ),
    ];
    if req_id != 0 {
        req_id_value = req_id.to_string();
        headers.push(("X-Request-Id", &req_id_value));
    }
    let headers: &[(&str, &str)] = &headers;
    scratch.clear();
    match outcome {
        Outcome::Predictions(values) => {
            if json {
                scratch.push_str("{\"predictions\":[");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        scratch.push(',');
                    }
                    let _ = write!(scratch, "{v}");
                }
                scratch.push_str("]}\n");
            } else {
                for v in &values {
                    let _ = writeln!(scratch, "{v}");
                }
            }
            http::write_response(out, 200, http::reason_of(200), headers, scratch.as_bytes());
        }
        Outcome::Classes(values) => {
            if json {
                scratch.push_str("{\"classes\":[");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        scratch.push(',');
                    }
                    let _ = write!(scratch, "{v}");
                }
                scratch.push_str("]}\n");
            } else {
                for v in &values {
                    let _ = writeln!(scratch, "{v}");
                }
            }
            http::write_response(out, 200, http::reason_of(200), headers, scratch.as_bytes());
        }
        Outcome::Failed(why) => out.extend_from_slice(&render_error(503, &why, false)),
    }
}

fn render(status: u16, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    http::write_response(&mut out, status, http::reason_of(status), headers, body);
    out
}

fn render_error(status: u16, message: &str, close: bool) -> Vec<u8> {
    if (400..500).contains(&status) && status != 429 {
        metrics::incr(Metric::ServeBadRequests);
    }
    let mut headers: Vec<(&str, &str)> = vec![("Content-Type", "text/plain")];
    if status == 429 || status == 503 {
        headers.push(("Retry-After", "1"));
    }
    if close {
        headers.push(("Connection", "close"));
    }
    let body = format!("{message}\n");
    render(status, &headers, body.as_bytes())
}

fn bad(status: u16, message: &str, extra: &[(&str, &str)]) -> Reply {
    if (400..500).contains(&status) {
        metrics::incr(Metric::ServeBadRequests);
    }
    let mut headers: Vec<(&str, &str)> = vec![("Content-Type", "text/plain")];
    headers.extend_from_slice(extra);
    let body = format!("{message}\n");
    Reply::Now(render(status, &headers, body.as_bytes()))
}
