//! The hot-swappable model registry: names → immutable model versions.
//!
//! A [`ModelVersion`] bundles a compiled engine with its **version
//! fingerprint** — the pipeline's content-addressed key when the model
//! came out of the [`ArtifactStore`], or a content hash of the codec
//! bytes for directly registered trees. Handlers resolve a name to an
//! `Arc<ModelVersion>` once per request and carry that `Arc` through
//! the coalescer, so a concurrent [`ModelRegistry::insert`] (the hot
//! swap) never mixes versions inside a request: in-flight batches
//! finish on the version they captured, new requests see the new one.
//! The swap itself is a write-locked `HashMap` slot store — the lock is
//! held for pointer writes only, never during inference.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use modeltree::{CompiledTree, ModelTree};
use pipeline::{codec, ArtifactStore, Fingerprint, FingerprintHasher};

/// One immutable, servable model version.
#[derive(Debug)]
pub struct ModelVersion {
    /// Registry name the version is (or was) published under.
    pub name: String,
    /// Version fingerprint, lowercase hex — echoed to clients in the
    /// `X-Model-Version` response header so they can pin observed
    /// predictions to an exact model.
    pub version: String,
    /// The compiled inference engine.
    pub engine: CompiledTree,
}

/// Thread-safe name → [`ModelVersion`] map with atomic replacement.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, Arc<ModelVersion>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Resolves a name to its current version (an `Arc` bump under a
    /// read lock — the inference hot path never blocks on swaps longer
    /// than the pointer store itself).
    pub fn get(&self, name: &str) -> Option<Arc<ModelVersion>> {
        self.slots
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Publishes (or hot-swaps) a version under its name, returning the
    /// replaced version if there was one. In-flight requests holding
    /// the old `Arc` are unaffected.
    pub fn insert(&self, version: Arc<ModelVersion>) -> Option<Arc<ModelVersion>> {
        self.slots
            .write()
            .expect("registry lock poisoned")
            .insert(version.name.clone(), version)
    }

    /// Compiles and publishes a fitted tree under `name`, deriving the
    /// version fingerprint from the tree's codec bytes (content-equal
    /// trees get equal versions, matching the artifact store's
    /// content-addressing philosophy).
    pub fn register_tree(&self, name: &str, tree: &ModelTree) -> Arc<ModelVersion> {
        let mut h = FingerprintHasher::new("serve.model");
        h.write_bytes(&codec::encode_tree(tree));
        let version = self.publish(name, h.finish(), tree);
        obskit::emit(
            "serve",
            "serve.model_registered",
            &[("model", &version.name), ("version", &version.version)],
            false,
        );
        version
    }

    /// Loads the tree stored under `key`, compiles it, and publishes it
    /// as `name`'s current version — the zero-downtime update path the
    /// `/swap` endpoint drives. The version fingerprint is the store
    /// key itself.
    ///
    /// Errors are strings suitable for a response body: a miss reports
    /// the key, a corrupt artifact reports the codec failure.
    pub fn load_from_store(
        &self,
        store: &ArtifactStore,
        name: &str,
        key: Fingerprint,
    ) -> Result<Arc<ModelVersion>, String> {
        let tree = store.load_tree(key).map_err(|e| match e {
            None => format!("no tree artifact under key {key}"),
            Some(codec) => format!("tree artifact {key} unreadable: {codec}"),
        })?;
        obskit::metrics::incr(obskit::metrics::Metric::ServeModelSwaps);
        Ok(self.publish(name, key, &tree))
    }

    /// The registered names, sorted (for `/healthz` and diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .slots
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// `(name, version fingerprint)` for every registered model,
    /// sorted by name — `/healthz` surfaces these so scrapers can
    /// alert on stale model versions, not just missing names.
    pub fn versions(&self) -> Vec<(String, String)> {
        let mut versions: Vec<(String, String)> = self
            .slots
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, v)| (name.clone(), v.version.clone()))
            .collect();
        versions.sort_unstable();
        versions
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.slots.read().expect("registry lock poisoned").len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn publish(&self, name: &str, key: Fingerprint, tree: &ModelTree) -> Arc<ModelVersion> {
        let version = Arc::new(ModelVersion {
            name: name.to_string(),
            version: key.to_hex(),
            // Serving batches are latency-bound and the handler pool
            // already supplies the concurrency; keep each kernel call
            // serial so coalesced batches never fight the handlers for
            // cores.
            engine: tree.compile().with_n_threads(1),
        });
        self.insert(Arc::clone(&version));
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modeltree::M5Config;
    use perfcounters::{Dataset, EventId, Sample};

    fn toy_tree(flip: bool) -> ModelTree {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("toy");
        for i in 0..200 {
            let hot = (i % 2 == 0) ^ flip;
            let mut s = Sample::zeros(if hot { 0.5 } else { 1.5 });
            s.set(EventId::DtlbMiss, if hot { 1e-4 } else { 3e-4 });
            ds.push(s, b);
        }
        ModelTree::fit(&ds, &M5Config::default()).unwrap()
    }

    #[test]
    fn register_resolve_and_swap() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("cpu2006").is_none());

        let v1 = reg.register_tree("cpu2006", &toy_tree(false));
        assert_eq!(reg.len(), 1);
        let resolved = reg.get("cpu2006").unwrap();
        assert!(Arc::ptr_eq(&v1, &resolved));

        // Hot swap: the name now resolves to v2, but the v1 Arc a
        // request captured remains fully usable.
        let v2 = reg.register_tree("cpu2006", &toy_tree(true));
        assert_ne!(v1.version, v2.version);
        assert!(Arc::ptr_eq(&v2, &reg.get("cpu2006").unwrap()));
        let mut probe = Sample::zeros(0.0);
        probe.set(EventId::DtlbMiss, 1e-4);
        let _ = resolved.engine.predict(&probe); // old version still serves

        assert_eq!(reg.names(), vec!["cpu2006".to_string()]);
        assert_eq!(
            reg.versions(),
            vec![("cpu2006".to_string(), v2.version.clone())]
        );
    }

    #[test]
    fn content_equal_trees_share_a_version() {
        let reg = ModelRegistry::new();
        let a = reg.register_tree("a", &toy_tree(false));
        let b = reg.register_tree("b", &toy_tree(false));
        let c = reg.register_tree("c", &toy_tree(true));
        assert_eq!(a.version, b.version);
        assert_ne!(a.version, c.version);
        assert_eq!(a.version.len(), 32);
    }

    #[test]
    fn store_round_trip_and_miss() {
        let dir = std::env::temp_dir().join(format!("serve-registry-test-{}", std::process::id()));
        let store = ArtifactStore::open(&dir);
        let tree = toy_tree(false);
        let key = Fingerprint(0xdead_beef);
        store.store_tree(key, &tree).unwrap();

        let reg = ModelRegistry::new();
        let v = reg.load_from_store(&store, "cpu2006", key).unwrap();
        assert_eq!(v.version, key.to_hex());
        assert!(reg.get("cpu2006").is_some());

        let missing = reg.load_from_store(&store, "cpu2006", Fingerprint(1));
        assert!(missing.is_err());
        // A failed swap must leave the previous version in place.
        assert_eq!(reg.get("cpu2006").unwrap().version, key.to_hex());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
