//! A hand-rolled HTTP/1.1 subset: exactly what the prediction server
//! and load generator need, hardened against garbage.
//!
//! The parser is **incremental**: it is handed the connection's whole
//! read buffer and either returns a complete request plus the number of
//! bytes it consumed, reports "incomplete, read more", or rejects the
//! stream with a typed error that maps onto a 4xx status. It never
//! panics on malformed input — truncated heads, oversized bodies,
//! binary garbage, and absurd header counts all surface as
//! [`HttpError`] (see `testkit/tests/serve_e2e.rs` for the fuzz-style
//! hardening suite).
//!
//! Unsupported-on-purpose: chunked transfer encoding, multiline header
//! folding, trailers, and HTTP/2 — clients the workspace controls never
//! send them, and anything that does gets a clean 400.

use std::fmt;

/// Maximum bytes of request line + headers. Beyond this the stream is
/// rejected with 431 before any more reading.
pub const MAX_HEAD: usize = 8 * 1024;

/// Maximum declared `Content-Length`. Large enough for a ~16k-row
/// dense text batch, small enough that a hostile client cannot balloon
/// a handler's buffer; beyond it the request is rejected with 413.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Maximum number of request headers (anti-DoS bound on parse work).
const MAX_HEADERS: usize = 64;

/// One parsed request, borrowing from the connection's read buffer.
/// Header names of interest are pre-extracted; everything else is
/// dropped during parsing.
///
/// Borrowing instead of owning matters: at 100k+ req/s every
/// per-request `String`/`Vec` allocation is measurable (the allocator
/// is global-locked on this target), and the handler keeps the read
/// buffer alive until the response is rendered anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: &'a str,
    /// Request path (target up to any `?`, always starts with `/`).
    pub path: &'a str,
    /// Query string (the target after `?`, without the `?`); empty
    /// when the target has none.
    pub query: &'a str,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
    /// `Content-Type` value, verbatim (compare case-insensitively).
    pub content_type: Option<&'a str>,
    /// `Accept` value, verbatim (drives `/metrics` content
    /// negotiation).
    pub accept: Option<&'a str>,
    /// `X-Model` header: which registry entry the request targets
    /// (defaults to the server's sole/default model when absent).
    pub model: Option<&'a str>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: &'a [u8],
}

/// Why a byte stream was rejected. Each variant maps onto one 4xx.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// No complete head within [`MAX_HEAD`] bytes → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY`] → 413.
    BodyTooLarge,
    /// Anything else wrong with the head → 400 with the reason.
    Malformed(&'static str),
}

impl HttpError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Malformed(_) => 400,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD} bytes"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY} bytes"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

/// Attempts to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller
///   drains `consumed` bytes and may immediately try again (HTTP
///   pipelining: every already-buffered request should be parsed and
///   dispatched before waiting on responses, which is what lets one
///   connection fill a coalescer batch).
/// * `Ok(None)` — the buffer holds only a prefix; read more.
/// * `Err(_)` — the stream is unsalvageable; respond and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request<'_>, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(
            "request line is not METHOD SP PATH SP VERSION",
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("method is not an uppercase token"));
    }
    if !path.starts_with('/') || path.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(HttpError::Malformed(
            "path must start with '/' and carry no controls",
        ));
    }
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    let default_keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };

    let mut content_length = 0usize;
    let mut keep_alive = default_keep_alive;
    let mut content_type = None;
    let mut accept = None;
    let mut model = None;
    let mut n_headers = 0usize;
    for line in lines {
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without ':'"));
        };
        let value = value.trim();
        if name.is_empty() || name.bytes().any(|b| b <= b' ' || b == 0x7f) {
            return Err(HttpError::Malformed("invalid header name"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let length: u64 = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            if length > MAX_BODY as u64 {
                return Err(HttpError::BodyTooLarge);
            }
            content_length = length as usize;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value);
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value);
        } else if name.eq_ignore_ascii_case("x-model") {
            model = Some(value);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed(
                "chunked transfer encoding unsupported",
            ));
        }
    }

    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    Ok(Some((
        Request {
            method,
            path,
            query,
            keep_alive,
            content_type,
            accept,
            model,
            body: &buf[head_len..total],
        },
        total,
    )))
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present
/// within the first [`MAX_HEAD`] bytes.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let window = &buf[..buf.len().min(MAX_HEAD)];
    window
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// Appends one response to `out`. `Content-Length` is always emitted;
/// extra headers are caller-supplied `(name, value)` pairs.
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) {
    use std::io::Write;
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(s: &str) -> Result<Option<(Request<'_>, usize)>, HttpError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn parses_minimal_get() {
        let (r, used) = req("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
        assert_eq!(used, "GET /healthz HTTP/1.1\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let s = "POST /predict HTTP/1.1\r\nContent-Type: text/plain\r\nX-Model: cpu2006\r\nContent-Length: 5\r\n\r\nhello";
        let (r, used) = req(s).unwrap().unwrap();
        assert_eq!(r.body, b"hello");
        assert_eq!(r.content_type, Some("text/plain"));
        assert_eq!(r.model, Some("cpu2006"));
        assert_eq!(used, s.len());
    }

    #[test]
    fn incomplete_head_and_body_want_more() {
        assert_eq!(req("POST /pred").unwrap(), None);
        assert_eq!(
            req("POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal").unwrap(),
            None
        );
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let s = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (a, used) = req(s).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        let (b, used2) = parse_request(&s.as_bytes()[used..]).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(used + used2, s.len());
    }

    #[test]
    fn splits_query_and_extracts_accept() {
        let (r, _) = req(
            "GET /metrics?format=prom HTTP/1.1\r\nAccept: application/openmetrics-text\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query, "format=prom");
        assert_eq!(r.accept, Some("application/openmetrics-text"));
        let (r, _) = req("GET /metrics HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query, "");
        assert_eq!(r.accept, None);
        let (r, _) = req("GET /metrics? HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!((r.path, r.query), ("/metrics", ""));
    }

    #[test]
    fn connection_semantics() {
        let (r, _) = req("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
        let (r, _) = req("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.keep_alive);
        let (r, _) = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(req("\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            req("get / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("GET noslash HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("GET / HTTP/1.1\r\nbroken line\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let mut bin = b"POST /predict HTTP/1.1\r\nContent-Length: 3\r\nX-".to_vec();
        bin.extend_from_slice(&[0xff, 0xfe, 0x00]);
        bin.extend_from_slice(b": v\r\n\r\nabc");
        assert!(parse_request(&bin).is_err());
    }

    #[test]
    fn enforces_limits() {
        // An endless header stream without a terminator: 431 once the
        // window fills.
        let mut s = String::from("GET / HTTP/1.1\r\n");
        while s.len() < MAX_HEAD {
            s.push_str("X-Pad: 0123456789abcdef\r\n");
        }
        assert_eq!(req(&s), Err(HttpError::HeadTooLarge));
        // A declared body over the cap: 413 immediately, without
        // waiting for the bytes.
        let s = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(req(&s), Err(HttpError::BodyTooLarge));
        // Too many headers.
        let mut s = String::from("GET / HTTP/1.1\r\n");
        for i in 0..70 {
            s.push_str(&format!("X-H{i}: v\r\n"));
        }
        s.push_str("\r\n");
        assert!(matches!(req(&s), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_writer_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", &[("X-Model-Version", "abc")], b"1.5\n");
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n"));
        assert!(s.contains("X-Model-Version: abc\r\n"));
        assert!(s.ends_with("\r\n\r\n1.5\n"));
    }
}
