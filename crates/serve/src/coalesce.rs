//! Request coalescing: many concurrent small requests, one columnar
//! batch-kernel invocation.
//!
//! Per-request engine cost at serving granularity is dominated by fixed
//! overhead — kernel setup, output allocation, condvar wakes — not by
//! the ~tens of nanoseconds the SIMD kernels spend per row. The
//! coalescer amortizes that overhead: handler threads [`submit`] rows
//! and block on a per-request ticket while a single batcher thread
//! accumulates everything submitted within a **time-or-size window**
//! (first of `window` elapsed since the oldest pending request, or
//! `max_batch_rows` accumulated) and runs one
//! [`CompiledTree::predict_batch`]/[`classify_batch`] per distinct
//! (model version, kind) in the batch.
//!
//! `window == 0` degenerates to strict one-request-per-batch execution
//! — the honest unbatched baseline `bench_serve` compares against.
//!
//! **Backpressure:** pending rows are bounded by `queue_rows`;
//! [`Coalescer::submit`] fails fast with [`SubmitError::Busy`] instead
//! of queueing unboundedly, which the server surfaces as HTTP 429 +
//! `Retry-After`. Overload degrades (some requests shed, the rest at
//! full batch efficiency) instead of collapsing under queue growth.
//!
//! **Determinism:** every engine output element is a pure function of
//! its own row (bit-identical across batch compositions and thread
//! counts — the `modeltree::compiled` contract), so coalescing is
//! invisible in results: a row predicts identically whether it shared
//! a batch with 4095 strangers or ran alone.
//!
//! [`submit`]: Coalescer::submit
//! [`CompiledTree::predict_batch`]: modeltree::CompiledTree::predict_batch
//! [`classify_batch`]: modeltree::CompiledTree::classify_batch

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obskit::metrics::{self, Hist, Metric};
use obskit::ring::{self, FlightKind};
use perfcounters::events::N_EVENTS;
use perfcounters::{Dataset, Sample};

use crate::registry::ModelVersion;

/// Which engine entry point a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// CPI regression (`predict_batch`).
    Predict,
    /// 1-based leaf/linear-model number (`classify_batch`).
    Classify,
}

/// What a request got back.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// One CPI prediction per submitted row.
    Predictions(Vec<f64>),
    /// One 1-based linear-model number per submitted row.
    Classes(Vec<u32>),
    /// The batcher failed the request (shutdown mid-flight).
    Failed(String),
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending-row queue is full — shed with 429 + Retry-After.
    Busy,
    /// The coalescer is shutting down.
    ShuttingDown,
}

/// Batching policy.
#[derive(Debug, Clone)]
pub struct CoalescerConfig {
    /// Maximum time the oldest pending request waits before its batch
    /// flushes. `Duration::ZERO` disables coalescing (one request per
    /// batch — the unbatched A/B baseline).
    pub window: Duration,
    /// Row count that flushes a batch early (and the per-flush cap).
    pub max_batch_rows: usize,
    /// Bound on pending rows across all queued requests; submits beyond
    /// it are refused with [`SubmitError::Busy`].
    pub queue_rows: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        CoalescerConfig {
            window: Duration::from_micros(200),
            max_batch_rows: 4096,
            queue_rows: 16384,
        }
    }
}

/// A submitted request's completion slot: the batcher fills it, the
/// handler blocks on it. One-shot.
#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<TicketSlot>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct TicketSlot {
    outcome: Option<Outcome>,
    /// True while a handler thread is parked in [`Ticket::wait`].
    /// [`resolve`] skips the condvar notify (a futex syscall, and on a
    /// busy single core a wakeup-preemption of the batcher mid-batch)
    /// when nobody is parked — under pipelining most tickets are
    /// collected after the fact, so most resolves stay syscall-free.
    waiting: bool,
}

/// Handle a handler thread holds while its rows ride a batch.
#[derive(Debug)]
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    /// Blocks until the batcher resolves this request.
    pub fn wait(self) -> Outcome {
        let mut slot = self.0.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(outcome) = slot.outcome.take() {
                return outcome;
            }
            slot.waiting = true;
            slot = self.0.ready.wait(slot).expect("ticket lock poisoned");
        }
    }
}

fn resolve(inner: &TicketInner, outcome: Outcome) {
    let waiting = {
        let mut slot = inner.slot.lock().expect("ticket lock poisoned");
        slot.outcome = Some(outcome);
        slot.waiting
    };
    if waiting {
        inner.ready.notify_one();
    }
}

/// One queued request.
struct Job {
    /// The model version captured at submit time. Batches group by this
    /// `Arc`'s pointer, so a hot swap between submit and flush cannot
    /// move the job onto a different version.
    model: Arc<ModelVersion>,
    kind: RequestKind,
    /// Row-major densities, `N_EVENTS` per row.
    rows: Vec<f64>,
    n_rows: usize,
    ticket: Arc<TicketInner>,
    enqueued: Instant,
    /// Sampled trace request id, or 0 when this request is not traced.
    /// Traced jobs leave queue-wait/batch/engine spans tagged with the
    /// id so one request's path is reconstructable from the trace.
    req_id: u64,
}

struct State {
    jobs: VecDeque<Job>,
    pending_rows: usize,
    shutdown: bool,
}

/// The time-or-size request batcher. Create with [`Coalescer::start`];
/// dropping it drains and resolves every pending request.
pub struct Coalescer {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    cfg: CoalescerConfig,
}

impl Coalescer {
    /// Spawns the batcher thread.
    pub fn start(cfg: CoalescerConfig) -> Coalescer {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                pending_rows: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            cfg,
        });
        let worker = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || batcher_loop(&worker))
            .expect("spawn batcher thread");
        Coalescer {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Queues `rows` (row-major, `N_EVENTS` floats per row) against a
    /// model version. Returns a [`Ticket`] to block on, or fails fast
    /// when the queue is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or not a multiple of `N_EVENTS` —
    /// callers validate shape (and finiteness) before submitting.
    pub fn submit(
        &self,
        model: Arc<ModelVersion>,
        kind: RequestKind,
        rows: Vec<f64>,
    ) -> Result<Ticket, SubmitError> {
        self.submit_traced(model, kind, rows, 0)
    }

    /// [`submit`](Coalescer::submit) carrying a sampled trace request
    /// id (0 = untraced). The id rides the job through batching so the
    /// queue-wait, batch-membership, and engine spans it appears in can
    /// be joined back to the request in one Chrome-trace export.
    pub fn submit_traced(
        &self,
        model: Arc<ModelVersion>,
        kind: RequestKind,
        rows: Vec<f64>,
        req_id: u64,
    ) -> Result<Ticket, SubmitError> {
        assert!(
            !rows.is_empty() && rows.len().is_multiple_of(N_EVENTS),
            "submit wants non-empty row-major N_EVENTS-wide rows"
        );
        let n_rows = rows.len() / N_EVENTS;
        let mut state = self.shared.state.lock().expect("coalescer lock poisoned");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // Fail-fast bound: admit a request only if the whole queue
        // (including it) stays within queue_rows. A single oversized
        // request is still admitted on an empty queue rather than being
        // unservable.
        if state.pending_rows + n_rows > self.shared.cfg.queue_rows && state.pending_rows > 0 {
            return Err(SubmitError::Busy);
        }
        let ticket = Arc::new(TicketInner::default());
        let was_empty = state.jobs.is_empty();
        let was_below_cap = state.pending_rows < self.shared.cfg.max_batch_rows;
        state.pending_rows += n_rows;
        let size_ready = state.pending_rows >= self.shared.cfg.max_batch_rows;
        state.jobs.push_back(Job {
            model,
            kind,
            rows,
            n_rows,
            ticket: Arc::clone(&ticket),
            enqueued: Instant::now(),
            req_id,
        });
        drop(state);
        if req_id != 0 {
            ring::record(
                FlightKind::RequestSubmitted,
                req_id,
                n_rows as u64,
                kind as u64,
            );
        }
        // Wake the batcher only when this submit changes what it should
        // do: the queue went non-empty (it may be parked with no timer),
        // the size trigger just crossed, or unbatched mode (every
        // request is a batch). A mid-window submit otherwise rides the
        // already-armed window timeout — unconditional notifies here
        // made the batcher wake, find the window unexpired, and sleep
        // again once per request, two context switches that (on the
        // 1-vCPU bench box) cost more than the batching saved.
        if was_empty || (size_ready && was_below_cap) || self.shared.cfg.window.is_zero() {
            self.shared.wake.notify_one();
        }
        Ok(Ticket(ticket))
    }

    /// Pending rows right now (diagnostics).
    pub fn pending_rows(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("coalescer lock poisoned")
            .pending_rows
    }

    /// The batching policy.
    pub fn config(&self) -> &CoalescerConfig {
        &self.shared.cfg
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("coalescer lock poisoned");
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

/// The batcher thread: wait for the flush trigger, take a batch,
/// execute it, resolve tickets; on shutdown, drain what is queued.
fn batcher_loop(shared: &Shared) {
    let cfg = &shared.cfg;
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("coalescer lock poisoned");
            loop {
                if state.jobs.is_empty() {
                    if state.shutdown {
                        return;
                    }
                    state = shared.wake.wait(state).expect("coalescer lock poisoned");
                    continue;
                }
                // Flush triggers, in priority order: shutdown (drain
                // now), size (a full batch is waiting), window=0
                // (unbatched mode: take exactly one request), time (the
                // oldest request has waited long enough).
                if state.shutdown || state.pending_rows >= cfg.max_batch_rows {
                    break;
                }
                if cfg.window.is_zero() {
                    break;
                }
                let oldest = state.jobs.front().expect("jobs non-empty").enqueued;
                let age = oldest.elapsed();
                if age >= cfg.window {
                    break;
                }
                let (next, _timeout) = shared
                    .wake
                    .wait_timeout(state, cfg.window - age)
                    .expect("coalescer lock poisoned");
                state = next;
            }
            take_batch(&mut state, cfg)
        };
        execute(batch);
    }
}

/// Pops the front of the queue up to the batch-size cap (window = 0
/// pops exactly one request). Requests are never split across batches.
fn take_batch(state: &mut State, cfg: &CoalescerConfig) -> Vec<Job> {
    let mut batch = Vec::new();
    let mut rows = 0usize;
    while let Some(job) = state.jobs.front() {
        let take_anyway = batch.is_empty(); // an oversized lone request still runs
        if !take_anyway && (rows + job.n_rows > cfg.max_batch_rows || cfg.window.is_zero()) {
            break;
        }
        let job = state.jobs.pop_front().expect("front exists");
        rows += job.n_rows;
        state.pending_rows -= job.n_rows;
        batch.push(job);
        if cfg.window.is_zero() {
            break;
        }
    }
    batch
}

/// Runs one flushed batch: group jobs by (model version, kind), build
/// one columnar [`Dataset`] per group, run one batch-kernel call, and
/// scatter results back to each job's ticket.
/// Comma-joined sampled request ids in a set of jobs (tracing only).
fn traced_ids(jobs: &[Job], members: Option<&[usize]>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut push = |job: &Job| {
        if job.req_id != 0 {
            if !out.is_empty() {
                out.push(',');
            }
            let _ = write!(out, "{}", job.req_id);
        }
    };
    match members {
        Some(members) => members.iter().for_each(|&i| push(&jobs[i])),
        None => jobs.iter().for_each(push),
    }
    out
}

fn execute(mut batch: Vec<Job>) {
    if batch.is_empty() {
        return;
    }
    let tracing = obskit::tracing_enabled();
    let batch_started = tracing.then(Instant::now);
    let total_rows: usize = batch.iter().map(|j| j.n_rows).sum();
    metrics::incr(Metric::ServeBatches);
    metrics::observe(Hist::ServeBatchRows, total_rows as u64);
    if tracing {
        // Retroactive queue-wait spans: enqueue → flush, one per
        // sampled request.
        for job in &batch {
            if job.req_id != 0 {
                obskit::span::complete_since(
                    "serve",
                    "serve.queue_wait",
                    job.enqueued,
                    &[("req_id", &job.req_id), ("rows", &job.n_rows)],
                );
            }
        }
    }

    // Group by identity of the captured model version + kind. Batches
    // are small (≤ max_batch_rows) and the distinct-group count tiny,
    // so a linear scan beats hashing.
    let mut groups: Vec<(usize, RequestKind, Vec<usize>)> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        let model_ptr = Arc::as_ptr(&job.model) as usize;
        match groups
            .iter_mut()
            .find(|(p, k, _)| *p == model_ptr && *k == job.kind)
        {
            Some((_, _, members)) => members.push(i),
            None => groups.push((model_ptr, job.kind, vec![i])),
        }
    }

    let n_groups = groups.len();
    for (_, kind, members) in groups {
        let model = Arc::clone(&batch[members[0]].model);
        let engine = &model.engine;
        let group_rows: usize = members.iter().map(|&i| batch[i].n_rows).sum();
        let mut ds = Dataset::with_capacity(group_rows);
        let label = ds.add_benchmark("serve");
        for &i in &members {
            for row in batch[i].rows.chunks_exact(N_EVENTS) {
                ds.push(Sample::from_densities(0.0, row), label);
            }
        }
        match kind {
            RequestKind::Predict => {
                metrics::add(Metric::ServeRowsPredicted, group_rows as u64);
                let engine_started = tracing.then(Instant::now);
                let out = engine.predict_batch(&ds);
                if let Some(started) = engine_started {
                    obskit::span::complete_since(
                        "serve",
                        "serve.engine",
                        started,
                        &[
                            ("kind", &"predict"),
                            ("rows", &group_rows),
                            ("req_ids", &traced_ids(&batch, Some(&members))),
                        ],
                    );
                }
                let mut offsets = Vec::with_capacity(members.len());
                let mut offset = 0;
                for &i in &members {
                    offsets.push(offset);
                    offset += batch[i].n_rows;
                }
                // Resolve in *reverse* submit order: a pipelined handler
                // blocks on its oldest outstanding ticket, so resolving
                // that one last delivers one wakeup per handler per
                // batch — everything submitted after it is already
                // collectable when the handler runs again.
                for (&i, &off) in members.iter().zip(&offsets).rev() {
                    let n = batch[i].n_rows;
                    // Reuse the job's own row buffer as the result
                    // storage: one allocation per request instead of
                    // two, and the hot single-row case never touches
                    // the allocator here at all.
                    let mut slot = std::mem::take(&mut batch[i].rows);
                    slot.clear();
                    slot.extend_from_slice(&out[off..off + n]);
                    record_resolved(&batch[i]);
                    resolve(&batch[i].ticket, Outcome::Predictions(slot));
                }
            }
            RequestKind::Classify => {
                metrics::add(Metric::ServeRowsClassified, group_rows as u64);
                let engine_started = tracing.then(Instant::now);
                let out = engine.classify_batch(&ds);
                if let Some(started) = engine_started {
                    obskit::span::complete_since(
                        "serve",
                        "serve.engine",
                        started,
                        &[
                            ("kind", &"classify"),
                            ("rows", &group_rows),
                            ("req_ids", &traced_ids(&batch, Some(&members))),
                        ],
                    );
                }
                let mut offsets = Vec::with_capacity(members.len());
                let mut offset = 0;
                for &i in &members {
                    offsets.push(offset);
                    offset += batch[i].n_rows;
                }
                for (&i, &off) in members.iter().zip(&offsets).rev() {
                    let job = &batch[i];
                    let slice = out[off..off + job.n_rows].to_vec();
                    record_resolved(job);
                    resolve(&job.ticket, Outcome::Classes(slice));
                }
            }
        }
    }
    ring::record(
        FlightKind::BatchFlushed,
        batch.len() as u64,
        total_rows as u64,
        n_groups as u64,
    );
    if let Some(started) = batch_started {
        obskit::span::complete_since(
            "serve",
            "serve.batch",
            started,
            &[
                ("jobs", &batch.len()),
                ("rows", &total_rows),
                ("req_ids", &traced_ids(&batch, None)),
            ],
        );
    }
}

/// Flight-records the resolution of a sampled request (id, rows,
/// submit→resolve µs). Untraced jobs cost one branch.
fn record_resolved(job: &Job) {
    if job.req_id != 0 {
        ring::record(
            FlightKind::RequestResolved,
            job.req_id,
            job.n_rows as u64,
            u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use modeltree::{M5Config, ModelTree};
    use perfcounters::{Dataset as Ds, EventId, Sample as S};

    fn version() -> Arc<ModelVersion> {
        let mut ds = Ds::new();
        let b = ds.add_benchmark("toy");
        for i in 0..300 {
            let hot = i % 2 == 0;
            let mut s = S::zeros(if hot { 0.5 } else { 1.5 });
            s.set(EventId::DtlbMiss, if hot { 1e-4 } else { 3e-4 });
            s.set(EventId::Load, 0.1 + (i as f64) * 1e-3);
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        ModelRegistry::new().register_tree("toy", &tree)
    }

    fn row(dtlb: f64, load: f64) -> Vec<f64> {
        let mut s = S::zeros(0.0);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.densities().to_vec()
    }

    #[test]
    fn size_trigger_flushes_before_window() {
        let model = version();
        // A one-hour window: only the size trigger can flush.
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_secs(3600),
            max_batch_rows: 4,
            queue_rows: 1000,
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                c.submit(
                    Arc::clone(&model),
                    RequestKind::Predict,
                    row(1e-4 * (i + 1) as f64, 0.2),
                )
                .unwrap()
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Outcome::Predictions(p) => assert_eq!(p.len(), 1),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn window_trigger_flushes_partial_batch() {
        let model = version();
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_millis(5),
            max_batch_rows: 1 << 20,
            queue_rows: 1 << 20,
        });
        let t = c
            .submit(Arc::clone(&model), RequestKind::Classify, row(1e-4, 0.2))
            .unwrap();
        // One lone request, far below the size trigger: the window
        // timer must still flush it.
        match t.wait() {
            Outcome::Classes(cs) => assert_eq!(cs.len(), 1),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn window_zero_is_one_request_per_batch() {
        let model = version();
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::ZERO,
            max_batch_rows: 4096,
            queue_rows: 1 << 20,
        });
        obskit::set_enabled(true, false);
        let before = metrics::value(Metric::ServeBatches);
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| {
                c.submit(Arc::clone(&model), RequestKind::Predict, row(1e-4, 0.2))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert!(matches!(t.wait(), Outcome::Predictions(_)));
        }
        let batches = metrics::value(Metric::ServeBatches) - before;
        obskit::set_enabled(false, false);
        assert_eq!(batches, 8, "window=0 must never coalesce");
    }

    #[test]
    fn backpressure_rejects_when_full_and_recovers() {
        let model = version();
        // A long window and a tiny row bound: the first submit parks in
        // the queue, the second must bounce.
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_millis(50),
            max_batch_rows: 1 << 20,
            queue_rows: 2,
        });
        let first = c
            .submit(
                Arc::clone(&model),
                RequestKind::Predict,
                [row(1e-4, 0.1), row(2e-4, 0.2)].concat(),
            )
            .unwrap();
        assert_eq!(
            c.submit(Arc::clone(&model), RequestKind::Predict, row(1e-4, 0.3))
                .err(),
            Some(SubmitError::Busy)
        );
        assert!(matches!(first.wait(), Outcome::Predictions(p) if p.len() == 2));
        // Queue drained: submits are admitted again.
        let retry = c
            .submit(Arc::clone(&model), RequestKind::Predict, row(1e-4, 0.3))
            .unwrap();
        assert!(matches!(retry.wait(), Outcome::Predictions(_)));
    }

    #[test]
    fn batched_results_are_bit_identical_to_direct_calls() {
        let model = version();
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_millis(2),
            max_batch_rows: 4096,
            queue_rows: 1 << 20,
        });
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| row(4e-4 * (i as f64) / 64.0, 0.01 * i as f64))
            .collect();
        let tickets: Vec<Ticket> = rows
            .iter()
            .map(|r| {
                c.submit(Arc::clone(&model), RequestKind::Predict, r.clone())
                    .unwrap()
            })
            .collect();
        for (r, t) in rows.iter().zip(tickets) {
            let Outcome::Predictions(got) = t.wait() else {
                panic!("expected predictions")
            };
            let expect = model.engine.predict(&S::from_densities(0.0, r));
            assert_eq!(got[0].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn mixed_kinds_and_oversized_requests_in_one_queue() {
        let model = version();
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_millis(2),
            max_batch_rows: 4, // rows per flush; a 10-row request exceeds it alone
            queue_rows: 1 << 20,
        });
        let big: Vec<f64> = (0..10).flat_map(|i| row(1e-4 * i as f64, 0.1)).collect();
        let t_big = c
            .submit(Arc::clone(&model), RequestKind::Predict, big)
            .unwrap();
        let t_cls = c
            .submit(Arc::clone(&model), RequestKind::Classify, row(3e-4, 0.2))
            .unwrap();
        assert!(matches!(t_big.wait(), Outcome::Predictions(p) if p.len() == 10));
        assert!(matches!(t_cls.wait(), Outcome::Classes(cs) if cs.len() == 1));
    }

    #[test]
    fn drop_drains_pending_requests() {
        let model = version();
        let c = Coalescer::start(CoalescerConfig {
            window: Duration::from_secs(3600),
            max_batch_rows: 1 << 20,
            queue_rows: 1 << 20,
        });
        // Far below both triggers; only the drop-drain can flush it.
        let t = c
            .submit(Arc::clone(&model), RequestKind::Predict, row(1e-4, 0.2))
            .unwrap();
        drop(c);
        assert!(matches!(t.wait(), Outcome::Predictions(_)));
    }
}
