//! Householder QR factorization and QR-based least squares.
//!
//! QR is the numerically preferred path for the linear models inside the
//! model tree; the normal-equation + ridge path in [`crate::solve`] is the
//! fallback for degenerate leaves.

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// The result of a Householder QR factorization, `a = q * r`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthonormal factor, `m x n` (thin form).
    q: Matrix,
    /// Upper-triangular factor, `n x n`.
    r: Matrix,
}

impl QrDecomposition {
    /// Borrow of the thin orthonormal factor.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Borrow of the upper-triangular factor.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Smallest absolute diagonal entry of `R`, a cheap rank-deficiency
    /// indicator.
    pub fn min_diag(&self) -> f64 {
        (0..self.r.rows())
            .map(|i| self.r[(i, i)].abs())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes the thin Householder QR factorization of `a` (`m >= n`
/// required).
///
/// # Errors
///
/// Returns [`MathError::ShapeMismatch`] if `a` has more columns than rows.
pub fn qr(a: &Matrix) -> Result<QrDecomposition> {
    let (m, n) = a.shape();
    if m < n {
        return Err(MathError::ShapeMismatch(format!(
            "QR requires rows >= cols, got {m}x{n}"
        )));
    }
    // Work on a copy; accumulate Householder vectors implicitly by applying
    // them to an identity-extended matrix.
    let mut r = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k.
        let norm_x = (k..m).map(|i| r[(i, k)] * r[(i, k)]).sum::<f64>().sqrt();
        let mut v = vec![0.0; m - k];
        if norm_x > 0.0 {
            let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = r[(k + i, k)];
            }
            v[0] -= alpha;
            let norm_v = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm_v > 0.0 {
                for vi in v.iter_mut() {
                    *vi /= norm_v;
                }
                // Apply H = I - 2 v vᵀ to the trailing submatrix of r.
                for c in k..n {
                    let dot = (0..m - k).map(|i| v[i] * r[(k + i, c)]).sum::<f64>();
                    for i in 0..m - k {
                        r[(k + i, c)] -= 2.0 * v[i] * dot;
                    }
                }
            }
        }
        vs.push(v);
    }

    // Build thin Q by applying the Householder reflections to the first n
    // columns of the identity, in reverse order.
    let mut q = Matrix::zeros(m, n);
    for c in 0..n {
        q[(c, c)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for c in 0..n {
            let dot = (0..m - k).map(|i| v[i] * q[(k + i, c)]).sum::<f64>();
            for i in 0..m - k {
                q[(k + i, c)] -= 2.0 * v[i] * dot;
            }
        }
    }

    // Zero the strictly lower part of the thin R.
    let mut r_thin = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_thin[(i, j)] = r[(i, j)];
        }
    }

    Ok(QrDecomposition { q, r: r_thin })
}

/// Solves the least-squares problem `min ||a x - y||` via Householder QR.
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if `y.len() != a.rows()` or `a` is wider
///   than tall.
/// * [`MathError::Singular`] if `R` is numerically rank deficient.
///
/// # Examples
///
/// ```
/// use mathkit::matrix::Matrix;
/// use mathkit::qr::least_squares;
///
/// // Overdetermined fit of y = 2x with noise-free data.
/// let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
/// let beta = least_squares(&a, &[2.0, 4.0, 6.0]).unwrap();
/// assert!((beta[0] - 2.0).abs() < 1e-12);
/// ```
pub fn least_squares(a: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if y.len() != m {
        return Err(MathError::ShapeMismatch(format!(
            "target length {} does not match {m} rows",
            y.len()
        )));
    }
    let decomposition = qr(a)?;
    let scale = decomposition.r.max_abs().max(1.0);
    if decomposition.min_diag() <= 1e-10 * scale {
        return Err(MathError::Singular);
    }
    // beta = R^{-1} Qᵀ y
    let qty = decomposition.q.transpose_matvec(y)?;
    let r = &decomposition.r;
    let mut beta = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = qty[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * beta[j];
        }
        beta[i] = acc / r[(i, i)];
    }
    Ok(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.5]]);
        let d = qr(&a).unwrap();
        let back = d.q().matmul(d.r()).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let d = qr(&a).unwrap();
        let qtq = d.q().transpose().matmul(d.q()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 1 + 2a + 3b
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[1.0, 2.0, 3.0],
        ]);
        let y = [1.0, 3.0, 4.0, 14.0];
        let beta = least_squares(&a, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
        assert!((beta[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: residual of LS solution must be orthogonal
        // to the column space.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let y = [0.0, 1.0, 1.0];
        let beta = least_squares(&a, &y).unwrap();
        let pred = a.matvec(&beta).unwrap();
        let resid: Vec<f64> = pred.iter().zip(&y).map(|(p, t)| t - p).collect();
        let ortho = a.transpose_matvec(&resid).unwrap();
        assert!(ortho.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn least_squares_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(
            least_squares(&a, &[1.0, 2.0, 3.0]),
            Err(MathError::Singular)
        );
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(qr(&a), Err(MathError::ShapeMismatch(_))));
    }

    #[test]
    fn least_squares_rejects_bad_target_length() {
        let a = Matrix::zeros(3, 2);
        assert!(matches!(
            least_squares(&a, &[1.0]),
            Err(MathError::ShapeMismatch(_))
        ));
    }
}
