//! Numerical substrate for the SPEC CPU2006 / SPEC OMP2001 characterization
//! reproduction.
//!
//! `mathkit` provides the pieces of numerical computing that the rest of the
//! workspace builds on, implemented from scratch so the workspace has no
//! external linear-algebra or statistics dependencies:
//!
//! * [`matrix`] — a dense, row-major [`matrix::Matrix`] with the
//!   operations needed for least-squares model fitting.
//! * [`solve`] — direct solvers: Gaussian elimination with partial pivoting
//!   and Cholesky factorization, plus a ridge-regularized fallback.
//! * [`qr`] — Householder QR factorization and QR-based least squares.
//! * [`special`] — special functions (log-gamma, regularized incomplete
//!   beta, error function) required by the probability distributions.
//! * [`dist`] — Normal and Student-t distributions with CDFs and quantiles,
//!   as needed by the two-sample hypothesis tests of the paper's Section VI.
//! * [`describe`] — descriptive statistics (means, unbiased variances,
//!   covariance, correlation, quantiles) matching the estimators in the
//!   paper's Equations 8–11.
//! * [`sampling`] — normal / truncated-normal / lognormal sampling helpers
//!   built on [`rand`], used by the synthetic workload generator.
//!
//! # Examples
//!
//! Solving a small least-squares problem:
//!
//! ```
//! use mathkit::matrix::Matrix;
//! use mathkit::qr::least_squares;
//!
//! // y = 1 + 2x sampled exactly.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
//! let y = [1.0, 3.0, 5.0];
//! let beta = least_squares(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-10);
//! assert!((beta[1] - 2.0).abs() < 1e-10);
//! ```

pub mod describe;
pub mod dist;
pub mod eigen;
pub mod matrix;
pub mod qr;
pub mod sampling;
pub mod solve;
pub mod special;

pub use describe::Summary;
pub use dist::{Normal, StudentT};
pub use matrix::Matrix;

/// Errors produced by `mathkit` numerical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// A matrix was singular (or numerically rank deficient) where an
    /// invertible matrix was required.
    Singular,
    /// Operand shapes were incompatible, e.g. multiplying a `2x3` matrix by
    /// a `2x2` matrix. The payload is a human-readable description.
    ShapeMismatch(String),
    /// The input was empty or otherwise too small for the requested
    /// computation (e.g. variance of zero samples).
    InsufficientData,
    /// A parameter was outside its mathematical domain (e.g. a negative
    /// variance or a probability outside `[0, 1]`).
    Domain(String),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::Singular => write!(f, "matrix is singular or rank deficient"),
            MathError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            MathError::InsufficientData => write!(f, "not enough data for computation"),
            MathError::Domain(msg) => write!(f, "parameter outside domain: {msg}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience alias for results from `mathkit` routines.
pub type Result<T> = std::result::Result<T, MathError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            MathError::Singular,
            MathError::ShapeMismatch("2x3 vs 2x2".into()),
            MathError::InsufficientData,
            MathError::Domain("p must be in [0,1]".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
