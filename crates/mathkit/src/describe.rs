//! Descriptive statistics matching the estimators in the paper's
//! Equations 8–11: sample means, unbiased variances, standard deviations,
//! covariance, correlation, and quantiles.

use crate::{MathError, Result};

/// Sample mean. Returns an error for an empty slice.
///
/// # Errors
///
/// [`MathError::InsufficientData`] if `xs` is empty.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(MathError::InsufficientData);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (`n - 1` denominator), Equation 9 in the paper.
///
/// # Errors
///
/// [`MathError::InsufficientData`] if fewer than 2 samples.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(MathError::InsufficientData);
    }
    let m = mean(xs)?;
    let ss = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Population variance (`n` denominator), as used by the M5' standard
/// deviation reduction criterion where the biased estimator is
/// conventional.
///
/// # Errors
///
/// [`MathError::InsufficientData`] if `xs` is empty.
pub fn variance_population(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(MathError::InsufficientData);
    }
    let m = mean(xs)?;
    let ss = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    Ok(ss / xs.len() as f64)
}

/// Unbiased sample standard deviation.
///
/// # Errors
///
/// [`MathError::InsufficientData`] if fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population standard deviation.
///
/// # Errors
///
/// [`MathError::InsufficientData`] if `xs` is empty.
pub fn std_dev_population(xs: &[f64]) -> Result<f64> {
    variance_population(xs).map(f64::sqrt)
}

/// Sample covariance (unbiased, `n - 1` denominator).
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if the slices differ in length.
/// * [`MathError::InsufficientData`] if fewer than 2 pairs.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MathError::ShapeMismatch(format!(
            "covariance inputs of length {} and {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(MathError::InsufficientData);
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let s = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>();
    Ok(s / (xs.len() - 1) as f64)
}

/// Pearson correlation coefficient, the metric `C` of the paper's
/// Equation 12.
///
/// Returns 0 when either input is (numerically) constant, which is the
/// conventional degenerate-case value for prediction-accuracy reporting.
///
/// # Errors
///
/// Propagates errors from [`covariance`].
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let cov = covariance(xs, ys)?;
    let sx = std_dev(xs)?;
    let sy = std_dev(ys)?;
    if sx <= 0.0 || sy <= 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Linearly interpolated quantile of an unsorted slice (`q` in `[0, 1]`).
///
/// # Errors
///
/// * [`MathError::InsufficientData`] if `xs` is empty.
/// * [`MathError::Domain`] if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(MathError::InsufficientData);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MathError::Domain(format!("q = {q} outside [0, 1]")));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// [`MathError::InsufficientData`] if `xs` is empty.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// A one-pass summary of a sample: count, mean, unbiased variance,
/// standard deviation, min, max.
///
/// # Examples
///
/// ```
/// use mathkit::describe::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Builds a summary from a slice using Welford's one-pass algorithm.
    ///
    /// # Errors
    ///
    /// [`MathError::InsufficientData`] if `xs` is empty.
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(MathError::InsufficientData);
        }
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let variance = if xs.len() > 1 {
            m2 / (xs.len() - 1) as f64
        } else {
            0.0
        };
        Ok(Summary {
            count: xs.len(),
            mean,
            variance,
            min,
            max,
        })
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean, `sd / sqrt(n)`.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32, n-1 = 7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((variance_population(&xs).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_errors() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(variance_population(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(Summary::from_slice(&[]).is_err());
    }

    #[test]
    fn covariance_and_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((correlation(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert_eq!(correlation(&xs, &ys).unwrap(), 0.0);
    }

    #[test]
    fn covariance_shape_mismatch() {
        assert!(covariance(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn summary_matches_two_pass() {
        let xs = [0.5, 1.5, 2.5, 3.5, 10.0];
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((s.variance() - variance(&xs).unwrap()).abs() < 1e-10);
        assert_eq!(s.min(), 0.5);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            prop_assert!(variance(&xs).unwrap() >= 0.0);
        }

        #[test]
        fn prop_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn prop_correlation_in_range(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 2..50),
        ) {
            let n = xs.len().min(ys.len());
            let c = correlation(&xs[..n], &ys[..n]).unwrap();
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_summary_consistent(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
            let s = Summary::from_slice(&xs).unwrap();
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_quantile_monotone(xs in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
            let q1 = quantile(&xs, 0.25).unwrap();
            let q2 = quantile(&xs, 0.5).unwrap();
            let q3 = quantile(&xs, 0.75).unwrap();
            prop_assert!(q1 <= q2 + 1e-9 && q2 <= q3 + 1e-9);
        }
    }
}
