//! Probability distributions used by the transferability hypothesis tests.
//!
//! The paper's Section VI uses the two-sample Student-t test (and we also
//! provide Mann-Whitney's normal approximation), so the distributions here
//! provide CDFs, survival functions, and quantiles for the Normal and
//! Student-t families.

use crate::special::{betai, erf, erfc};
use crate::{MathError, Result};

/// A normal (Gaussian) distribution.
///
/// # Examples
///
/// ```
/// use mathkit::dist::Normal;
/// let n = Normal::standard();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `sd <= 0` or either parameter is
    /// non-finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() || !sd.is_finite() || sd <= 0.0 {
            return Err(MathError::Domain(format!(
                "normal requires finite mean and sd > 0, got mean={mean}, sd={sd}"
            )));
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal, `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) by bisection on the CDF.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `p` is not strictly inside
    /// `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MathError::Domain(format!("p = {p} outside (0, 1)")));
        }
        // Standard-normal quantile via Acklam's rational approximation,
        // refined with one Newton step, then rescaled.
        let z = standard_normal_quantile(p);
        let z = {
            // One Newton refinement against our own CDF for consistency.
            let std = Normal::standard();
            let err = std.cdf(z) - p;
            z - err / std.pdf(z).max(1e-300)
        };
        Ok(self.mean + self.sd * z)
    }
}

/// Acklam's rational approximation to the standard normal quantile.
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A Student-t distribution with `nu` degrees of freedom.
///
/// # Examples
///
/// ```
/// use mathkit::dist::StudentT;
/// let t = StudentT::new(10.0).unwrap();
/// // Symmetric around zero.
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates a Student-t distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `nu <= 0` or non-finite.
    pub fn new(nu: f64) -> Result<Self> {
        if !nu.is_finite() || nu <= 0.0 {
            return Err(MathError::Domain(format!("degrees of freedom {nu} <= 0")));
        }
        Ok(StudentT { nu })
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function at `t`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        // For very large dof the t distribution is numerically normal and
        // the incomplete-beta route loses precision.
        if self.nu > 1e7 {
            return Normal::standard().cdf(t);
        }
        let x = self.nu / (self.nu + t * t);
        let p = 0.5 * betai(0.5 * self.nu, 0.5, x).expect("valid betai args");
        if t > 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Two-sided p-value for an observed statistic `t`:
    /// `P(|T| >= |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        let x = self.nu / (self.nu + t * t);
        betai(0.5 * self.nu, 0.5, x).expect("valid betai args")
    }

    /// Quantile (inverse CDF) via bisection.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `p` is not strictly in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MathError::Domain(format!("p = {p} outside (0, 1)")));
        }
        if (p - 0.5).abs() < 1e-15 {
            return Ok(0.0);
        }
        // Bracket then bisect; the CDF is monotone.
        let mut lo = -1.0;
        let mut hi = 1.0;
        while self.cdf(lo) > p {
            lo *= 2.0;
            if lo < -1e10 {
                break;
            }
        }
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e10 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// The critical value `t*` such that `P(|T| > t*) = alpha`, i.e. the
    /// two-sided critical threshold used when comparing the test statistic
    /// against, e.g., 1.960 at 95% confidence with large dof.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `alpha` is not strictly in
    /// `(0, 1)`.
    pub fn two_sided_critical(&self, alpha: f64) -> Result<f64> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(MathError::Domain(format!("alpha = {alpha} outside (0, 1)")));
        }
        self.quantile(1.0 - alpha / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_cdf_known_values() {
        let n = Normal::standard();
        assert!((n.cdf(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((n.cdf(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((n.cdf(1.959_963_985) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.9, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn normal_quantile_domain() {
        let n = Normal::standard();
        assert!(n.quantile(0.0).is_err());
        assert!(n.quantile(1.0).is_err());
    }

    #[test]
    fn normal_pdf_integrates_to_cdf_slope() {
        let n = Normal::standard();
        let h = 1e-5;
        for x in [-1.5, 0.0, 0.7] {
            let numeric = (n.cdf(x + h) - n.cdf(x - h)) / (2.0 * h);
            assert!(
                (numeric - n.pdf(x)).abs() < 1e-6,
                "x={x}: {numeric} vs {}",
                n.pdf(x)
            );
        }
    }

    #[test]
    fn t_matches_published_critical_values() {
        // t_{0.975, 10} = 2.228, t_{0.975, 30} = 2.042, t_{inf} -> 1.960
        let cases = [(10.0, 2.228), (30.0, 2.042), (1000.0, 1.962)];
        for (nu, expected) in cases {
            let t = StudentT::new(nu).unwrap();
            let crit = t.two_sided_critical(0.05).unwrap();
            assert!((crit - expected).abs() < 1e-2, "nu={nu}: {crit}");
        }
    }

    #[test]
    fn t_cdf_symmetry() {
        let t = StudentT::new(7.0).unwrap();
        for x in [0.5, 1.3, 2.9] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn t_two_sided_p_examples() {
        // With 2m-2 huge dof, t=1.212 should be clearly insignificant and
        // t=125 astronomically significant (paper Section VI values).
        let t = StudentT::new(416744.0).unwrap();
        assert!(t.two_sided_p(1.212) > 0.2);
        assert!(t.two_sided_p(125.38) < 1e-100 || t.two_sided_p(125.38) == 0.0);
    }

    #[test]
    fn t_approaches_normal_for_large_dof() {
        let t = StudentT::new(1e8).unwrap();
        let n = Normal::standard();
        for x in [-2.0, -0.5, 0.3, 1.7] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        let t = StudentT::new(12.0).unwrap();
        for p in [0.05, 0.3, 0.5, 0.8, 0.975] {
            let x = t.quantile(p).unwrap();
            assert!((t.cdf(x) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn t_rejects_bad_dof() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
        assert!(StudentT::new(f64::INFINITY).is_err());
    }
}
