//! Direct linear-system solvers.
//!
//! These back the regression fits: Gaussian elimination with partial
//! pivoting for general square systems, Cholesky for symmetric positive
//! definite Gram matrices, and a ridge-regularized fallback that the
//! regression code uses when a Gram matrix is numerically rank deficient
//! (which happens routinely with near-constant performance-counter columns).

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// Relative pivot threshold below which a matrix is treated as singular.
const SINGULARITY_EPS: f64 = 1e-12;

/// Solves `a * x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if `a` is not square or `b` has the wrong
///   length.
/// * [`MathError::Singular`] if a pivot is (relatively) zero.
///
/// # Examples
///
/// ```
/// use mathkit::matrix::Matrix;
/// use mathkit::solve::solve;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = solve(&a, &[3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::ShapeMismatch(format!(
            "matrix must be square, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(MathError::ShapeMismatch(format!(
            "rhs length {} does not match matrix order {n}",
            b.len()
        )));
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    let scale = m.max_abs().max(1.0);

    for col in 0..n {
        // Partial pivoting: find the largest magnitude entry in this column.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)]))
            .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
            .expect("non-empty pivot range");
        if pivot_val.abs() <= SINGULARITY_EPS * scale {
            return Err(MathError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for r in (col + 1)..n {
            let factor = m[(r, col)] / m[(col, col)];
            if factor == 0.0 {
                continue;
            }
            m[(r, col)] = 0.0;
            for c in (col + 1)..n {
                m[(r, c)] -= factor * m[(col, c)];
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for c in (r + 1)..n {
            acc -= m[(r, c)] * x[c];
        }
        x[r] = acc / m[(r, r)];
    }
    Ok(x)
}

/// Cholesky factorization of a symmetric positive definite matrix,
/// returning the lower triangular factor `L` with `a = L * Lᵀ`.
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if `a` is not square.
/// * [`MathError::Singular`] if `a` is not positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::ShapeMismatch(format!(
            "matrix must be square, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(MathError::Singular);
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `a * x = b` for symmetric positive definite `a` via Cholesky.
///
/// # Errors
///
/// Propagates errors from [`cholesky`], plus [`MathError::ShapeMismatch`]
/// for a wrong-length right-hand side.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if b.len() != n {
        return Err(MathError::ShapeMismatch(format!(
            "rhs length {} does not match matrix order {n}",
            b.len()
        )));
    }
    let l = cholesky(a)?;
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc / l[(i, i)];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[(k, i)] * x[k];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(x)
}

/// Solves the (possibly rank-deficient) normal equations `g * x = b` with a
/// small ridge term added to the diagonal: `(g + lambda I) x = b`.
///
/// The regression code calls this after plain solves fail; the ridge term
/// is scaled by the magnitude of `g` so the behavior is invariant to the
/// units of the inputs.
///
/// # Errors
///
/// Returns an error only if the system is so degenerate that even the
/// regularized solve fails after escalating the ridge term several times.
pub fn solve_ridge(g: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let n = g.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let scale = g.max_abs().max(1e-30);
    let mut ridge = lambda.max(1e-12) * scale;
    for _ in 0..8 {
        let mut reg = g.clone();
        for i in 0..n {
            reg[(i, i)] += ridge;
        }
        match solve_spd(&reg, b).or_else(|_| solve(&reg, b)) {
            Ok(x) if x.iter().all(|v| v.is_finite()) => return Ok(x),
            _ => ridge *= 100.0,
        }
    }
    Err(MathError::Singular)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn solve_identity() {
        let i = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_close(&solve(&i, &b).unwrap(), &b, 1e-14);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-14);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(MathError::Singular));
    }

    #[test]
    fn solve_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(MathError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = Matrix::identity(2);
        assert!(matches!(
            solve(&a, &[1.0]),
            Err(MathError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn solve_empty_system() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(solve(&a, &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn cholesky_of_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-14);
        let reconstructed = l.matmul(&l.transpose()).unwrap();
        assert!((reconstructed[(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(cholesky(&a), Err(MathError::Singular));
    }

    #[test]
    fn solve_spd_matches_general_solver() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = [1.0, -2.0, 3.0];
        let x1 = solve(&a, &b).unwrap();
        let x2 = solve_spd(&a, &b).unwrap();
        assert_close(&x1, &x2, 1e-12);
    }

    #[test]
    fn ridge_handles_singular_gram() {
        // Perfectly collinear columns: ordinary solve fails, ridge succeeds.
        let g = Matrix::from_rows(&[&[2.0, 2.0], &[2.0, 2.0]]);
        let b = [2.0, 2.0];
        let x = solve_ridge(&g, &b, 1e-8).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // The ridge solution must still nearly satisfy the (consistent)
        // system: residual is O(ridge), far below 1e-3 here.
        let residual = g.matvec(&x).unwrap();
        for (r, t) in residual.iter().zip(&b) {
            assert!((r - t).abs() < 1e-3, "residual {r} vs {t}");
        }
    }

    #[test]
    fn ridge_on_well_conditioned_close_to_exact() {
        let g = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let x = solve_ridge(&g, &[4.0, 9.0], 1e-12).unwrap();
        assert_close(&x, &[1.0, 1.0], 1e-6);
    }
}
