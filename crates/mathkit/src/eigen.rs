//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Backs the PCA used for the benchmark-subsetting comparison (the
//! paper's related work applies PCA + clustering to subsetting; see
//! `characterize::pca`). Jacobi is slow for large matrices but exact,
//! simple, and the matrices here are at most `19 x 19` (one row per
//! Table I event).

use crate::matrix::Matrix;
use crate::{MathError, Result};

/// An eigendecomposition of a symmetric matrix: `a = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted descending.
    values: Vec<f64>,
    /// Eigenvectors as matrix columns, in the order of `values`.
    vectors: Matrix,
}

impl SymmetricEigen {
    /// Eigenvalues, sorted descending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvector matrix; column `i` pairs with `values()[i]`.
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Copies eigenvector `i` out as a vector.
    pub fn vector(&self, i: usize) -> Vec<f64> {
        self.vectors.col(i)
    }
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi rotation method.
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] if `a` is not square.
/// * [`MathError::Domain`] if `a` is not (numerically) symmetric.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::ShapeMismatch(format!(
            "matrix must be square, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let scale = a.max_abs().max(1e-300);
    for i in 0..n {
        for j in 0..i {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-9 * scale {
                return Err(MathError::Domain(format!(
                    "matrix is not symmetric at ({i}, {j})"
                )));
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        // Sum of squares of off-diagonal elements.
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum();
        if off.sqrt() <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by eigenvalue, descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&x, &y| diag[y].total_cmp(&diag[x]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values()[0] - 3.0).abs() < 1e-12);
        assert!((e.values()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with vectors
        // (1,1)/sqrt2 and (1,-1)/sqrt2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values()[0] - 3.0).abs() < 1e-12);
        assert!((e.values()[1] - 1.0).abs() < 1e-12);
        let v0 = e.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10); // same sign, equal parts
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.5], &[0.5, -0.5, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        // a = V diag(l) V^T
        let n = 3;
        for i in 0..n {
            for j in 0..n {
                let mut back = 0.0;
                for k in 0..n {
                    back += e.vectors()[(i, k)] * e.values()[k] * e.vectors()[(j, k)];
                }
                assert!((back - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[
            &[5.0, 2.0, 1.0, 0.0],
            &[2.0, 4.0, 0.5, 1.0],
            &[1.0, 0.5, 3.0, 0.2],
            &[0.0, 1.0, 0.2, 2.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        let vt_v = e.vectors().transpose().matmul(e.vectors()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vt_v[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.3], &[-1.0, 5.0, 0.7], &[0.3, 0.7, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let trace = a[(0, 0)] + a[(1, 1)] + a[(2, 2)];
        let sum: f64 = e.values().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        assert!(matches!(symmetric_eigen(&a), Err(MathError::Domain(_))));
    }

    #[test]
    fn rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            symmetric_eigen(&a),
            Err(MathError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn values_sorted_descending() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 9.0, 0.0], &[0.0, 0.0, 4.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values(), &[9.0, 4.0, 1.0]);
    }
}
