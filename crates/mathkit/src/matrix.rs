//! Dense, row-major matrix type used by the regression machinery.
//!
//! This is intentionally a small, predictable matrix — only the operations
//! the workspace actually needs (construction, transpose, products,
//! column/row access, Gram matrices) are provided, all with explicit shape
//! validation.

use crate::{MathError, Result};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mathkit::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::ShapeMismatch(format!(
                "expected {} elements for {rows}x{cols}, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Extracts the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MathError::ShapeMismatch(format!(
                "{}x{} * vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum::<f64>())
            .collect())
    }

    /// Computes the Gram matrix `selfᵀ * self` directly (without forming
    /// the transpose), as used when assembling normal equations.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..p {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..p {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..p {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Computes `selfᵀ * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] if `v.len() != self.rows()`.
    pub fn transpose_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(MathError::ShapeMismatch(format!(
                "({}x{})^T * vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += w * x;
            }
        }
        Ok(out)
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Returns a new matrix keeping only the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of bounds.
    pub fn select_cols(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, keep.len());
        for r in 0..self.rows {
            for (j, &c) in keep.iter().enumerate() {
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MathError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(a.matmul(&b), Err(MathError::ShapeMismatch(_))));
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(
            a.transpose_matvec(&[1.0, 1.0, 1.0]).unwrap(),
            vec![9.0, 12.0]
        );
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.transpose_matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, -3.0, 2.0], &[2.0, 0.0, 1.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn select_cols_keeps_order() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let s = a.select_cols(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(format!("{m}").contains("1.000000"));
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let a = Matrix::from_rows(&[&[1.0, -7.5], &[3.0, 4.0]]);
        assert_eq!(a.max_abs(), 7.5);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }
}
