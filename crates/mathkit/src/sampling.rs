//! Random sampling helpers built on [`rand`], used by the synthetic
//! workload generator.
//!
//! Only the uniform source comes from `rand`; the normal, truncated-normal,
//! and lognormal transforms are implemented here (Box–Muller and rejection)
//! to keep the dependency surface minimal.

use rand::Rng;

/// Draws one standard-normal variate via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = mathkit::sampling::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics in debug builds if `sd < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0, "sd must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Draws a normal variate truncated to `[lo, hi]` by rejection with a
/// clamping fallback after a bounded number of attempts (so the function
/// always terminates even for extreme truncation).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "invalid truncation interval [{lo}, {hi}]");
    if sd == 0.0 {
        return mean.clamp(lo, hi);
    }
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Draws a lognormal variate: `exp(N(mu, sigma))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws an exponential variate with the given rate (`lambda > 0`).
///
/// # Panics
///
/// Panics in debug builds if `rate <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples an index from a discrete distribution given by non-negative
/// weights. Weights need not be normalized.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a permutation
/// vector. Deterministic given the RNG state.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws<F: FnMut(&mut StdRng) -> f64>(n: usize, seed: u64, mut f: F) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn standard_normal_moments() {
        let xs = draws(50_000, 1, standard_normal);
        assert!(mean(&xs).unwrap().abs() < 0.02);
        assert!((std_dev(&xs).unwrap() - 1.0).abs() < 0.02);
    }

    #[test]
    fn normal_shifts_and_scales() {
        let xs = draws(50_000, 2, |r| normal(r, 5.0, 2.0));
        assert!((mean(&xs).unwrap() - 5.0).abs() < 0.05);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 0.05);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let xs = draws(10_000, 3, |r| truncated_normal(r, 0.0, 1.0, -0.5, 0.5));
        assert!(xs.iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn truncated_normal_extreme_truncation_terminates() {
        // Interval far in the tail: rejection would essentially never hit,
        // the clamp fallback must kick in.
        let xs = draws(100, 4, |r| truncated_normal(r, 0.0, 1.0, 50.0, 51.0));
        assert!(xs.iter().all(|&x| (50.0..=51.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "invalid truncation interval")]
    fn truncated_normal_rejects_inverted_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        truncated_normal(&mut rng, 0.0, 1.0, 1.0, -1.0);
    }

    #[test]
    fn lognormal_is_positive() {
        let xs = draws(10_000, 5, |r| lognormal(r, -2.0, 0.7));
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let xs = draws(50_000, 6, |r| exponential(r, 4.0));
        assert!((mean(&xs).unwrap() - 0.25).abs() < 0.01);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn weighted_index_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_empty_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        weighted_index(&mut rng, &[]);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        assert_eq!(permutation(&mut a, 50), permutation(&mut b, 50));
    }
}
