//! Special functions backing the probability distributions.
//!
//! Implementations follow the classic Lanczos / continued-fraction forms
//! (Numerical Recipes-style), accurate to roughly 1e-10 over the parameter
//! ranges the hypothesis tests use.

use crate::{MathError, Result};

/// Natural log of the gamma function, via the Lanczos approximation.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0` (the reflection formula is not
/// needed by this crate's distributions).
///
/// # Examples
///
/// ```
/// use mathkit::special::ln_gamma;
/// // Gamma(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] if `x` is outside `[0, 1]` or `a <= 0` or
/// `b <= 0`.
pub fn betai(a: f64, b: f64, x: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&x) {
        return Err(MathError::Domain(format!("x = {x} outside [0, 1]")));
    }
    if a <= 0.0 || b <= 0.0 {
        return Err(MathError::Domain(format!("a = {a}, b = {b} must be > 0")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    // Use the continued fraction directly when it converges fast, i.e.
    // x < (a+1)/(a+b+2); otherwise use the symmetry relation.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cont_frac(a, b, x) / a)
    } else {
        Ok(1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b)
    }
}

/// Lentz's continued fraction for the incomplete beta function.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series representation for `x < a + 1` and the Lentz continued
/// fraction for the complement otherwise; accurate to ~1e-13.
///
/// # Errors
///
/// Returns [`MathError::Domain`] if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 {
        return Err(MathError::Domain(format!(
            "gamma_p requires a > 0 and x >= 0, got a = {a}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        Ok(gamma_p_series(a, x))
    } else {
        Ok(1.0 - gamma_q_cont_frac(a, x))
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 {
        return Err(MathError::Domain(format!(
            "gamma_q requires a > 0 and x >= 0, got a = {a}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x))
    } else {
        Ok(gamma_q_cont_frac(a, x))
    }
}

/// Series expansion of `P(a, x)`, valid and fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`, valid for `x >= a + 1`.
fn gamma_q_cont_frac(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)`, computed through the regularized incomplete
/// gamma function (`erf(x) = sign(x) · P(1/2, x²)`); accurate to ~1e-13.
///
/// # Examples
///
/// ```
/// use mathkit::special::erf;
/// assert!((erf(0.0)).abs() < 1e-12);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x).expect("valid gamma_p args");
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed through
/// `Q(1/2, x²)` for positive `x` to preserve precision in the tail.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    let q = gamma_q(0.5, x * x).expect("valid gamma_q args");
    if x > 0.0 {
        q
    } else {
        2.0 - q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_of_integers() {
        // Gamma(n) = (n-1)!
        let factorials: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in factorials.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-9, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_boundary_values() {
        assert_eq!(betai(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn betai_symmetric_case() {
        // I_{0.5}(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!((betai(a, a, 0.5).unwrap() - 0.5).abs() < 1e-10, "a={a}");
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x).unwrap() - x).abs() < 1e-10);
        }
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(2, 3) = 0.6875 (exact: 1 - (1-x)^3 (1+3x) with a=2,b=3
        // => integral form; checked against R pbeta(0.5, 2, 3)).
        assert!((betai(2.0, 3.0, 0.5).unwrap() - 0.6875).abs() < 1e-10);
    }

    #[test]
    fn betai_rejects_domain_errors() {
        assert!(betai(2.0, 3.0, -0.1).is_err());
        assert!(betai(2.0, 3.0, 1.1).is_err());
        assert!(betai(0.0, 3.0, 0.5).is_err());
        assert!(betai(2.0, -1.0, 0.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-14);
        assert!((erf(0.5) - 0.5204998778130465).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x).unwrap() - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P + Q = 1.
        for (a, x) in [(0.5, 0.2), (2.5, 4.0), (7.0, 3.0)] {
            let p = gamma_p(a, x).unwrap();
            let q = gamma_q(a, x).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_domain_errors() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(gamma_q(-2.0, 1.0).is_err());
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(3.0, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_q(3.0, 0.0).unwrap(), 1.0);
        assert!((gamma_p(1.0, 700.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.3, 1.0, 2.5] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
