//! Property-based tests of model-tree invariants over randomly generated
//! datasets.

use modeltree::{M5Config, ModelTree, NodeKind};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

/// Builds a dataset from proptest-provided raw rows: each row is
/// `(dtlb, load, l2, cpi)`.
fn dataset_from_rows(rows: &[(f64, f64, f64, f64)]) -> Dataset {
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("prop");
    for &(dtlb, load, l2, cpi) in rows {
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.set(EventId::L2Miss, l2);
        ds.push(s, b);
    }
    ds
}

fn row_strategy() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        0.0f64..1e-3, // dtlb
        0.0f64..0.5,  // load
        0.0f64..2e-3, // l2
        0.1f64..5.0,  // cpi
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fit_never_panics_and_invariants_hold(
        rows in proptest::collection::vec(row_strategy(), 10..300)
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();

        // Structural invariants.
        prop_assert!(tree.n_leaves() >= 1);
        prop_assert!(tree.n_nodes() >= tree.n_leaves());
        prop_assert_eq!(tree.n_training(), ds.len());

        // Leaf sample counts partition the training set.
        let leaf_total: usize = tree.leaves().iter().map(|l| l.n_samples).sum();
        prop_assert_eq!(leaf_total, ds.len());

        // Predictions are finite everywhere on the training set.
        for i in 0..ds.len() {
            let p = tree.predict(ds.sample(i));
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn classification_agrees_with_manual_descent(
        rows in proptest::collection::vec(row_strategy(), 30..200)
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        for i in (0..ds.len()).step_by(7) {
            let s = ds.sample(i);
            // Manual descent must land on the leaf `classify` reports.
            let mut id = tree.root();
            loop {
                match *tree.node(id).kind() {
                    NodeKind::Leaf { lm_index } => {
                        prop_assert_eq!(lm_index, tree.classify(s));
                        break;
                    }
                    NodeKind::Split { event, threshold, left, right } => {
                        id = if s.get(event) <= threshold { left } else { right };
                    }
                }
            }
        }
    }

    #[test]
    fn interior_nodes_conserve_sample_counts(
        rows in proptest::collection::vec(row_strategy(), 50..250)
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = ModelTree::fit(
            &ds,
            &M5Config::default().with_prune(false),
        ).unwrap();
        // Every split node's count equals the sum of its children's.
        for id in tree.node_ids() {
            let node = tree.node(id);
            if let NodeKind::Split { left, right, .. } = *node.kind() {
                let sum = tree.node(left).n_samples() + tree.node(right).n_samples();
                prop_assert_eq!(node.n_samples(), sum);
            }
        }
    }

    #[test]
    fn smoothing_prediction_bounded_by_path_extremes(
        rows in proptest::collection::vec(row_strategy(), 30..200)
    ) {
        // Smoothing is a convex combination of node-model predictions, so
        // a smoothed prediction cannot exceed the most extreme node-model
        // prediction along the path by construction. We verify the looser
        // practical bound: finiteness and proximity to the unsmoothed
        // value within the spread of training CPI.
        let ds = dataset_from_rows(&rows);
        let smoothed = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let raw = ModelTree::fit(&ds, &M5Config::default().with_smoothing(false)).unwrap();
        let spread = ds.cpis().iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ds.cpis().iter().cloned().fold(f64::INFINITY, f64::min);
        for i in (0..ds.len()).step_by(11) {
            let s = ds.sample(i);
            let d = (smoothed.predict(s) - raw.predict(s)).abs();
            prop_assert!(d <= spread + 1.0, "smoothing moved {d} vs spread {spread}");
        }
    }
}

#[test]
fn node_id_is_public_for_traversal() {
    // Compile-time check that the traversal API (NodeId construction via
    // root()) is usable downstream.
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("x");
    for i in 0..10 {
        ds.push(Sample::zeros(i as f64), b);
    }
    let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
    let root = tree.root();
    let _ = tree.node(root);
}
