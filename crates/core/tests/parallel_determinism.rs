//! Bit-identity of parallel training and batch prediction.
//!
//! `M5Config::n_threads` must never change the fitted model or its
//! predictions — parallelism buys wall clock only. These tests pin that
//! contract down to the bit level: tree structure, split choices, node
//! model coefficients (via [`ModelTree::structural_eq`]), and every
//! prediction's bit pattern.

use modeltree::{M5Config, ModelTree};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

/// Builds a dataset from proptest-provided raw rows: each row is
/// `(dtlb, load, l2, cpi)`.
fn dataset_from_rows(rows: &[(f64, f64, f64, f64)]) -> Dataset {
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("prop");
    for &(dtlb, load, l2, cpi) in rows {
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.set(EventId::L2Miss, l2);
        ds.push(s, b);
    }
    ds
}

fn row_strategy() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        0.0f64..1e-3, // dtlb
        0.0f64..0.5,  // load
        0.0f64..2e-3, // l2
        0.1f64..5.0,  // cpi
    )
}

fn assert_bitwise_equal_predictions(a: &ModelTree, b: &ModelTree, ds: &Dataset) {
    let pa = a.predict_all(ds);
    let pb = b.predict_all(ds);
    assert_eq!(pa.len(), pb.len());
    for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "prediction {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_fit_is_bit_identical_to_serial(
        rows in proptest::collection::vec(row_strategy(), 30..300),
        threads in 2usize..9,
    ) {
        let ds = dataset_from_rows(&rows);
        let serial = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let par =
            ModelTree::fit(&ds, &M5Config::default().with_n_threads(threads)).unwrap();
        prop_assert!(
            serial.structural_eq(&par),
            "n_threads={threads} changed the fitted tree"
        );
        let ps = serial.predict_all(&ds);
        let pp = par.predict_all(&ds);
        prop_assert_eq!(ps.len(), pp.len());
        for (a, b) in ps.iter().zip(&pp) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn parallel_fit_identical_without_pruning_or_smoothing(
        rows in proptest::collection::vec(row_strategy(), 30..200),
    ) {
        // The determinism contract holds for every configuration, not
        // just the defaults: unpruned growth and raw (unsmoothed)
        // prediction exercise different parallel paths.
        let ds = dataset_from_rows(&rows);
        let config = M5Config::default().with_prune(false).with_smoothing(false);
        let serial = ModelTree::fit(&ds, &config).unwrap();
        let par = ModelTree::fit(&ds, &config.with_n_threads(4)).unwrap();
        prop_assert!(serial.structural_eq(&par));
    }
}

#[test]
fn oversubscribed_thread_counts_are_still_identical() {
    // More threads than samples / attributes must not change anything.
    let mut rng_state = 0x9e37_79b9_u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("synthetic");
    for _ in 0..800 {
        let dtlb = 1e-3 * next();
        let load = 0.5 * next();
        let mut s = Sample::zeros(0.5 + 400.0 * dtlb + load + 0.05 * next());
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        ds.push(s, b);
    }
    let serial = ModelTree::fit(&ds, &M5Config::default()).unwrap();
    for threads in [2, 3, 7, 19, 64, 1024] {
        let par = ModelTree::fit(&ds, &M5Config::default().with_n_threads(threads)).unwrap();
        assert!(serial.structural_eq(&par), "n_threads={threads}");
        assert_bitwise_equal_predictions(&serial, &par, &ds);
    }
}
