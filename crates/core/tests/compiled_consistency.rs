//! Exactness contract of the compiled inference engine.
//!
//! [`ModelTree::compile`] folds the Quinlan smoothing chain into one
//! effective linear model per leaf. The folding is algebraically exact,
//! so across arbitrary datasets and configurations:
//!
//! * compiled predictions agree with the interpreted
//!   [`ModelTree::predict`] within `1e-10` on every sample (bit-exactly
//!   with smoothing off),
//! * compiled classification matches [`ModelTree::classify`] exactly,
//! * [`CompiledTree::predict_batch`] is **bit-identical** for every
//!   thread budget.

use modeltree::{CompiledTree, M5Config, ModelTree};
use perfcounters::{Dataset, EventId, Sample};
use proptest::prelude::*;

/// Builds a dataset from proptest-provided raw rows: each row is
/// `(dtlb, load, l2, cpi)`.
fn dataset_from_rows(rows: &[(f64, f64, f64, f64)]) -> Dataset {
    let mut ds = Dataset::new();
    let b = ds.add_benchmark("prop");
    for &(dtlb, load, l2, cpi) in rows {
        let mut s = Sample::zeros(cpi);
        s.set(EventId::DtlbMiss, dtlb);
        s.set(EventId::Load, load);
        s.set(EventId::L2Miss, l2);
        ds.push(s, b);
    }
    ds
}

fn row_strategy() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        0.0f64..1e-3, // dtlb
        0.0f64..0.5,  // load
        0.0f64..2e-3, // l2
        0.1f64..5.0,  // cpi
    )
}

/// The four configuration corners the engine must cover: smoothing
/// on/off crossed with pruning on/off.
fn config_corners() -> [M5Config; 4] {
    [
        M5Config::default(),
        M5Config::default().with_smoothing(false),
        M5Config::default().with_prune(false),
        M5Config::default().with_smoothing(false).with_prune(false),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_matches_interpreted_within_1e10(
        rows in proptest::collection::vec(row_strategy(), 30..300),
    ) {
        let ds = dataset_from_rows(&rows);
        for config in config_corners() {
            let tree = ModelTree::fit(&ds, &config).unwrap();
            let engine = tree.compile();
            prop_assert_eq!(engine.n_leaves(), tree.n_leaves());
            for i in 0..ds.len() {
                let s = ds.sample(i);
                let interpreted = tree.predict(s);
                let compiled = engine.predict(s);
                if config.smoothing {
                    prop_assert!(
                        (interpreted - compiled).abs() < 1e-10,
                        "sample {} (smoothing {}, prune {}): {} vs {}",
                        i, config.smoothing, config.prune, interpreted, compiled
                    );
                } else {
                    // No smoothing: the folded model IS the leaf model.
                    prop_assert_eq!(interpreted.to_bits(), compiled.to_bits());
                }
                prop_assert_eq!(engine.classify(s), tree.classify(s));
            }
        }
    }

    #[test]
    fn predict_batch_bit_identical_across_thread_counts(
        rows in proptest::collection::vec(row_strategy(), 30..300),
        smooth_flag in 0usize..2,
    ) {
        let ds = dataset_from_rows(&rows);
        let config = M5Config::default().with_smoothing(smooth_flag == 1);
        let tree = ModelTree::fit(&ds, &config).unwrap();
        let engine = tree.compile();
        let serial = engine.clone().with_n_threads(1).predict_batch(&ds);
        // The batch path must also agree bit-exactly with the engine's
        // own per-sample prediction.
        for (i, &p) in serial.iter().enumerate() {
            prop_assert_eq!(p.to_bits(), engine.predict(ds.sample(i)).to_bits());
        }
        for threads in [2usize, 8] {
            let parallel = engine.clone().with_n_threads(threads).predict_batch(&ds);
            prop_assert_eq!(serial.len(), parallel.len());
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "row {} differs at n_threads={}: {} vs {}",
                    i, threads, a, b
                );
            }
        }
    }

    #[test]
    fn classify_batch_matches_interpreted_classify(
        rows in proptest::collection::vec(row_strategy(), 30..200),
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        for threads in [1usize, 2, 8] {
            let classes = engine.clone().with_n_threads(threads).classify_batch(&ds);
            prop_assert_eq!(classes.len(), ds.len());
            for (i, &lm) in classes.iter().enumerate() {
                prop_assert_eq!(lm as usize, tree.classify(ds.sample(i)));
            }
        }
    }

    #[test]
    fn predict_indices_matches_batch_rows(
        rows in proptest::collection::vec(row_strategy(), 30..200),
        stride in 1usize..7,
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let full = engine.predict_batch(&ds);
        let indices: Vec<u32> = (0..ds.len() as u32).step_by(stride).collect();
        for threads in [1usize, 8] {
            let subset = engine
                .clone()
                .with_n_threads(threads)
                .predict_indices(&ds, &indices);
            prop_assert_eq!(subset.len(), indices.len());
            for (j, &i) in indices.iter().enumerate() {
                prop_assert_eq!(subset[j].to_bits(), full[i as usize].to_bits());
            }
        }
    }
}

#[test]
fn serde_roundtrip_preserves_engine() {
    let ds = dataset_from_rows(&[
        (1e-4, 0.1, 1e-4, 0.6),
        (3e-4, 0.3, 5e-4, 1.4),
        (2e-4, 0.2, 2e-4, 0.9),
        (4e-4, 0.4, 9e-4, 2.1),
    ]);
    let big: Vec<(f64, f64, f64, f64)> = (0..200)
        .map(|i| {
            let x = i as f64 / 200.0;
            (1e-3 * x, 0.5 * x, 2e-3 * (1.0 - x), 0.5 + 2.0 * x)
        })
        .collect();
    let ds = if ds.len() < 50 {
        dataset_from_rows(&big)
    } else {
        ds
    };
    let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
    let engine = tree.compile();
    let json = serde_json::to_string(&engine).unwrap();
    let back: CompiledTree = serde_json::from_str(&json).unwrap();
    assert_eq!(back, engine);
    for i in 0..ds.len() {
        let s = ds.sample(i);
        assert_eq!(back.predict(s).to_bits(), engine.predict(s).to_bits());
    }
}
