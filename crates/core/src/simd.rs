//! Portable explicit-width SIMD lanes for the engine and trainer
//! kernels.
//!
//! Stable Rust has no `std::simd`, and the workspace vendors no SIMD
//! crate, so this module provides the small vector vocabulary the hot
//! loops need as plain structs over fixed-size arrays. Every operation
//! is a straight-line per-lane loop with no early exits — the shape
//! LLVM's auto-vectorizer reliably turns into packed instructions on
//! every x86-64 tier (SSE2 baseline, AVX/AVX-512 when the target
//! allows) and on AArch64 NEON, without any `unsafe` or
//! target-feature dispatch in this crate.
//!
//! # Determinism contract
//!
//! The lane types are used inside kernels that must stay **bit-exact**
//! against their scalar oracles, so every operation is an exactly
//! rounded IEEE-754 scalar operation applied per lane:
//!
//! * [`F64x4::mul_add`] is deliberately **unfused** (`a * b + c`, two
//!   roundings). A hardware FMA would change results relative to the
//!   scalar engine and trainer, and on targets without native FMA it
//!   lowers to a slow libm call; the unfused form is both faster on
//!   the baseline target and bit-identical to the scalar code it
//!   vectorizes.
//! * Comparisons, `min`/`max`, and `sqrt` match the corresponding
//!   scalar `f64` operators exactly (same NaN behavior), so
//!   lane-width comparison masks partition exactly like scalar
//!   branches.
//! * [`F64x4::reduce_add`] sums lanes in ascending lane order — a
//!   fixed association, documented so callers can reason about
//!   reproducibility. The engine kernels avoid horizontal reductions
//!   entirely; only code that has budgeted for reassociation uses it.
//!
//! # Runtime knobs
//!
//! * `SPECREPRO_NO_SIMD=1` disables the vectorized kernels process-wide
//!   ([`simd_enabled`]); the scalar paths are kept intact as the
//!   oracles the testkit differential suite compares against, and CI
//!   runs the whole test suite under both settings.
//! * `SPECREPRO_BLOCK_ROWS=n` overrides the cache-blocking row count
//!   ([`block_rows`]); by default a small runtime probe of the L2 size
//!   picks a block that keeps each kernel's working set cache-resident.

use std::sync::OnceLock;

/// Declares a `[$elem; $n]` lane struct with the per-lane operation
/// set the kernels use. All methods are straight-line loops over the
/// fixed array so the auto-vectorizer can lower them to packed ops.
macro_rules! define_lanes {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $n:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$elem; $n]);

        // `add`/`sub`/`mul` intentionally mirror the packed-op names
        // rather than implementing the operator traits: the kernels
        // want explicit by-value method chains, not operator sugar.
        #[allow(clippy::should_implement_trait)]
        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $n;

            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                $name([v; $n])
            }

            /// Loads the first `LANES` elements of `src`.
            ///
            /// # Panics
            ///
            /// Panics if `src` is shorter than `LANES`.
            #[inline(always)]
            pub fn from_slice(src: &[$elem]) -> Self {
                let mut out = [<$elem>::default(); $n];
                out.copy_from_slice(&src[..$n]);
                $name(out)
            }

            /// Stores the lanes into the first `LANES` elements of
            /// `dst`.
            ///
            /// # Panics
            ///
            /// Panics if `dst` is shorter than `LANES`.
            #[inline(always)]
            pub fn write_to(self, dst: &mut [$elem]) {
                dst[..$n].copy_from_slice(&self.0);
            }

            /// Gathers `src[idx[k]]` into lane `k`.
            ///
            /// # Panics
            ///
            /// Panics if any index is out of bounds for `src`.
            #[inline(always)]
            pub fn gather(src: &[$elem], idx: &[u32; $n]) -> Self {
                let mut out = [<$elem>::default(); $n];
                for k in 0..$n {
                    out[k] = src[idx[k] as usize];
                }
                $name(out)
            }

            /// Lane-wise addition.
            #[inline(always)]
            pub fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for k in 0..$n {
                    out[k] += rhs.0[k];
                }
                $name(out)
            }

            /// Lane-wise subtraction.
            #[inline(always)]
            pub fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for k in 0..$n {
                    out[k] -= rhs.0[k];
                }
                $name(out)
            }

            /// Lane-wise multiplication.
            #[inline(always)]
            pub fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for k in 0..$n {
                    out[k] *= rhs.0[k];
                }
                $name(out)
            }

            /// `self * m + a`, **unfused**: the product rounds before
            /// the addition, exactly like the scalar `c * x + acc`
            /// chains in the oracle kernels (see the module docs for
            /// why fusing is deliberately avoided).
            #[inline(always)]
            pub fn mul_add(self, m: Self, a: Self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for k in 0..$n {
                    out[k] = self.0[k] * m.0[k] + a.0[k];
                }
                $name(out)
            }

            /// Lane-wise `max` with the scalar `max` NaN semantics
            /// (`NaN.max(x) == x`).
            #[inline(always)]
            pub fn max(self, rhs: Self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for k in 0..$n {
                    out[k] = self.0[k].max(rhs.0[k]);
                }
                $name(out)
            }

            /// Lane-wise square root (exactly rounded per IEEE-754,
            /// bit-identical to the scalar `sqrt`).
            #[inline(always)]
            pub fn sqrt(self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for k in 0..$n {
                    out[k] = self.0[k].sqrt();
                }
                $name(out)
            }

            /// Lane-width comparison mask: `self > rhs` per lane.
            #[inline(always)]
            pub fn gt(self, rhs: Self) -> [bool; $n] {
                let mut out = [false; $n];
                for k in 0..$n {
                    out[k] = self.0[k] > rhs.0[k];
                }
                out
            }

            /// Lane-width comparison mask: `self < rhs` per lane.
            #[inline(always)]
            pub fn lt(self, rhs: Self) -> [bool; $n] {
                let mut out = [false; $n];
                for k in 0..$n {
                    out[k] = self.0[k] < rhs.0[k];
                }
                out
            }

            /// Lane-width comparison mask: `self != rhs` per lane
            /// (IEEE inequality, so a NaN lane is always unequal).
            #[inline(always)]
            pub fn ne(self, rhs: Self) -> [bool; $n] {
                let mut out = [false; $n];
                for k in 0..$n {
                    out[k] = self.0[k] != rhs.0[k];
                }
                out
            }

            /// Lane-wise select: `if mask[k] { a } else { b }`.
            #[inline(always)]
            pub fn select(mask: [bool; $n], a: Self, b: Self) -> Self {
                let mut out = [<$elem>::default(); $n];
                for k in 0..$n {
                    out[k] = if mask[k] { a.0[k] } else { b.0[k] };
                }
                $name(out)
            }

            /// Horizontal sum in **ascending lane order** — a fixed,
            /// documented association (`((l0 + l1) + l2) + …`).
            #[inline(always)]
            pub fn reduce_add(self) -> $elem {
                let mut acc = self.0[0];
                for k in 1..$n {
                    acc += self.0[k];
                }
                acc
            }
        }
    };
}

define_lanes!(
    /// Four `f64` lanes — the engine's partition and folded-leaf FMA
    /// width (two SSE2 registers; one AVX-256 register).
    F64x4,
    f64,
    4
);
define_lanes!(
    /// Eight `f64` lanes — for AVX-512-class targets and wide
    /// accumulator splits.
    F64x8,
    f64,
    8
);
define_lanes!(
    /// Eight `f32` lanes — the quantized fast path's width (two SSE2
    /// registers; one AVX-256 register).
    F32x8,
    f32,
    8
);

impl F32x8 {
    /// Gathers `src[idx[k]] as f32` into lane `k`: the quantized
    /// kernel's narrowing load. Converting in-register per gathered
    /// element keeps the f64 columns as the single source of truth —
    /// no f32 copy of the data is ever materialized — and the rounding
    /// is the same `f64 → f32` cast the scalar quantized path applies
    /// to each looked-up density.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `src`.
    #[inline(always)]
    pub fn gather_narrow(src: &[f64], idx: &[u32; 8]) -> Self {
        let mut out = [0.0f32; 8];
        for k in 0..8 {
            out[k] = src[idx[k] as usize] as f32;
        }
        F32x8(out)
    }
}

/// True unless `SPECREPRO_NO_SIMD=1` disables the vectorized kernels
/// for this process (read once; the scalar oracle paths are used
/// instead). Engines and the trainer consult this as the *default*;
/// per-object overrides ([`crate::CompiledTree::with_simd`], the
/// `find_best_split_with` entry point) take precedence so tests can
/// A/B both paths in one process.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| !std::env::var("SPECREPRO_NO_SIMD").is_ok_and(|v| v == "1"))
}

/// Default cache-blocking row count for a kernel whose per-row working
/// set is `bytes_per_row` bytes.
///
/// The `SPECREPRO_BLOCK_ROWS` environment variable, when set to a
/// positive integer, overrides the choice directly (clamped to
/// `[64, 1048576]`). Otherwise a small runtime probe of the L2 cache
/// size (`/sys/devices/system/cpu/cpu0/cache`, falling back to 1 MiB
/// when unreadable, e.g. on non-Linux hosts) sizes the block so the
/// working set fills at most a quarter of L2 — large enough to
/// amortize the per-node partition recursion to nothing, small enough
/// that every descent level re-sweeps cache-resident data with head
/// room for the columns' and scratch buffers' conflict misses (the
/// quarter, rather than half, measured fastest across the sweep in
/// `DESIGN.md` §10). The result is always a multiple of 8 so full
/// lanes dominate and the scalar tail stays bounded.
pub fn block_rows(bytes_per_row: usize) -> usize {
    if let Some(rows) = block_rows_override() {
        return rows;
    }
    let budget = l2_cache_bytes() / 4;
    let rows = budget / bytes_per_row.max(1);
    rows.clamp(512, 8192) & !7
}

/// The `SPECREPRO_BLOCK_ROWS` override, if set to a positive integer
/// (read once per process, clamped to `[64, 1048576]` and rounded down
/// to a multiple of 8).
pub fn block_rows_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let raw = std::env::var("SPECREPRO_BLOCK_ROWS").ok()?;
        let rows: usize = raw.parse().ok().filter(|&r| r > 0)?;
        Some(rows.clamp(64, 1 << 20) & !7)
    })
}

/// L2 cache size in bytes, probed once from sysfs (Linux) with a 1 MiB
/// fallback.
fn l2_cache_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| probe_cache_bytes(2).unwrap_or(1 << 20))
}

/// Reads `/sys/devices/system/cpu/cpu0/cache/index{level}/size`
/// (values like `"2048K"` or `"1M"`).
fn probe_cache_bytes(level: usize) -> Option<usize> {
    let path = format!("/sys/devices/system/cpu/cpu0/cache/index{level}/size");
    parse_cache_size(std::fs::read_to_string(path).ok()?.trim())
}

/// Parses a sysfs cache-size string (`"48K"`, `"2048K"`, `"1M"`).
fn parse_cache_size(s: &str) -> Option<usize> {
    let (digits, unit): (String, String) = (
        s.chars().take_while(|c| c.is_ascii_digit()).collect(),
        s.chars().skip_while(|c| c.is_ascii_digit()).collect(),
    );
    let n: usize = digits.parse().ok()?;
    match unit.trim() {
        "" => Some(n),
        "K" | "k" => Some(n << 10),
        "M" | "m" => Some(n << 20),
        "G" | "g" => Some(n << 30),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::from_slice(&src);
        let mut dst = [0.0; 4];
        v.write_to(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(F64x4::splat(7.5).0, [7.5; 4]);
    }

    #[test]
    fn gather_follows_indices() {
        let src = [10.0, 11.0, 12.0, 13.0, 14.0];
        let v = F64x4::gather(&src, &[4, 0, 2, 2]);
        assert_eq!(v.0, [14.0, 10.0, 12.0, 12.0]);
        let w = F32x8::gather(&[1.0f32, 2.0, 3.0], &[2, 1, 0, 1, 2, 0, 0, 2]);
        assert_eq!(w.0, [3.0, 2.0, 1.0, 2.0, 3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn mul_add_is_unfused() {
        // Pick operands where fused and unfused FMA differ: with
        // a = 1 + 2^-27, a*a = 1 + 2^-26 + 2^-54; the product rounds
        // (2^-54 is below f64 precision at this magnitude) before the
        // subtraction in the unfused form, so a*a - (1 + 2^-26) is
        // exactly 0 unfused but 2^-54 fused.
        let a = 1.0 + (2.0f64).powi(-27);
        let b = -(1.0 + (2.0f64).powi(-26));
        let lanes = F64x4::splat(a).mul_add(F64x4::splat(a), F64x4::splat(b));
        let scalar = a * a + b;
        assert_eq!(lanes.0[0].to_bits(), scalar.to_bits());
        assert_eq!(lanes.0[0], 0.0, "product must round before the add");
    }

    #[test]
    fn arithmetic_matches_scalar_bitwise() {
        let xs = [0.1, -3.75, 1e-300, 2.5e17];
        let ys = [7.25, 0.3, -1e-300, 1.5];
        let x = F64x4(xs);
        let y = F64x4(ys);
        for k in 0..4 {
            assert_eq!(x.add(y).0[k].to_bits(), (xs[k] + ys[k]).to_bits());
            assert_eq!(x.sub(y).0[k].to_bits(), (xs[k] - ys[k]).to_bits());
            assert_eq!(x.mul(y).0[k].to_bits(), (xs[k] * ys[k]).to_bits());
            assert_eq!(
                x.max(F64x4::splat(0.0)).0[k].to_bits(),
                xs[k].max(0.0).to_bits()
            );
            assert_eq!(
                x.max(F64x4::splat(0.0)).sqrt().0[k].to_bits(),
                xs[k].max(0.0).sqrt().to_bits()
            );
        }
    }

    #[test]
    fn masks_and_select() {
        let x = F64x4([1.0, 5.0, f64::NAN, 3.0]);
        let t = F64x4::splat(3.0);
        assert_eq!(x.gt(t), [false, true, false, false]);
        assert_eq!(x.lt(t), [true, false, false, false]);
        assert_eq!(x.ne(x), [false, false, true, false]);
        let sel = F64x4::select(x.gt(t), F64x4::splat(1.0), F64x4::splat(0.0));
        assert_eq!(sel.0, [0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn reduce_add_is_ascending_lane_order() {
        // Association-sensitive operands: ascending-order sum differs
        // from other orders, pinning the documented reduction order.
        let v = F64x4([1e16, 1.0, -1e16, 1.0]);
        let expected: f64 = ((1e16 + 1.0) + -1e16) + 1.0;
        assert_eq!(v.reduce_add().to_bits(), expected.to_bits());
        let w = F32x8([1.0; 8]);
        assert_eq!(w.reduce_add(), 8.0);
        assert_eq!(F64x8([2.0; 8]).reduce_add(), 16.0);
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("48K"), Some(48 << 10));
        assert_eq!(parse_cache_size("2048K"), Some(2048 << 10));
        assert_eq!(parse_cache_size("1M"), Some(1 << 20));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("weird"), None);
        assert_eq!(parse_cache_size(""), None);
    }

    #[test]
    fn block_rows_is_clamped_and_lane_aligned() {
        for bytes in [1usize, 8, 100, 1000, 1 << 20] {
            let rows = block_rows(bytes);
            assert!((64..=1 << 20).contains(&rows), "{rows} rows at {bytes} B");
            assert_eq!(rows % 8, 0, "{rows} not a multiple of 8");
        }
        // Heavier rows never get bigger blocks.
        assert!(block_rows(1000) <= block_rows(10));
    }

    #[test]
    fn lane_counts() {
        assert_eq!(F64x4::LANES, 4);
        assert_eq!(F64x8::LANES, 8);
        assert_eq!(F32x8::LANES, 8);
    }
}
