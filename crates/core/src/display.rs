//! Textual rendering of model trees.
//!
//! Two renderings are provided:
//!
//! * [`render_tree`] — a WEKA-style indented dump annotated with each
//!   node's sample share and mean CPI, matching how the paper's Figures 1
//!   and 2 label nodes ("the percentage of samples that are contained in
//!   the subtree rooted at the split node, and the average CPI").
//! * [`render_models`] — the leaf equations in the paper's style
//!   (`LM1: CPI = 0.53 + 4.73*L1DMiss + ...`).

use crate::tree::{ModelTree, NodeId, NodeKind};
use std::fmt::Write as _;

/// Renders the tree structure as indented text.
///
/// # Examples
///
/// ```
/// use modeltree::{M5Config, ModelTree};
/// use perfcounters::{Dataset, EventId, Sample};
///
/// let mut ds = Dataset::new();
/// let b = ds.add_benchmark("toy");
/// for i in 0..100 {
///     let (v, cpi) = if i % 2 == 0 { (0.1, 0.5) } else { (0.9, 2.0) };
///     let mut s = Sample::zeros(cpi);
///     s.set(EventId::Store, v);
///     ds.push(s, b);
/// }
/// let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
/// let text = modeltree::display::render_tree(&tree);
/// assert!(text.contains("Store"));
/// ```
pub fn render_tree(tree: &ModelTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.root(), 0, &mut out);
    out
}

fn render_node(tree: &ModelTree, id: NodeId, indent: usize, out: &mut String) {
    let node = tree.node(id);
    let share = 100.0 * node.n_samples() as f64 / tree.n_training().max(1) as f64;
    match *node.kind() {
        NodeKind::Leaf { lm_index } => {
            let _ = writeln!(
                out,
                "{}LM{} ({:.2}% of samples, avg CPI {:.2})",
                "|  ".repeat(indent),
                lm_index,
                share,
                node.mean_cpi()
            );
        }
        NodeKind::Split {
            event,
            threshold,
            left,
            right,
        } => {
            let prefix = "|  ".repeat(indent);
            let _ = writeln!(
                out,
                "{}{} <= {:.6} ? ({:.2}% of samples, avg CPI {:.2})",
                prefix,
                event.short_name(),
                threshold,
                share,
                node.mean_cpi()
            );
            render_node(tree, left, indent + 1, out);
            render_node(tree, right, indent + 1, out);
        }
    }
}

/// Renders every leaf's linear model, one per line, in LM order.
///
/// Constant models are rendered as `LMk: CPI = c` exactly as the paper
/// summarizes them ("the model for LM2 is simply CPI = 1.44").
pub fn render_models(tree: &ModelTree) -> String {
    let mut out = String::new();
    for leaf in tree.leaves() {
        let _ = writeln!(
            out,
            "LM{} ({:.2}% of samples, avg CPI {:.2}): {}",
            leaf.lm_index,
            100.0 * leaf.share,
            leaf.mean_cpi,
            leaf.model
        );
    }
    out
}

/// Renders a one-paragraph structural summary: node/leaf counts, depth,
/// the root split, and the largest leaves.
pub fn render_summary(tree: &ModelTree) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model tree: {} nodes, {} leaves, depth {}, trained on {} samples (CPI sd {:.3})",
        tree.n_nodes(),
        tree.n_leaves(),
        tree.depth(),
        tree.n_training(),
        tree.root_sd()
    );
    if let Some(root_event) = tree.root_split_event() {
        let _ = writeln!(
            out,
            "root split (most discriminating factor): {}",
            root_event.short_name()
        );
    }
    let mut leaves = tree.leaves();
    leaves.sort_by(|a, b| b.share.total_cmp(&a.share));
    for leaf in leaves.iter().take(3) {
        let _ = writeln!(
            out,
            "  LM{}: {:.2}% of samples, avg CPI {:.2}, {} terms",
            leaf.lm_index,
            100.0 * leaf.share,
            leaf.mean_cpi,
            leaf.model.terms().len()
        );
    }
    out
}

/// Renders the sample-weighted event importances, one per line, in
/// descending order (the quantified version of the paper's "subtree size
/// indicates importance" reading).
pub fn render_importance(tree: &ModelTree) -> String {
    let mut out = String::new();
    for (event, importance) in tree.event_importance() {
        let _ = writeln!(
            out,
            "  {:<12} {:>6.1}%",
            event.short_name(),
            100.0 * importance
        );
    }
    out
}

/// Renders the tree as Graphviz DOT, in the visual style of the paper's
/// Figures 1 and 2: ovals for split nodes (event, sample share, average
/// CPI), boxes for leaves (LM number, share, average CPI), and arcs
/// labeled with the split criterion.
///
/// Pipe through `dot -Tpdf` to regenerate the figure.
pub fn render_dot(tree: &ModelTree) -> String {
    let mut out = String::from("digraph model_tree {\n  node [fontname=\"Helvetica\"];\n");
    for id in tree.node_ids() {
        let node = tree.node(id);
        let share = 100.0 * node.n_samples() as f64 / tree.n_training().max(1) as f64;
        match *node.kind() {
            NodeKind::Leaf { lm_index } => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=box, label=\"LM{}\\n{:.1}%\\nCPI {:.2}\"];",
                    id.index(),
                    lm_index,
                    share,
                    node.mean_cpi()
                );
            }
            NodeKind::Split {
                event,
                threshold,
                left,
                right,
            } => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=oval, label=\"{}\\n{:.1}%\\nCPI {:.2}\"];",
                    id.index(),
                    event.short_name(),
                    share,
                    node.mean_cpi()
                );
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"<= {:.3e}\"];",
                    id.index(),
                    left.index(),
                    threshold
                );
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [label=\"> {:.3e}\"];",
                    id.index(),
                    right.index(),
                    threshold
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M5Config;
    use perfcounters::{Dataset, EventId, Sample};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn demo_tree() -> ModelTree {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("demo");
        for _ in 0..1000 {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let cpi = if dtlb < 2e-4 { 0.6 } else { 1.4 + 800.0 * dtlb };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::DtlbMiss, dtlb);
            ds.push(s, b);
        }
        ModelTree::fit(&ds, &M5Config::default()).unwrap()
    }

    #[test]
    fn tree_rendering_mentions_split_and_leaves() {
        let tree = demo_tree();
        let text = render_tree(&tree);
        assert!(text.contains("DtlbMiss"), "{text}");
        assert!(text.contains("LM1"), "{text}");
        assert!(text.contains("% of samples"));
        // One line per node.
        assert_eq!(text.lines().count(), tree.n_nodes());
    }

    #[test]
    fn model_rendering_lists_all_leaves() {
        let tree = demo_tree();
        let text = render_models(&tree);
        assert_eq!(text.lines().count(), tree.n_leaves());
        assert!(text.contains("CPI ="));
    }

    #[test]
    fn importance_rendering_lists_split_events() {
        let tree = demo_tree();
        let text = render_importance(&tree);
        assert!(text.contains("DtlbMiss"));
        assert!(text.contains('%'));
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let tree = demo_tree();
        let text = render_dot(&tree);
        assert!(text.starts_with("digraph model_tree {"));
        assert!(text.trim_end().ends_with('}'));
        assert!(text.contains("shape=box"));
        assert!(text.contains("shape=oval"));
        assert!(text.contains("DtlbMiss"));
        // One node statement per tree node, two edges per split.
        let node_count = text.matches("[shape=").count();
        assert_eq!(node_count, tree.n_nodes());
        let edge_count = text.matches(" -> ").count();
        assert_eq!(edge_count, tree.n_nodes() - 1);
    }

    #[test]
    fn summary_mentions_counts() {
        let tree = demo_tree();
        let text = render_summary(&tree);
        assert!(text.contains("leaves"));
        assert!(text.contains("root split"));
    }

    #[test]
    fn single_leaf_renders_without_root_split() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        for _ in 0..10 {
            ds.push(Sample::zeros(1.0), b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let text = render_summary(&tree);
        assert!(!text.contains("root split"));
        assert!(render_tree(&tree).contains("LM1"));
    }
}
