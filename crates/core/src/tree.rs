//! The M5' model tree: growing, pruning, smoothing, prediction, and
//! sample classification.

use crate::config::M5Config;
use crate::linreg::{adjusted_error_factor, fit_node_model, LinearModel};
use crate::split::{find_best_split, Columns, NodeSet, SortArena, Split, TargetStats};
use crate::{Result, TreeError};
use perfcounters::events::EventId;
use perfcounters::{Dataset, Sample};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Index of a node within a [`ModelTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's position in the tree's arena (stable for a fitted
    /// tree; parents precede their children).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The structural role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An interior node testing `event <= threshold` (left) vs `>`
    /// (right).
    Split {
        /// The tested attribute.
        event: EventId,
        /// Samples with `value <= threshold` descend left.
        threshold: f64,
        /// Left child (condition holds).
        left: NodeId,
        /// Right child (condition fails).
        right: NodeId,
    },
    /// A leaf holding linear model number `lm_index` (1-based, numbered
    /// left to right as in the paper's `LM1..LM24`).
    Leaf {
        /// 1-based linear model number.
        lm_index: usize,
    },
}

/// One node of the tree with its training statistics and linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    kind: NodeKind,
    model: LinearModel,
    n_samples: usize,
    mean_cpi: f64,
    sd_cpi: f64,
    /// Standard-deviation reduction achieved by this node's split
    /// (0 for leaves).
    sdr: f64,
}

impl Node {
    /// The structural role of this node.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The linear model attached to this node (interior nodes keep theirs
    /// for smoothing).
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Number of training samples that reached this node.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Mean training CPI at this node.
    pub fn mean_cpi(&self) -> f64 {
        self.mean_cpi
    }

    /// Population standard deviation of training CPI at this node.
    pub fn sd_cpi(&self) -> f64 {
        self.sd_cpi
    }

    /// Standard-deviation reduction achieved by this node's split
    /// (0 for leaves).
    pub fn sdr(&self) -> f64 {
        self.sdr
    }
}

/// Summary of one leaf, in left-to-right order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafInfo {
    /// 1-based linear model number (`LM1`, `LM2`, ...).
    pub lm_index: usize,
    /// Node id of the leaf.
    pub node: NodeId,
    /// Number of training samples classified into this leaf.
    pub n_samples: usize,
    /// Fraction of all training samples in this leaf.
    pub share: f64,
    /// Mean training CPI of the leaf.
    pub mean_cpi: f64,
    /// The leaf's linear model.
    pub model: LinearModel,
}

/// One step of a decision-path explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainStep {
    /// The attribute tested at this interior node.
    pub event: EventId,
    /// The split threshold.
    pub threshold: f64,
    /// The sample's value of the tested attribute.
    pub value: f64,
    /// True if the sample went left (`value <= threshold`).
    pub went_left: bool,
}

/// A full explanation of one prediction: the decision path, the leaf
/// model applied, and the smoothed/unsmoothed predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The tests taken from root to leaf, in order.
    pub path: Vec<ExplainStep>,
    /// The 1-based linear-model number of the reached leaf.
    pub lm_index: usize,
    /// The leaf's linear model.
    pub leaf_model: LinearModel,
    /// The raw (leaf-model) prediction.
    pub raw_prediction: f64,
    /// The final prediction (smoothed along the path if smoothing is
    /// enabled; equal to `raw_prediction` otherwise).
    pub prediction: f64,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.path {
            writeln!(
                f,
                "{} = {:.6} {} {:.6}",
                step.event.short_name(),
                step.value,
                if step.went_left { "<=" } else { ">" },
                step.threshold
            )?;
        }
        writeln!(f, "=> LM{}: {}", self.lm_index, self.leaf_model)?;
        write!(f, "=> predicted CPI {:.4}", self.prediction)
    }
}

/// An M5' model tree fitted to a [`Dataset`].
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTree {
    nodes: Vec<Node>,
    root: NodeId,
    config: M5Config,
    n_training: usize,
    root_sd: f64,
}

/// Intermediate node produced by the growing phase. Target statistics
/// are computed once here and reused by the stop test, the split search,
/// and pruning — no later phase re-scans the target column.
struct GrownNode {
    indices: Vec<u32>,
    stats: TargetStats,
    split: Option<(Split, Box<GrownNode>, Box<GrownNode>)>,
}

/// Intermediate node produced by the pruning phase.
struct PrunedNode {
    model: LinearModel,
    n_samples: usize,
    mean_cpi: f64,
    sd_cpi: f64,
    /// Adjusted mean-absolute error of the retained structure beneath
    /// (and including) this node.
    subtree_error: f64,
    /// Attributes referenced by tests or models in the retained subtree.
    attrs: BTreeSet<EventId>,
    split: Option<(Split, Box<PrunedNode>, Box<PrunedNode>)>,
}

impl ModelTree {
    /// Fits an M5' model tree.
    ///
    /// With [`M5Config::n_threads`] above 1, sibling subtrees (and the
    /// per-attribute threshold scans near the root) are processed on
    /// scoped worker threads. The fitted tree is **bit-identical** to a
    /// serial fit: every per-node computation is self-contained and
    /// results are always reduced in a fixed order.
    ///
    /// # Errors
    ///
    /// * [`TreeError::InvalidConfig`] for out-of-range hyper-parameters.
    /// * [`TreeError::InsufficientData`] for an empty training set.
    /// * [`TreeError::DegenerateTarget`] if any CPI value is non-finite.
    /// * [`TreeError::NonFiniteAttribute`] if any event cell is NaN or
    ///   infinite.
    pub fn fit(data: &Dataset, config: &M5Config) -> Result<ModelTree> {
        config.validate()?;
        if data.is_empty() {
            return Err(TreeError::InsufficientData("empty training set".into()));
        }
        let cols = Columns::new(data);
        if cols.cpi.iter().any(|y| !y.is_finite()) {
            return Err(TreeError::DegenerateTarget(
                "CPI contains non-finite values".into(),
            ));
        }
        check_finite_attributes(&cols, None)?;

        // One sort per attribute for the whole fit; every node below
        // inherits sorted order by in-place stable partitioning of the
        // arena's index segments.
        let arena = SortArena::root(&cols);
        Self::fit_arena(&cols, arena, config)
    }

    /// Fits an M5' model tree on a row subset of `data` — the samples at
    /// `indices`, in that order. The fitted tree is identical to fitting
    /// a dataset holding exactly those rows in the same order, but no
    /// samples are copied: the sort arena and every per-node computation
    /// index straight into the dataset's shared columnar cache. This is
    /// what lets [`crate::crossval::k_fold`] build its folds as index
    /// views.
    ///
    /// # Errors
    ///
    /// As [`ModelTree::fit`], plus [`TreeError::InvalidConfig`] if any
    /// index is out of range.
    pub fn fit_indices(data: &Dataset, indices: &[u32], config: &M5Config) -> Result<ModelTree> {
        config.validate()?;
        if indices.is_empty() {
            return Err(TreeError::InsufficientData("empty training subset".into()));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= data.len()) {
            return Err(TreeError::InvalidConfig(format!(
                "sample index {bad} out of range for {} samples",
                data.len()
            )));
        }
        let cols = Columns::new(data);
        if indices.iter().any(|&i| !cols.cpi[i as usize].is_finite()) {
            return Err(TreeError::DegenerateTarget(
                "CPI contains non-finite values".into(),
            ));
        }
        check_finite_attributes(&cols, Some(indices))?;
        let arena = SortArena::new(&cols, indices);
        Self::fit_arena(&cols, arena, config)
    }

    /// Shared fitting core: grow, prune, and intern over a presorted
    /// arena whose index lists select the training rows.
    fn fit_arena(cols: &Columns<'_>, mut arena: SortArena, config: &M5Config) -> Result<ModelTree> {
        let _fit_span = obskit::span("trainer", "m5.fit");
        obskit::metrics::incr(obskit::metrics::Metric::TrainerFits);
        let root_set = arena.node_set();
        let n_training = root_set.len();
        let root_stats = TargetStats::compute(cols.cpi, &root_set.indices);
        let root_sd = root_stats.sd();
        let sd_stop = config.sd_fraction * root_sd;
        let budget = config.n_threads.max(1);

        // Partition buffers span the full column length: index lists hold
        // original row ids even when training on a subset.
        let mut mask = vec![false; cols.cpi.len()];
        let mut scratch = vec![0u32; cols.cpi.len()];
        let grown = {
            let _span = obskit::span("trainer", "m5.grow");
            grow(
                cols,
                root_set,
                root_stats,
                0,
                sd_stop,
                config,
                budget,
                &mut mask,
                &mut scratch,
            )
        };
        let pruned = {
            let _span = obskit::span("trainer", "m5.prune");
            prune(cols, grown, config, budget)
        };

        let mut tree = ModelTree {
            nodes: Vec::new(),
            root: NodeId(0),
            config: *config,
            n_training,
            root_sd,
        };
        let mut next_lm = 1;
        tree.root = tree.intern(pruned, &mut next_lm);
        obskit::metrics::add(obskit::metrics::Metric::TrainerLeaves, (next_lm - 1) as u64);
        Ok(tree)
    }

    /// Flattens the pruned structure into the arena, numbering leaves
    /// left-to-right.
    fn intern(&mut self, node: PrunedNode, next_lm: &mut usize) -> NodeId {
        match node.split {
            Some((split, left, right)) => {
                let slot = self.nodes.len();
                self.nodes.push(Node {
                    kind: NodeKind::Leaf { lm_index: 0 }, // placeholder
                    model: node.model,
                    n_samples: node.n_samples,
                    mean_cpi: node.mean_cpi,
                    sd_cpi: node.sd_cpi,
                    sdr: split.sdr,
                });
                let left_id = self.intern(*left, next_lm);
                let right_id = self.intern(*right, next_lm);
                self.nodes[slot].kind = NodeKind::Split {
                    event: split.event,
                    threshold: split.threshold,
                    left: left_id,
                    right: right_id,
                };
                NodeId(slot)
            }
            None => {
                let lm_index = *next_lm;
                *next_lm += 1;
                let slot = self.nodes.len();
                self.nodes.push(Node {
                    kind: NodeKind::Leaf { lm_index },
                    model: node.model,
                    n_samples: node.n_samples,
                    mean_cpi: node.mean_cpi,
                    sd_cpi: node.sd_cpi,
                    sdr: 0.0,
                });
                NodeId(slot)
            }
        }
    }

    /// The configuration the tree was fitted with.
    pub fn config(&self) -> &M5Config {
        &self.config
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over all node ids (pre-order of interning: parents before
    /// their children).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Number of leaves (= number of linear models).
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// Number of training samples the tree was fitted on.
    pub fn n_training(&self) -> usize {
        self.n_training
    }

    /// Population standard deviation of the training CPI.
    pub fn root_sd(&self) -> f64 {
        self.root_sd
    }

    /// True if two fitted trees are structurally identical: same nodes
    /// (splits, thresholds, models, statistics — compared bit-exactly),
    /// same root, same training size. Unlike `==`, the fitted
    /// configuration is ignored, so trees trained with different
    /// [`M5Config::n_threads`] can be checked for the determinism
    /// contract.
    pub fn structural_eq(&self, other: &ModelTree) -> bool {
        self.nodes == other.nodes
            && self.root == other.root
            && self.n_training == other.n_training
            && self.root_sd.to_bits() == other.root_sd.to_bits()
    }

    /// Maximum depth (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &ModelTree, id: NodeId) -> usize {
            match tree.node(id).kind {
                NodeKind::Leaf { .. } => 0,
                NodeKind::Split { left, right, .. } => {
                    1 + depth_of(tree, left).max(depth_of(tree, right))
                }
            }
        }
        depth_of(self, self.root)
    }

    /// The attribute tested at the root, if the root is a split — the
    /// paper reads this as the single most discriminating performance
    /// factor for the suite.
    pub fn root_split_event(&self) -> Option<EventId> {
        match self.node(self.root).kind {
            NodeKind::Split { event, .. } => Some(event),
            NodeKind::Leaf { .. } => None,
        }
    }

    /// Leaf summaries in left-to-right (LM-number) order.
    pub fn leaves(&self) -> Vec<LeafInfo> {
        let mut out: Vec<LeafInfo> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.kind {
                NodeKind::Leaf { lm_index } => Some(LeafInfo {
                    lm_index,
                    node: NodeId(i),
                    n_samples: n.n_samples,
                    share: n.n_samples as f64 / self.n_training.max(1) as f64,
                    mean_cpi: n.mean_cpi,
                    model: n.model.clone(),
                }),
                NodeKind::Split { .. } => None,
            })
            .collect();
        out.sort_by_key(|l| l.lm_index);
        out
    }

    /// The set of attributes appearing anywhere in the tree — in split
    /// tests or in leaf models. The paper's transferability argument
    /// rests on this set differing between suites.
    pub fn used_events(&self) -> BTreeSet<EventId> {
        let mut set = BTreeSet::new();
        for n in &self.nodes {
            if let NodeKind::Split { event, .. } = n.kind {
                set.insert(event);
            }
            for (e, _) in n.model.terms() {
                set.insert(*e);
            }
        }
        set
    }

    /// Sample-weighted split importance of each event: for every split
    /// node testing event `e`, its standard-deviation reduction weighted
    /// by the fraction of training samples reaching that node, summed and
    /// normalized so all importances add to 1. This quantifies the
    /// paper's qualitative reading that "the size of the subtree covered
    /// by a split node is a qualitative indicator of the importance of
    /// the split event at that node": the root contributes with weight 1,
    /// deep splits contribute little.
    ///
    /// Returns `(event, importance)` pairs sorted by descending
    /// importance; events never split on are omitted. Empty for a
    /// single-leaf tree.
    pub fn event_importance(&self) -> Vec<(EventId, f64)> {
        let mut raw: std::collections::BTreeMap<EventId, f64> = std::collections::BTreeMap::new();
        let total = self.n_training.max(1) as f64;
        for n in &self.nodes {
            if let NodeKind::Split { event, .. } = n.kind {
                *raw.entry(event).or_insert(0.0) += n.sdr * n.n_samples as f64 / total;
            }
        }
        let mass: f64 = raw.values().sum();
        let mut out: Vec<(EventId, f64)> = raw
            .into_iter()
            .map(|(e, v)| (e, if mass > 0.0 { v / mass } else { 0.0 }))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Routes a sample to its leaf.
    pub fn leaf_of(&self, sample: &Sample) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id).kind {
                NodeKind::Leaf { .. } => return id,
                NodeKind::Split {
                    event,
                    threshold,
                    left,
                    right,
                } => {
                    id = if sample.get(event) <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// The 1-based linear model number the sample classifies into — the
    /// classification operation behind the paper's Tables II and IV.
    pub fn classify(&self, sample: &Sample) -> usize {
        match self.node(self.leaf_of(sample)).kind {
            NodeKind::Leaf { lm_index } => lm_index,
            NodeKind::Split { .. } => unreachable!("leaf_of returns leaves"),
        }
    }

    /// Predicts CPI for a sample, applying Quinlan smoothing along the
    /// root path when enabled in the configuration.
    pub fn predict(&self, sample: &Sample) -> f64 {
        // Collect the root-to-leaf path.
        let mut path = Vec::new();
        let mut id = self.root;
        loop {
            path.push(id);
            match self.node(id).kind {
                NodeKind::Leaf { .. } => break,
                NodeKind::Split {
                    event,
                    threshold,
                    left,
                    right,
                } => {
                    id = if sample.get(event) <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
        let leaf = *path.last().expect("path contains at least the root");
        let mut p = self.node(leaf).model.predict(sample);
        if !self.config.smoothing || path.len() == 1 {
            return p;
        }
        // Walk back up: p' = (n p + k q) / (n + k), where n is the sample
        // count of the lower node and q the prediction of the ancestor's
        // model.
        let k = self.config.smoothing_k;
        for w in path.windows(2).rev() {
            let (ancestor, lower) = (w[0], w[1]);
            let n = self.node(lower).n_samples as f64;
            let q = self.node(ancestor).model.predict(sample);
            p = (n * p + k * q) / (n + k);
        }
        p
    }

    /// Explains one prediction: the decision path taken, the leaf model
    /// applied, and the resulting prediction — the interpretability that
    /// makes model trees "particularly suitable ... for workload
    /// characterization" in the paper's methodology.
    pub fn explain(&self, sample: &Sample) -> Explanation {
        let mut path = Vec::new();
        let mut id = self.root;
        loop {
            match self.node(id).kind {
                NodeKind::Leaf { lm_index } => {
                    let leaf_model = self.node(id).model.clone();
                    let raw_prediction = leaf_model.predict(sample);
                    return Explanation {
                        path,
                        lm_index,
                        leaf_model,
                        raw_prediction,
                        prediction: self.predict(sample),
                    };
                }
                NodeKind::Split {
                    event,
                    threshold,
                    left,
                    right,
                } => {
                    let value = sample.get(event);
                    let went_left = value <= threshold;
                    path.push(ExplainStep {
                        event,
                        threshold,
                        value,
                        went_left,
                    });
                    id = if went_left { left } else { right };
                }
            }
        }
    }

    /// Predicts CPI for every sample of a dataset.
    ///
    /// The batch path compiles the tree into a [`CompiledTree`] engine
    /// (smoothing folded into flat leaf models) and predicts over the
    /// dataset's columnar cache with [`M5Config::n_threads`] workers.
    /// Results agree with per-sample [`ModelTree::predict`] within
    /// `1e-10` (bit-identical when smoothing is off) and are
    /// bit-identical across thread counts. Callers running many batches
    /// against the same tree should [`ModelTree::compile`] once and
    /// reuse the engine.
    ///
    /// [`CompiledTree`]: crate::compiled::CompiledTree
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        self.compile().predict_batch(data)
    }

    /// Mean absolute error over a dataset (0 for an empty set).
    pub fn mean_abs_error(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let cpi = data.cpi_column();
        let sum: f64 = self
            .predict_all(data)
            .iter()
            .zip(cpi)
            .map(|(p, y)| (p - y).abs())
            .sum();
        sum / data.len() as f64
    }
}

/// Rejects NaN/infinite attribute cells before any fitting work. A
/// non-finite cell would sort to one end of the attribute order and then
/// produce a non-finite midpoint threshold (`0.5 * (v + inf)` or NaN),
/// under which `partition_point` yields an empty or min-leaf-violating
/// child. With `indices`, only the selected rows are checked (a fold may
/// legitimately exclude a corrupt row).
fn check_finite_attributes(cols: &Columns<'_>, indices: Option<&[u32]>) -> Result<()> {
    for event in EventId::ALL {
        let col = cols.event(event);
        let bad = match indices {
            None => col.iter().position(|v| !v.is_finite()),
            Some(idx) => idx
                .iter()
                .find(|&&i| !col[i as usize].is_finite())
                .map(|&i| i as usize),
        };
        if let Some(row) = bad {
            return Err(TreeError::NonFiniteAttribute(format!(
                "event {} has a non-finite value at row {row}",
                event.short_name()
            )));
        }
    }
    Ok(())
}

/// Recursive growing phase.
///
/// `budget` is the number of threads this subtree may use: when it is at
/// least 2, the left child grows on a scoped worker thread (with
/// `ceil(budget / 2)` threads) while the current thread grows the right
/// child (with the remainder). Join order is fixed, every child's
/// statistics are computed from its own index list, and `find_best_split`
/// is thread-count-invariant — so the grown tree never depends on
/// scheduling.
///
/// `mask` and `scratch` are this thread's partition buffers (full
/// dataset length); a spawned child allocates its own.
#[allow(clippy::too_many_arguments)]
fn grow(
    cols: &Columns<'_>,
    set: NodeSet<'_>,
    stats: TargetStats,
    depth: usize,
    sd_stop: f64,
    config: &M5Config,
    budget: usize,
    mask: &mut Vec<bool>,
    scratch: &mut Vec<u32>,
) -> GrownNode {
    obskit::metrics::observe(obskit::metrics::Hist::TrainerNodeRows, set.len() as u64);
    let stop = set.len() < config.min_split || depth >= config.max_depth || stats.sd() < sd_stop;
    if !stop {
        if let Some(split) = find_best_split(cols, &set, config.min_leaf, &stats, budget) {
            obskit::metrics::incr(obskit::metrics::Metric::TrainerNodesExpanded);
            let indices = set.indices.clone();
            let (left_indices, right_indices) = set.split_plan(cols, &split, mask);
            debug_assert!(!left_indices.is_empty() && !right_indices.is_empty());
            let left_stats = TargetStats::compute(cols.cpi, &left_indices);
            let right_stats = TargetStats::compute(cols.cpi, &right_indices);

            // A child whose own stop test (or minimum split size) already
            // fails can never split again, so when both children are
            // leaves the sorted segments need not be partitioned at all.
            let grows = |child: &TargetStats| {
                child.n >= config.min_split.max(2 * config.min_leaf)
                    && depth + 1 < config.max_depth
                    && child.sd() >= sd_stop
            };
            if !grows(&left_stats) && !grows(&right_stats) {
                let left = GrownNode {
                    indices: left_indices,
                    stats: left_stats,
                    split: None,
                };
                let right = GrownNode {
                    indices: right_indices,
                    stats: right_stats,
                    split: None,
                };
                return GrownNode {
                    indices,
                    stats,
                    split: Some((split, Box::new(left), Box::new(right))),
                };
            }

            let (left_set, right_set) =
                set.partition_segments(left_indices, right_indices, mask, scratch);
            let (left, right) = if budget >= 2 {
                let left_budget = budget.div_ceil(2);
                let right_budget = budget - left_budget;
                std::thread::scope(|scope| {
                    let handle = scope.spawn(move || {
                        let mut left_mask = vec![false; cols.cpi.len()];
                        let mut left_scratch = vec![0u32; cols.cpi.len()];
                        grow(
                            cols,
                            left_set,
                            left_stats,
                            depth + 1,
                            sd_stop,
                            config,
                            left_budget,
                            &mut left_mask,
                            &mut left_scratch,
                        )
                    });
                    let right = grow(
                        cols,
                        right_set,
                        right_stats,
                        depth + 1,
                        sd_stop,
                        config,
                        right_budget.max(1),
                        mask,
                        scratch,
                    );
                    (handle.join().expect("grow worker panicked"), right)
                })
            } else {
                let left = grow(
                    cols,
                    left_set,
                    left_stats,
                    depth + 1,
                    sd_stop,
                    config,
                    1,
                    mask,
                    scratch,
                );
                let right = grow(
                    cols,
                    right_set,
                    right_stats,
                    depth + 1,
                    sd_stop,
                    config,
                    1,
                    mask,
                    scratch,
                );
                (left, right)
            };
            return GrownNode {
                indices,
                stats,
                split: Some((split, Box::new(left), Box::new(right))),
            };
        }
    }
    GrownNode {
        indices: set.indices,
        stats,
        split: None,
    }
}

/// Bottom-up model fitting and pruning.
///
/// `budget` parallelizes sibling subtrees exactly as in [`grow`]; the
/// decision at each node depends only on its own samples and its
/// children's results, so pruning is likewise thread-count-invariant.
fn prune(cols: &Columns<'_>, node: GrownNode, config: &M5Config, budget: usize) -> PrunedNode {
    let n = node.stats.n;
    let mean = node.stats.mean();
    let sd = node.stats.sd();

    match node.split {
        None => {
            // Grown leaf: its subtree references no attributes, so the M5'
            // node model is the constant mean.
            let model = LinearModel::constant(mean);
            let error = model.mean_abs_error_cols(cols, &node.indices)
                * adjusted_error_factor(n, model.n_params());
            PrunedNode {
                model,
                n_samples: n,
                mean_cpi: mean,
                sd_cpi: sd,
                subtree_error: error,
                attrs: BTreeSet::new(),
                split: None,
            }
        }
        Some((split, left, right)) => {
            let (left, right) = if budget >= 2 {
                let left_budget = budget.div_ceil(2);
                let right_budget = budget - left_budget;
                std::thread::scope(|scope| {
                    let handle = scope.spawn(move || prune(cols, *left, config, left_budget));
                    let right = prune(cols, *right, config, right_budget.max(1));
                    (handle.join().expect("prune worker panicked"), right)
                })
            } else {
                (
                    prune(cols, *left, config, 1),
                    prune(cols, *right, config, 1),
                )
            };

            // Attributes available to this node's model: everything tested
            // or modeled in the subtree.
            let mut attrs: BTreeSet<EventId> = &left.attrs | &right.attrs;
            attrs.insert(split.event);
            let candidates: Vec<EventId> = attrs.iter().copied().collect();
            let model = fit_node_model(cols, &node.indices, &candidates, config);
            let node_error = model.mean_abs_error_cols(cols, &node.indices)
                * adjusted_error_factor(n, model.n_params());

            let subtree_error = if n == 0 {
                0.0
            } else {
                (left.subtree_error * left.n_samples as f64
                    + right.subtree_error * right.n_samples as f64)
                    / n as f64
            };

            let should_prune =
                config.prune && node_error <= subtree_error * config.pruning_multiplier;
            if should_prune {
                obskit::metrics::incr(obskit::metrics::Metric::TrainerPrunedSubtrees);
                let model_attrs: BTreeSet<EventId> =
                    model.terms().iter().map(|(e, _)| *e).collect();
                PrunedNode {
                    model,
                    n_samples: n,
                    mean_cpi: mean,
                    sd_cpi: sd,
                    subtree_error: node_error,
                    attrs: model_attrs,
                    split: None,
                }
            } else {
                let mut kept_attrs = attrs;
                kept_attrs.extend(model.terms().iter().map(|(e, _)| *e));
                PrunedNode {
                    model,
                    n_samples: n,
                    mean_cpi: mean,
                    sd_cpi: sd,
                    subtree_error,
                    attrs: kept_attrs,
                    split: Some((split, Box::new(left), Box::new(right))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Piecewise-linear ground truth with two regimes on DtlbMiss:
    /// below 2e-4 CPI = 0.6 + 500*Dtlb + 2*Load;
    /// above        CPI = 1.0 + 1200*L2Miss.
    fn regime_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let load = rng.gen::<f64>() * 0.4;
            let l2 = rng.gen::<f64>() * 1e-3;
            let cpi = if dtlb <= 2e-4 {
                0.6 + 500.0 * dtlb + 2.0 * load
            } else {
                1.0 + 1200.0 * l2
            };
            let mut s = Sample::zeros(cpi + 0.01 * rng.gen::<f64>());
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, load);
            s.set(EventId::L2Miss, l2);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn fit_rejects_empty() {
        let ds = Dataset::new();
        assert!(matches!(
            ModelTree::fit(&ds, &M5Config::default()),
            Err(TreeError::InsufficientData(_))
        ));
    }

    #[test]
    fn fit_rejects_nonfinite_cpi() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        ds.push(Sample::zeros(f64::NAN), b);
        assert!(matches!(
            ModelTree::fit(&ds, &M5Config::default()),
            Err(TreeError::DegenerateTarget(_))
        ));
    }

    #[test]
    fn fit_rejects_invalid_config() {
        let ds = regime_dataset(50, 0);
        let bad = M5Config {
            min_leaf: 0,
            ..Default::default()
        };
        assert!(matches!(
            ModelTree::fit(&ds, &bad),
            Err(TreeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_leaf_for_tiny_data() {
        let ds = regime_dataset(5, 1);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.depth(), 0);
        assert!(tree.root_split_event().is_none());
    }

    #[test]
    fn recovers_regime_split_attribute() {
        let ds = regime_dataset(2000, 2);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(tree.root_split_event(), Some(EventId::DtlbMiss));
        // Threshold near the true regime boundary.
        if let NodeKind::Split { threshold, .. } = tree.node(tree.root()).kind {
            assert!(
                (threshold - 2e-4).abs() < 4e-5,
                "threshold {threshold} far from 2e-4"
            );
        }
    }

    #[test]
    fn predictions_track_ground_truth() {
        let ds = regime_dataset(2000, 3);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let test = regime_dataset(500, 99);
        let mae = tree.mean_abs_error(&test);
        assert!(mae < 0.05, "mae {mae}");
    }

    #[test]
    fn leaves_are_numbered_left_to_right_and_cover_all_samples() {
        let ds = regime_dataset(2000, 4);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), tree.n_leaves());
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(leaf.lm_index, i + 1);
        }
        let total: usize = leaves.iter().map(|l| l.n_samples).sum();
        assert_eq!(total, ds.len());
        let share_sum: f64 = leaves.iter().map(|l| l.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classify_is_consistent_with_leaf_of() {
        let ds = regime_dataset(500, 5);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        for i in 0..ds.len() {
            let s = ds.sample(i);
            let leaf = tree.leaf_of(s);
            match tree.node(leaf).kind {
                NodeKind::Leaf { lm_index } => assert_eq!(lm_index, tree.classify(s)),
                NodeKind::Split { .. } => panic!("leaf_of returned a split"),
            }
        }
    }

    #[test]
    fn classification_counts_match_leaf_stats() {
        let ds = regime_dataset(1000, 6);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let mut counts = vec![0usize; tree.n_leaves() + 1];
        for i in 0..ds.len() {
            counts[tree.classify(ds.sample(i))] += 1;
        }
        for leaf in tree.leaves() {
            assert_eq!(counts[leaf.lm_index], leaf.n_samples);
        }
    }

    #[test]
    fn smoothing_changes_predictions_but_not_wildly() {
        let ds = regime_dataset(2000, 7);
        let smoothed = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let raw = ModelTree::fit(&ds, &M5Config::default().with_smoothing(false)).unwrap();
        let test = regime_dataset(200, 100);
        let mut any_diff = false;
        for i in 0..test.len() {
            let s = test.sample(i);
            let a = smoothed.predict(s);
            let b = raw.predict(s);
            if (a - b).abs() > 1e-12 {
                any_diff = true;
            }
            assert!((a - b).abs() < 0.5, "smoothing moved prediction too far");
        }
        assert!(any_diff, "smoothing had no effect at all");
    }

    #[test]
    fn pruning_reduces_leaf_count() {
        let ds = regime_dataset(2000, 8);
        let pruned = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let unpruned = ModelTree::fit(&ds, &M5Config::default().with_prune(false)).unwrap();
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn aggressive_pruning_multiplier_shrinks_tree() {
        let ds = regime_dataset(2000, 9);
        let normal = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let aggressive =
            ModelTree::fit(&ds, &M5Config::default().with_pruning_multiplier(3.0)).unwrap();
        assert!(aggressive.n_leaves() <= normal.n_leaves());
    }

    #[test]
    fn max_depth_respected() {
        let ds = regime_dataset(2000, 10);
        let tree = ModelTree::fit(
            &ds,
            &M5Config::default().with_max_depth(2).with_prune(false),
        )
        .unwrap();
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn used_events_includes_root_split() {
        let ds = regime_dataset(2000, 11);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert!(tree.used_events().contains(&EventId::DtlbMiss));
    }

    #[test]
    fn constant_target_yields_single_constant_leaf() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..300 {
            let mut s = Sample::zeros(1.5);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        let probe = Sample::zeros(0.0);
        assert!((tree.predict(&probe) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn predict_all_matches_pointwise() {
        let ds = regime_dataset(200, 13);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        // The batch path runs the compiled engine (smoothing folded into
        // the leaves), which reassociates the smoothing arithmetic; the
        // contract is 1e-10 agreement with the interpreter.
        let all = tree.predict_all(&ds);
        for (i, &p) in all.iter().enumerate() {
            let q = tree.predict(ds.sample(i));
            assert!((p - q).abs() < 1e-10, "sample {i}: {p} vs {q}");
        }
        // Without smoothing the folded model IS the leaf model and the
        // batch path is bit-identical.
        let raw = ModelTree::fit(&ds, &M5Config::default().with_smoothing(false)).unwrap();
        let all = raw.predict_all(&ds);
        for (i, &p) in all.iter().enumerate() {
            assert_eq!(p.to_bits(), raw.predict(ds.sample(i)).to_bits());
        }
    }

    #[test]
    fn fit_indices_matches_fit_on_materialized_subset() {
        let ds = regime_dataset(900, 20);
        // A shuffled, non-contiguous subset, as k_fold produces.
        let indices: Vec<u32> = (0..ds.len() as u32).filter(|i| i % 3 != 0).rev().collect();
        let mut subset = Dataset::new();
        let b = subset.add_benchmark("synth");
        for &i in &indices {
            subset.push(ds.sample(i as usize).clone(), b);
        }
        let from_indices = ModelTree::fit_indices(&ds, &indices, &M5Config::default()).unwrap();
        let from_subset = ModelTree::fit(&subset, &M5Config::default()).unwrap();
        assert!(from_indices.structural_eq(&from_subset));
        assert_eq!(from_indices.n_training(), indices.len());
    }

    #[test]
    fn fit_indices_rejects_bad_input() {
        let ds = regime_dataset(50, 21);
        assert!(matches!(
            ModelTree::fit_indices(&ds, &[], &M5Config::default()),
            Err(TreeError::InsufficientData(_))
        ));
        assert!(matches!(
            ModelTree::fit_indices(&ds, &[0, 50], &M5Config::default()),
            Err(TreeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let ds = regime_dataset(500, 14);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let json = serde_json::to_string(&tree).unwrap();
        let back: ModelTree = serde_json::from_str(&json).unwrap();
        for i in 0..20 {
            let s = ds.sample(i);
            assert!((back.predict(s) - tree.predict(s)).abs() < 1e-9);
        }
    }

    #[test]
    fn explain_reconstructs_prediction_and_path() {
        let ds = regime_dataset(1500, 18);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        for i in (0..ds.len()).step_by(113) {
            let s = ds.sample(i);
            let ex = tree.explain(s);
            assert_eq!(ex.lm_index, tree.classify(s));
            assert_eq!(ex.prediction, tree.predict(s));
            // Every path step must be consistent with the sample.
            for step in &ex.path {
                assert_eq!(step.went_left, step.value <= step.threshold);
            }
            // Path length bounded by depth.
            assert!(ex.path.len() <= tree.depth());
            let text = ex.to_string();
            assert!(text.contains("predicted CPI"));
            assert!(text.contains(&format!("LM{}", ex.lm_index)));
        }
    }

    #[test]
    fn explain_single_leaf_has_empty_path() {
        let ds = regime_dataset(5, 19);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let ex = tree.explain(ds.sample(0));
        assert!(ex.path.is_empty());
        assert_eq!(ex.lm_index, 1);
        assert_eq!(ex.raw_prediction, ex.prediction);
    }

    #[test]
    fn event_importance_ranks_the_regime_variable_first() {
        let ds = regime_dataset(2000, 16);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let importance = tree.event_importance();
        assert!(!importance.is_empty());
        assert_eq!(importance[0].0, EventId::DtlbMiss);
        let total: f64 = importance.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in importance.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn single_leaf_has_empty_importance() {
        let ds = regime_dataset(5, 17);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert!(tree.event_importance().is_empty());
    }

    #[test]
    fn deterministic_given_same_data() {
        let ds = regime_dataset(800, 15);
        let a = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let b = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(a, b);
    }
}
