//! k-fold cross-validation for model selection.
//!
//! The paper tunes M5' parameters "to achieve a balance between tractable
//! model size and good prediction accuracy"; cross-validation is the
//! standard way to measure the accuracy side of that trade without
//! touching a held-out set. Used by the ablation experiments.

use crate::config::M5Config;
use crate::tree::ModelTree;
use crate::{Result, TreeError};
use mathkit::describe::correlation;
use mathkit::sampling::permutation;
use perfcounters::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Aggregate results of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Per-fold mean absolute error.
    pub fold_mae: Vec<f64>,
    /// Per-fold root mean squared error.
    pub fold_rmse: Vec<f64>,
    /// Per-fold correlation between predictions and actuals.
    pub fold_correlation: Vec<f64>,
    /// Per-fold leaf counts of the fitted trees.
    pub fold_leaves: Vec<usize>,
}

impl CrossValidation {
    /// Mean of the per-fold MAEs.
    pub fn mean_mae(&self) -> f64 {
        mean(&self.fold_mae)
    }

    /// Mean of the per-fold RMSEs.
    pub fn mean_rmse(&self) -> f64 {
        mean(&self.fold_rmse)
    }

    /// Mean of the per-fold correlations.
    pub fn mean_correlation(&self) -> f64 {
        mean(&self.fold_correlation)
    }

    /// Mean leaf count across folds.
    pub fn mean_leaves(&self) -> f64 {
        self.fold_leaves.iter().map(|&l| l as f64).sum::<f64>()
            / self.fold_leaves.len().max(1) as f64
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs k-fold cross-validation of an [`M5Config`] on a dataset.
///
/// The dataset is shuffled once with the given seed and partitioned into
/// `k` near-equal folds; each fold in turn serves as the test set for a
/// tree trained on the others.
///
/// # Errors
///
/// * [`TreeError::InvalidConfig`] if `k < 2` or `k > data.len()`, or if
///   the model configuration is invalid.
/// * Propagates fit errors from [`ModelTree::fit`].
pub fn k_fold(data: &Dataset, config: &M5Config, k: usize, seed: u64) -> Result<CrossValidation> {
    if k < 2 || k > data.len() {
        return Err(TreeError::InvalidConfig(format!(
            "k = {k} out of range for {} samples",
            data.len()
        )));
    }
    config.validate()?;

    let mut rng = StdRng::seed_from_u64(seed);
    let order = permutation(&mut rng, data.len());

    let mut result = CrossValidation {
        fold_mae: Vec::with_capacity(k),
        fold_rmse: Vec::with_capacity(k),
        fold_correlation: Vec::with_capacity(k),
        fold_leaves: Vec::with_capacity(k),
    };
    for fold in 0..k {
        let mut train = Dataset::with_capacity(data.len());
        let mut test = Dataset::with_capacity(data.len() / k + 1);
        for name in data.benchmark_names() {
            train.add_benchmark(name);
            test.add_benchmark(name);
        }
        for (rank, &idx) in order.iter().enumerate() {
            let target = if rank % k == fold {
                &mut test
            } else {
                &mut train
            };
            target.push(data.sample(idx).clone(), data.label(idx));
        }
        let tree = ModelTree::fit(&train, config)?;
        let predictions = tree.predict_all(&test);
        let actuals = test.cpis();
        let n = actuals.len() as f64;
        let mae = predictions
            .iter()
            .zip(&actuals)
            .map(|(p, a)| (p - a).abs())
            .sum::<f64>()
            / n;
        let rmse = (predictions
            .iter()
            .zip(&actuals)
            .map(|(p, a)| (p - a) * (p - a))
            .sum::<f64>()
            / n)
            .sqrt();
        let corr = correlation(&predictions, &actuals).unwrap_or(0.0);
        result.fold_mae.push(mae);
        result.fold_rmse.push(rmse);
        result.fold_correlation.push(corr);
        result.fold_leaves.push(tree.n_leaves());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::{EventId, Sample};
    use rand::Rng;

    fn regime_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let load = rng.gen::<f64>() * 0.4;
            let cpi = if dtlb <= 2e-4 {
                0.6 + 2.0 * load
            } else {
                1.4 + 500.0 * dtlb
            };
            let mut s = Sample::zeros(cpi + 0.01 * rng.gen::<f64>());
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, load);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn five_fold_on_learnable_data() {
        let ds = regime_dataset(1000, 1);
        let cv = k_fold(&ds, &M5Config::default(), 5, 42).unwrap();
        assert_eq!(cv.fold_mae.len(), 5);
        assert!(cv.mean_mae() < 0.05, "mae {}", cv.mean_mae());
        assert!(cv.mean_correlation() > 0.95);
        assert!(cv.mean_rmse() >= cv.mean_mae());
        assert!(cv.mean_leaves() >= 1.0);
    }

    #[test]
    fn folds_partition_data() {
        // With k = 4 and 103 samples, folds are 26/26/26/25.
        let ds = regime_dataset(103, 2);
        let cv = k_fold(&ds, &M5Config::default(), 4, 7).unwrap();
        assert_eq!(cv.fold_mae.len(), 4);
    }

    #[test]
    fn invalid_k_rejected() {
        let ds = regime_dataset(50, 3);
        assert!(matches!(
            k_fold(&ds, &M5Config::default(), 1, 0),
            Err(TreeError::InvalidConfig(_))
        ));
        assert!(matches!(
            k_fold(&ds, &M5Config::default(), 51, 0),
            Err(TreeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = regime_dataset(400, 4);
        let a = k_fold(&ds, &M5Config::default(), 3, 9).unwrap();
        let b = k_fold(&ds, &M5Config::default(), 3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pruned_config_generalizes_no_worse_than_unpruned_overfit() {
        // On noisy data, disabling pruning with tiny leaves should not
        // beat the default by any meaningful margin (and usually loses).
        let mut rng = StdRng::seed_from_u64(5);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("noisy");
        for _ in 0..600 {
            let x = rng.gen::<f64>();
            let mut s = Sample::zeros(1.0 + 0.2 * x + 0.3 * rng.gen::<f64>());
            s.set(EventId::Load, x);
            ds.push(s, b);
        }
        let pruned = k_fold(&ds, &M5Config::default(), 5, 11).unwrap();
        let overfit = k_fold(
            &ds,
            &M5Config::default().with_prune(false).with_sd_fraction(0.0),
            5,
            11,
        )
        .unwrap();
        assert!(pruned.mean_mae() <= overfit.mean_mae() + 0.01);
        assert!(pruned.mean_leaves() <= overfit.mean_leaves());
    }
}
