//! k-fold cross-validation for model selection.
//!
//! The paper tunes M5' parameters "to achieve a balance between tractable
//! model size and good prediction accuracy"; cross-validation is the
//! standard way to measure the accuracy side of that trade without
//! touching a held-out set. Used by the ablation experiments.

use crate::config::M5Config;
use crate::tree::ModelTree;
use crate::{Result, TreeError};
use mathkit::describe::{correlation, std_dev};
use mathkit::sampling::permutation;
use perfcounters::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Aggregate results of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Per-fold mean absolute error.
    pub fold_mae: Vec<f64>,
    /// Per-fold root mean squared error.
    pub fold_rmse: Vec<f64>,
    /// Per-fold correlation between predictions and actuals. Degenerate
    /// folds (listed in [`CrossValidation::degenerate_folds`]) store 0.
    pub fold_correlation: Vec<f64>,
    /// Per-fold leaf counts of the fitted trees.
    pub fold_leaves: Vec<usize>,
    /// Folds whose correlation is undefined — a constant prediction or
    /// actual vector, or a test fold too small to correlate. Recorded
    /// explicitly (and excluded from [`CrossValidation::mean_correlation`])
    /// instead of silently reporting a fake "0.0 correlation".
    #[serde(default)]
    pub degenerate_folds: Vec<usize>,
}

impl CrossValidation {
    /// Mean of the per-fold MAEs.
    pub fn mean_mae(&self) -> f64 {
        mean(&self.fold_mae)
    }

    /// Mean of the per-fold RMSEs.
    pub fn mean_rmse(&self) -> f64 {
        mean(&self.fold_rmse)
    }

    /// Mean of the per-fold correlations, excluding degenerate folds
    /// (0 if every fold was degenerate).
    pub fn mean_correlation(&self) -> f64 {
        let valid: Vec<f64> = self
            .fold_correlation
            .iter()
            .enumerate()
            .filter(|(fold, _)| !self.degenerate_folds.contains(fold))
            .map(|(_, &c)| c)
            .collect();
        mean(&valid)
    }

    /// Mean leaf count across folds.
    pub fn mean_leaves(&self) -> f64 {
        self.fold_leaves.iter().map(|&l| l as f64).sum::<f64>()
            / self.fold_leaves.len().max(1) as f64
    }
}

/// Metrics of one completed fold.
struct FoldOutcome {
    mae: f64,
    rmse: f64,
    correlation: f64,
    degenerate: bool,
    leaves: usize,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs k-fold cross-validation of an [`M5Config`] on a dataset.
///
/// The dataset is shuffled once with the given seed and partitioned into
/// `k` near-equal folds; each fold in turn serves as the test set for a
/// tree trained on the others. Folds are **index views** over the
/// dataset's shared columnar cache — no samples are copied: training
/// uses [`ModelTree::fit_indices`] and evaluation runs the compiled
/// engine's indexed batch prediction.
///
/// With [`M5Config::n_threads`] above 1 the fold loop itself runs on
/// scoped worker threads, dividing the thread budget between concurrent
/// folds and each fold's fit. Every fold's computation is
/// thread-count-invariant, and results are always assembled in fold
/// order, so the outcome is identical for any budget.
///
/// # Errors
///
/// * [`TreeError::InvalidConfig`] if `k < 2` or `k > data.len()`, or if
///   the model configuration is invalid.
/// * Propagates fit errors from [`ModelTree::fit_indices`] (first
///   failing fold in fold order).
pub fn k_fold(data: &Dataset, config: &M5Config, k: usize, seed: u64) -> Result<CrossValidation> {
    if k < 2 || k > data.len() {
        return Err(TreeError::InvalidConfig(format!(
            "k = {k} out of range for {} samples",
            data.len()
        )));
    }
    config.validate()?;

    let mut rng = StdRng::seed_from_u64(seed);
    let order = permutation(&mut rng, data.len());

    // Index views in shuffle order: fold f tests on every k-th rank and
    // trains on the rest, exactly the historical sample-copy layout.
    let mut train_sets: Vec<Vec<u32>> = vec![Vec::with_capacity(data.len()); k];
    let mut test_sets: Vec<Vec<u32>> = vec![Vec::with_capacity(data.len() / k + 1); k];
    for (rank, &idx) in order.iter().enumerate() {
        let test_fold = rank % k;
        test_sets[test_fold].push(idx as u32);
        for (fold, train) in train_sets.iter_mut().enumerate() {
            if fold != test_fold {
                train.push(idx as u32);
            }
        }
    }

    // Split the thread budget between concurrent folds and each fold's
    // fit; leftover threads go to the fits.
    let budget = config.n_threads.max(1);
    let workers = budget.min(k);
    let fold_config = M5Config {
        n_threads: (budget / workers).max(1),
        ..*config
    };
    let run_fold = |fold: usize| -> Result<FoldOutcome> {
        let tree = ModelTree::fit_indices(data, &train_sets[fold], &fold_config)?;
        let engine = tree.compile();
        let predictions = engine.predict_indices(data, &test_sets[fold]);
        let cpi = data.cpi_column();
        let actuals: Vec<f64> = test_sets[fold].iter().map(|&i| cpi[i as usize]).collect();
        let n = actuals.len() as f64;
        let mae = predictions
            .iter()
            .zip(&actuals)
            .map(|(p, a)| (p - a).abs())
            .sum::<f64>()
            / n;
        let rmse = (predictions
            .iter()
            .zip(&actuals)
            .map(|(p, a)| (p - a) * (p - a))
            .sum::<f64>()
            / n)
            .sqrt();
        // A fold is degenerate when Pearson's C is undefined on it:
        // either vector constant, or too few samples to correlate.
        let (correlation, degenerate) = match correlation(&predictions, &actuals) {
            Ok(c) => {
                let undefined = |xs: &[f64]| std_dev(xs).is_ok_and(|s| s <= 0.0);
                let degenerate = undefined(&predictions) || undefined(&actuals);
                (if degenerate { 0.0 } else { c }, degenerate)
            }
            Err(_) => (0.0, true),
        };
        Ok(FoldOutcome {
            mae,
            rmse,
            correlation,
            degenerate,
            leaves: tree.n_leaves(),
        })
    };

    let mut outcomes: Vec<Option<Result<FoldOutcome>>> = (0..k).map(|_| None).collect();
    if workers <= 1 {
        for (fold, slot) in outcomes.iter_mut().enumerate() {
            *slot = Some(run_fold(fold));
        }
    } else {
        // Deal folds round-robin to scoped workers; each fold is
        // self-contained and lands in its own slot, so placement never
        // affects the result.
        std::thread::scope(|scope| {
            let run_fold = &run_fold;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        (w..k)
                            .step_by(workers)
                            .map(|fold| (fold, run_fold(fold)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (fold, outcome) in handle.join().expect("fold worker panicked") {
                    outcomes[fold] = Some(outcome);
                }
            }
        });
    }

    let mut result = CrossValidation {
        fold_mae: Vec::with_capacity(k),
        fold_rmse: Vec::with_capacity(k),
        fold_correlation: Vec::with_capacity(k),
        fold_leaves: Vec::with_capacity(k),
        degenerate_folds: Vec::new(),
    };
    // Assemble (and propagate the first error) in fold order, keeping
    // the outcome independent of worker scheduling.
    for (fold, outcome) in outcomes.into_iter().enumerate() {
        let outcome = outcome.expect("every fold ran")?;
        result.fold_mae.push(outcome.mae);
        result.fold_rmse.push(outcome.rmse);
        result.fold_correlation.push(outcome.correlation);
        result.fold_leaves.push(outcome.leaves);
        if outcome.degenerate {
            result.degenerate_folds.push(fold);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::{EventId, Sample};
    use rand::Rng;

    fn regime_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let load = rng.gen::<f64>() * 0.4;
            let cpi = if dtlb <= 2e-4 {
                0.6 + 2.0 * load
            } else {
                1.4 + 500.0 * dtlb
            };
            let mut s = Sample::zeros(cpi + 0.01 * rng.gen::<f64>());
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, load);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn five_fold_on_learnable_data() {
        let ds = regime_dataset(1000, 1);
        let cv = k_fold(&ds, &M5Config::default(), 5, 42).unwrap();
        assert_eq!(cv.fold_mae.len(), 5);
        assert!(cv.mean_mae() < 0.05, "mae {}", cv.mean_mae());
        assert!(cv.mean_correlation() > 0.95);
        assert!(cv.mean_rmse() >= cv.mean_mae());
        assert!(cv.mean_leaves() >= 1.0);
    }

    #[test]
    fn folds_partition_data() {
        // With k = 4 and 103 samples, folds are 26/26/26/25.
        let ds = regime_dataset(103, 2);
        let cv = k_fold(&ds, &M5Config::default(), 4, 7).unwrap();
        assert_eq!(cv.fold_mae.len(), 4);
    }

    #[test]
    fn invalid_k_rejected() {
        let ds = regime_dataset(50, 3);
        assert!(matches!(
            k_fold(&ds, &M5Config::default(), 1, 0),
            Err(TreeError::InvalidConfig(_))
        ));
        assert!(matches!(
            k_fold(&ds, &M5Config::default(), 51, 0),
            Err(TreeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = regime_dataset(400, 4);
        let a = k_fold(&ds, &M5Config::default(), 3, 9).unwrap();
        let b = k_fold(&ds, &M5Config::default(), 3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_budget_does_not_change_results() {
        let ds = regime_dataset(600, 6);
        let serial = k_fold(&ds, &M5Config::default(), 5, 3).unwrap();
        for threads in [2, 4, 8] {
            let parallel = k_fold(&ds, &M5Config::default().with_n_threads(threads), 5, 3).unwrap();
            assert_eq!(serial, parallel, "n_threads = {threads}");
        }
    }

    #[test]
    fn degenerate_folds_recorded_not_faked() {
        // A constant target yields constant predictions in every fold:
        // Pearson's C is undefined there, and the folds must say so
        // rather than reporting a fake 0.0 into the mean.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..90 {
            let mut s = Sample::zeros(1.25);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        let cv = k_fold(&ds, &M5Config::default(), 3, 1).unwrap();
        assert_eq!(cv.degenerate_folds, vec![0, 1, 2]);
        assert!(cv.fold_correlation.iter().all(|&c| c == 0.0));
        assert_eq!(cv.mean_correlation(), 0.0);
        // MAE/RMSE are still well-defined and near zero.
        assert!(cv.mean_mae() < 1e-9);
    }

    #[test]
    fn leave_one_out_single_sample_folds_are_degenerate() {
        // k = n: every test fold holds one sample, too few to correlate.
        // Each fold must be recorded as degenerate, while MAE/RMSE stay
        // well-defined.
        let ds = regime_dataset(12, 9);
        let cv = k_fold(&ds, &M5Config::default(), 12, 5).unwrap();
        assert_eq!(cv.degenerate_folds, (0..12).collect::<Vec<_>>());
        assert!(cv.fold_correlation.iter().all(|&c| c == 0.0));
        assert_eq!(cv.mean_correlation(), 0.0);
        assert!(cv.fold_mae.iter().all(|m| m.is_finite()));
        assert!(cv.fold_rmse.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn train_folds_below_min_split_yield_degenerate_constant_leaves() {
        // With 10 samples and k = 2, each training fold has 5 samples —
        // below the default min_split of 8 (and only just above
        // min_leaf). The tree cannot split, the single leaf predicts a
        // constant, and the fold's correlation is undefined: it must be
        // recorded as degenerate, not reported as 0.0-correlation truth.
        let ds = regime_dataset(10, 10);
        let config = M5Config::default();
        assert!(10 / 2 < config.min_split);
        let cv = k_fold(&ds, &config, 2, 3).unwrap();
        assert_eq!(cv.fold_leaves, vec![1, 1]);
        assert_eq!(cv.degenerate_folds, vec![0, 1]);
        assert!(cv.mean_mae().is_finite());
    }

    #[test]
    fn learnable_data_has_no_degenerate_folds() {
        let ds = regime_dataset(500, 8);
        let cv = k_fold(&ds, &M5Config::default(), 5, 2).unwrap();
        assert!(cv.degenerate_folds.is_empty());
    }

    #[test]
    fn pruned_config_generalizes_no_worse_than_unpruned_overfit() {
        // On noisy data, disabling pruning with tiny leaves should not
        // beat the default by any meaningful margin (and usually loses).
        let mut rng = StdRng::seed_from_u64(5);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("noisy");
        for _ in 0..600 {
            let x = rng.gen::<f64>();
            let mut s = Sample::zeros(1.0 + 0.2 * x + 0.3 * rng.gen::<f64>());
            s.set(EventId::Load, x);
            ds.push(s, b);
        }
        let pruned = k_fold(&ds, &M5Config::default(), 5, 11).unwrap();
        let overfit = k_fold(
            &ds,
            &M5Config::default().with_prune(false).with_sd_fraction(0.0),
            5,
            11,
        )
        .unwrap();
        assert!(pruned.mean_mae() <= overfit.mean_mae() + 0.01);
        assert!(pruned.mean_leaves() <= overfit.mean_leaves());
    }
}
