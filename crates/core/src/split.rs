//! Standard-deviation-reduction (SDR) split search over presorted
//! columns.
//!
//! At each node, M5' examines every attribute and every threshold between
//! adjacent distinct values, and picks the split that maximizes
//!
//! ```text
//! SDR = sd(T) - Σ_i (|T_i| / |T|) * sd(T_i)
//! ```
//!
//! "the split event at a given node identifies the parameter to which CPI
//! is statistically most sensitive" (paper, Section IV-A1).
//!
//! # Presorting
//!
//! A naive node search re-sorts every attribute column at every node —
//! `O(a · n log n)` per node, `O(a · n log² n)` per tree. This module
//! instead sorts each attribute's index permutation **once at the root**
//! ([`SortArena::new`]) and maintains sorted order down the tree by
//! stable, in-place partitioning ([`NodeSet::partition`]): filtering a
//! stably sorted sequence preserves its order, so a child's index lists
//! are already sorted when it is visited. A node owns one contiguous
//! segment per attribute inside the arena; partitioning rearranges each
//! segment (left prefix, right suffix) using a caller-provided scratch
//! buffer and then splits the segment in two — no per-node sorting and
//! no per-node allocation. Threshold scans run over running
//! `(n, Σy, Σy²)` prefix sums in a single pass per attribute.
//!
//! The root sort itself avoids comparator overhead by mapping each
//! `f64` to a sign-flipped bit pattern whose unsigned order equals
//! [`f64::total_cmp`] order, packing `(key, position)` into one `u128`,
//! and sorting primitives; the position in the low bits makes the
//! unstable sort equivalent to a stable sort on the value alone.
//!
//! # Determinism
//!
//! [`find_best_split`] must return the same split no matter how many
//! threads scan attributes: each attribute scan is self-contained (its
//! prefix sums accumulate in that attribute's sorted order against the
//! node's index-order totals), produces the attribute-local best under a
//! strict-`>` leftmost-winner rule, and the per-attribute winners are
//! reduced sequentially in [`EventId::ALL`] order afterwards. That
//! reduction is exactly equivalent to the single sequential scan it
//! replaces, so one thread and many threads produce bit-identical
//! splits.

use crate::simd::{self, F64x4};
use perfcounters::events::{EventId, N_EVENTS};
use perfcounters::Dataset;

/// A candidate split chosen by the SDR criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// The attribute to test.
    pub event: EventId,
    /// The threshold: samples with `value <= threshold` go left.
    pub threshold: f64,
    /// The achieved standard-deviation reduction (absolute, in CPI
    /// units).
    pub sdr: f64,
}

/// Population standard deviation from `(n, Σy, Σy²)` running sums.
#[inline]
fn sd_from_sums(n: f64, sum: f64, sum_sq: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mean = sum / n;
    (sum_sq / n - mean * mean).max(0.0).sqrt()
}

/// `[sqrt(a), sqrt(b)]` through one packed square root. Each lane is
/// the same IEEE operation as a scalar `f64::sqrt`, so results are
/// bit-identical to two scalar calls; packing matters because the
/// divide/sqrt unit dominates the threshold scan's critical path.
#[inline]
fn paired_sqrt(a: f64, b: f64) -> [f64; 2] {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is part of the x86-64 baseline ABI, so these
    // intrinsics are always available on this architecture.
    unsafe {
        use core::arch::x86_64::*;
        let roots = _mm_sqrt_pd(_mm_set_pd(b, a));
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), roots);
        out
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        [a.sqrt(), b.sqrt()]
    }
}

/// Number of scan positions between issuing a prefetch hint and using
/// the data: far enough to cover an L2 miss, near enough that hinted
/// lines are not evicted before use.
const PREFETCH_AHEAD: usize = 16;

/// Hints the CPU to pull `slice[index]` toward L1. The threshold scan
/// gathers through value-sorted index lists, an access pattern the
/// hardware prefetcher cannot follow, so the scan issues its own hints
/// [`PREFETCH_AHEAD`] positions early. `index` must be in bounds.
#[inline]
fn prefetch(slice: &[f64], index: u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the caller keeps `index` in bounds, and a prefetch hint
    // never dereferences the address architecturally.
    unsafe {
        use core::arch::x86_64::*;
        _mm_prefetch(slice.as_ptr().add(index as usize).cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, index);
}

/// Running target statistics `(n, Σy, Σy²)` of one node, computed once
/// per node and threaded through growing, split search, and pruning so
/// no phase re-scans the target column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetStats {
    /// Sample count.
    pub n: usize,
    /// Sum of targets.
    pub sum: f64,
    /// Sum of squared targets.
    pub sum_sq: f64,
}

impl TargetStats {
    /// Accumulates the statistics of `cpi[i]` over `indices`, in index
    /// order.
    pub fn compute(cpi: &[f64], indices: &[u32]) -> TargetStats {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for &i in indices {
            let y = cpi[i as usize];
            sum += y;
            sum_sq += y * y;
        }
        TargetStats {
            n: indices.len(),
            sum,
            sum_sq,
        }
    }

    /// Population standard deviation (0 for an empty set).
    pub fn sd(&self) -> f64 {
        sd_from_sums(self.n as f64, self.sum, self.sum_sq)
    }

    /// Mean (0 for an empty set).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Borrowed columnar view of a dataset: one contiguous slice per event
/// plus the CPI column, resolved once per fit so inner loops never touch
/// row accessors.
#[derive(Clone)]
pub struct Columns<'a> {
    events: Vec<&'a [f64]>,
    /// The CPI (target) column.
    pub cpi: &'a [f64],
}

impl<'a> Columns<'a> {
    /// Borrows the columnar view of `data` (building the dataset's
    /// column cache on first use).
    pub fn new(data: &'a Dataset) -> Columns<'a> {
        Columns {
            events: EventId::ALL.iter().map(|&e| data.event_column(e)).collect(),
            cpi: data.cpi_column(),
        }
    }

    /// The contiguous column for one event.
    #[inline]
    pub fn event(&self, event: EventId) -> &'a [f64] {
        self.events[event.index()]
    }
}

/// Maps a float to a bit pattern whose **unsigned** order equals
/// `f64::total_cmp` order: flip all bits of negatives, flip only the
/// sign bit of non-negatives.
#[inline]
fn order_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// The backing store for a tree fit's sorted index lists: one `Vec<u32>`
/// per attribute, each holding the node's sample indices in ascending
/// attribute-value order. [`NodeSet`]s borrow disjoint segments of these
/// arrays; the arrays themselves are sorted exactly once, here.
pub struct SortArena {
    indices: Vec<u32>,
    sorted: Vec<Vec<u32>>,
}

impl SortArena {
    /// Presorts every attribute over the given subset of samples. This
    /// is the only sort in an entire tree fit.
    pub fn new(cols: &Columns<'_>, indices: &[u32]) -> SortArena {
        let n = indices.len();
        // (total_cmp key << 32) | position: sorting the packed primitive
        // unstably is equivalent to a stable sort on the value alone,
        // because positions are unique and occupy the low bits.
        let mut packed: Vec<u128> = Vec::with_capacity(n);
        let sorted = EventId::ALL
            .iter()
            .map(|&e| {
                let col = cols.event(e);
                packed.clear();
                packed.extend(
                    indices
                        .iter()
                        .enumerate()
                        .map(|(j, &i)| (u128::from(order_key(col[i as usize])) << 32) | j as u128),
                );
                packed.sort_unstable();
                packed
                    .iter()
                    .map(|&p| indices[(p as u32) as usize])
                    .collect()
            })
            .collect();
        SortArena {
            indices: indices.to_vec(),
            sorted,
        }
    }

    /// Presorts every attribute over all samples of the columns.
    pub fn root(cols: &Columns<'_>) -> SortArena {
        let n = cols.cpi.len() as u32;
        let indices: Vec<u32> = (0..n).collect();
        SortArena::new(cols, &indices)
    }

    /// Borrows the whole arena as the root node's sample set.
    pub fn node_set(&mut self) -> NodeSet<'_> {
        NodeSet {
            indices: self.indices.clone(),
            sorted: self.sorted.iter_mut().map(|v| v.as_mut_slice()).collect(),
        }
    }
}

/// A node's sample set: the original-order index list plus one
/// value-sorted arena segment per attribute, maintained down the tree by
/// stable in-place partitioning.
pub struct NodeSet<'s> {
    /// Node indices in original (dataset) order.
    pub indices: Vec<u32>,
    /// One sorted index segment per event, indexed by
    /// `EventId::index()`.
    sorted: Vec<&'s mut [u32]>,
}

impl<'s> NodeSet<'s> {
    /// Number of samples in the node.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if the node holds no samples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted segment for one event (test/bench introspection).
    pub fn sorted(&self, event: EventId) -> &[u32] {
        self.sorted[event.index()]
    }

    /// Computes the membership mask and the children's original-order
    /// index lists for `split`, without touching the sorted segments.
    ///
    /// `mask` is a caller-owned buffer of full dataset length (only
    /// entries at this node's indices are written and read). Growing
    /// calls this first so that children which stop immediately never
    /// pay for segment partitioning.
    pub fn split_plan(
        &self,
        cols: &Columns<'_>,
        split: &Split,
        mask: &mut [bool],
    ) -> (Vec<u32>, Vec<u32>) {
        // The split attribute's segment is sorted, so membership is a
        // prefix: everything before the partition point goes left.
        let col = cols.event(split.event);
        let seg = &self.sorted[split.event.index()];
        let n_left = seg.partition_point(|&i| col[i as usize] <= split.threshold);
        for &i in &seg[..n_left] {
            mask[i as usize] = true;
        }
        for &i in &seg[n_left..] {
            mask[i as usize] = false;
        }

        let mut left_indices = Vec::with_capacity(n_left);
        let mut right_indices = Vec::with_capacity(self.indices.len() - n_left);
        for &i in &self.indices {
            if mask[i as usize] {
                left_indices.push(i);
            } else {
                right_indices.push(i);
            }
        }
        (left_indices, right_indices)
    }

    /// Splits the node's segments according to a mask and index lists
    /// previously produced by [`NodeSet::split_plan`].
    ///
    /// Each attribute segment is stably partitioned **in place** — left
    /// members compact to the front, right members spill to `scratch`
    /// and copy back behind them (the loop is branchless: both
    /// destinations are written every step and the cursors advance by
    /// the mask bit) — and then split in two, so children stay sorted
    /// without re-sorting and without allocating. `scratch` needs at
    /// least `self.len()` elements.
    pub fn partition_segments(
        self,
        left_indices: Vec<u32>,
        right_indices: Vec<u32>,
        mask: &[bool],
        scratch: &mut [u32],
    ) -> (NodeSet<'s>, NodeSet<'s>) {
        let n_left = left_indices.len();
        let mut left_sorted = Vec::with_capacity(N_EVENTS);
        let mut right_sorted = Vec::with_capacity(N_EVENTS);
        for seg in self.sorted {
            let mut l = 0;
            let mut r = 0;
            for k in 0..seg.len() {
                let i = seg[k];
                let take = usize::from(mask[i as usize]);
                seg[l] = i; // l <= k, so this never clobbers unread data
                scratch[r] = i;
                l += take;
                r += 1 - take;
            }
            seg[l..].copy_from_slice(&scratch[..r]);
            let (left, right) = seg.split_at_mut(n_left);
            left_sorted.push(left);
            right_sorted.push(right);
        }
        (
            NodeSet {
                indices: left_indices,
                sorted: left_sorted,
            },
            NodeSet {
                indices: right_indices,
                sorted: right_sorted,
            },
        )
    }

    /// Splits the node by `split` into `(left, right)` with
    /// `value <= threshold` on the left: [`NodeSet::split_plan`]
    /// followed by [`NodeSet::partition_segments`].
    pub fn partition(
        self,
        cols: &Columns<'_>,
        split: &Split,
        mask: &mut [bool],
        scratch: &mut [u32],
    ) -> (NodeSet<'s>, NodeSet<'s>) {
        let (left_indices, right_indices) = self.split_plan(cols, split, mask);
        self.partition_segments(left_indices, right_indices, mask, scratch)
    }
}

/// Scans one attribute's presorted index list for its best admissible
/// threshold: a single pass accumulating `(n, Σy, Σy²)` prefix sums
/// against the node's totals.
///
/// The acceptance rule — strict `>` against `max(floor, best so far)`,
/// where `floor = 1e-12 * total_sd` — keeps the leftmost maximum, which
/// is what makes the later cross-attribute reduction order-independent.
fn scan_attribute(
    col: &[f64],
    cpi: &[f64],
    seg: &[u32],
    event: EventId,
    min_leaf: usize,
    stats: &TargetStats,
    total_sd: f64,
) -> Option<Split> {
    let n = seg.len();
    if col[seg[0] as usize] == col[seg[n - 1] as usize] {
        return None; // constant column
    }

    let total_sum = stats.sum;
    let total_sum_sq = stats.sum_sq;
    let nf = n as f64;
    let floor = 1e-12 * total_sd;
    let mut left_sum = 0.0;
    let mut left_sum_sq = 0.0;

    // The scan minimizes the division-free criterion
    //
    //   w = n·Σ_i (|T_i| / |T|)·sd(T_i)
    //     = sqrt(n_l·Σy²_l − (Σy_l)²) + sqrt(n_r·Σy²_r − (Σy_r)²),
    //
    // algebraically `n` times the weighted child deviation (each term is
    // `n_i·sd_i`), so the divide/sqrt unit runs one packed sqrt per
    // candidate instead of five divides and two roots. The SDR floor
    // becomes a ceiling on `w`, and the winner's SDR is recovered with a
    // single division at the end.
    let bound = nf * (total_sd - floor);
    let mut best_w = bound;
    let mut best_threshold = f64::NAN;

    // Admissible thresholds put `i + 1 ∈ [min_leaf, n - min_leaf]`
    // samples on the left, so positions before `lo` only feed the
    // running sums and positions past `hi` are never read.
    let lo = min_leaf.saturating_sub(1);
    let hi = (n - min_leaf).min(n - 1);
    for (k, &i) in seg[..lo].iter().enumerate() {
        if k + PREFETCH_AHEAD < n {
            prefetch(cpi, seg[k + PREFETCH_AHEAD]);
        }
        let y = cpi[i as usize];
        left_sum += y;
        left_sum_sq += y * y;
    }

    let mut value = col[seg[lo] as usize];
    for i in lo..hi {
        if i + PREFETCH_AHEAD < n {
            let ahead = seg[i + PREFETCH_AHEAD];
            prefetch(cpi, ahead);
            prefetch(col, ahead);
        }
        let y = cpi[seg[i] as usize];
        left_sum += y;
        left_sum_sq += y * y;
        let next_value = col[seg[i + 1] as usize];
        if value == next_value {
            continue; // threshold must separate distinct values
        }
        let threshold = 0.5 * (value + next_value);
        value = next_value;
        let right_sum = total_sum - left_sum;
        let right_sum_sq = total_sum_sq - left_sum_sq;
        // n_i²·var_i, clamped like `sd_from_sums` clamps variance.
        let scaled_l = ((i + 1) as f64 * left_sum_sq - left_sum * left_sum).max(0.0);
        let scaled_r = ((n - i - 1) as f64 * right_sum_sq - right_sum * right_sum).max(0.0);
        let roots = paired_sqrt(scaled_l, scaled_r);
        let w = roots[0] + roots[1];
        // Strict `<` keeps the leftmost minimum — the same tie rule as
        // the SDR maximization it replaces.
        if w < best_w {
            best_w = w;
            best_threshold = threshold;
        }
    }
    if best_w < bound {
        Some(Split {
            event,
            threshold: best_threshold,
            sdr: total_sd - best_w / nf,
        })
    } else {
        None
    }
}

/// Candidate windows narrower than this run the scalar scan: the
/// vectorized scan's prefix-materialization pass only pays off once a
/// few full lanes of candidates amortize it.
const MIN_SIMD_SCAN: usize = 16;

thread_local! {
    /// Reused per-thread buffers for [`scan_attribute_simd`]: the
    /// running `(Σy, Σy²)` prefix sums and the candidate window's
    /// attribute values (one extra slot for each candidate's right
    /// neighbor). Thread-local because [`find_best_split`] fans
    /// attribute scans out to scoped workers.
    static SCAN_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Vectorized [`scan_attribute`], **bit-identical by construction**.
///
/// The scalar scan is a loop-carried recurrence (the prefix sums) glued
/// to per-candidate arithmetic that is embarrassingly parallel. The
/// vectorized form splits them: one sequential pass materializes the
/// prefix sums and candidate values into flat arrays — the *same*
/// additions in the *same* order as the scalar scan, preserving its
/// association exactly — and the candidate arithmetic then runs
/// four-wide over those arrays. Every lane operation (mul, sub, max,
/// sqrt, compare) is the exactly rounded IEEE operation the scalar
/// expressions perform, candidates at equal-valued positions are
/// disqualified by an `+∞` select exactly where the scalar scan
/// `continue`s, and the winner is recovered as the **lexicographic
/// minimum of `(w, position)`** over the per-lane running bests plus
/// the scalar tail — provably the scalar leftmost-strict-`<` winner:
/// each lane keeps its earliest minimum, so the global earliest
/// position achieving the global minimum `w` is always among the
/// reduced candidates.
fn scan_attribute_simd(
    col: &[f64],
    cpi: &[f64],
    seg: &[u32],
    event: EventId,
    min_leaf: usize,
    stats: &TargetStats,
    total_sd: f64,
) -> Option<Split> {
    let n = seg.len();
    if col[seg[0] as usize] == col[seg[n - 1] as usize] {
        return None; // constant column
    }
    let lo = min_leaf.saturating_sub(1);
    let hi = (n - min_leaf).min(n - 1);
    let m = hi - lo;
    if m < MIN_SIMD_SCAN {
        return scan_attribute(col, cpi, seg, event, min_leaf, stats, total_sd);
    }

    let total_sum = stats.sum;
    let total_sum_sq = stats.sum_sq;
    let nf = n as f64;
    let floor = 1e-12 * total_sd;
    let bound = nf * (total_sd - floor);

    SCAN_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (ps, pss, vals) = &mut *scratch;
        if ps.len() < m {
            ps.resize(m, 0.0);
            pss.resize(m, 0.0);
        }
        if vals.len() < m + 1 {
            vals.resize(m + 1, 0.0);
        }

        // Sequential prefix pass: identical accumulation order (and
        // gather prefetching) to the scalar scan, stored after the
        // position's own sample joins the left side — the state the
        // scalar loop holds when it evaluates that candidate.
        let mut left_sum = 0.0;
        let mut left_sum_sq = 0.0;
        for (k, &i) in seg[..lo].iter().enumerate() {
            if k + PREFETCH_AHEAD < n {
                prefetch(cpi, seg[k + PREFETCH_AHEAD]);
            }
            let y = cpi[i as usize];
            left_sum += y;
            left_sum_sq += y * y;
        }
        for j in 0..m {
            let i = lo + j;
            if i + PREFETCH_AHEAD < n {
                let ahead = seg[i + PREFETCH_AHEAD];
                prefetch(cpi, ahead);
                prefetch(col, ahead);
            }
            let y = cpi[seg[i] as usize];
            left_sum += y;
            left_sum_sq += y * y;
            ps[j] = left_sum;
            pss[j] = left_sum_sq;
            vals[j] = col[seg[i] as usize];
        }
        vals[m] = col[seg[hi] as usize];

        // Lane-parallel candidate evaluation. Every lane expression
        // mirrors one scalar expression: `np1` is the exact integer
        // `(i + 1) as f64` (integer-valued f64 adds below 2^53 are
        // exact), so `nf − np1` is exactly `(n − i − 1) as f64`, and
        // the products/differences/roots are the scalar ops per lane.
        let iota = F64x4([0.0, 1.0, 2.0, 3.0]);
        let zero = F64x4::splat(0.0);
        let inf = F64x4::splat(f64::INFINITY);
        let nfv = F64x4::splat(nf);
        let ts = F64x4::splat(total_sum);
        let tss = F64x4::splat(total_sum_sq);
        let mut bw = F64x4::splat(bound);
        // Position sentinel: a lane's position is only read when its
        // best `w` dropped below `bound`, which requires a select.
        let mut bpos = F64x4::splat(f64::INFINITY);
        let lanes = m - m % F64x4::LANES;
        let mut j = 0;
        while j < lanes {
            let np1 = F64x4::splat((lo + j + 1) as f64).add(iota);
            let ls = F64x4::from_slice(&ps[j..]);
            let lss = F64x4::from_slice(&pss[j..]);
            let rs = ts.sub(ls);
            let rss = tss.sub(lss);
            let scaled_l = np1.mul(lss).sub(ls.mul(ls)).max(zero);
            let scaled_r = nfv.sub(np1).mul(rss).sub(rs.mul(rs)).max(zero);
            let w = scaled_l.sqrt().add(scaled_r.sqrt());
            // A threshold must separate distinct values; equal-valued
            // positions get +∞ and can never win the strict `<`.
            let valid = F64x4::from_slice(&vals[j..]).ne(F64x4::from_slice(&vals[j + 1..]));
            let w = F64x4::select(valid, w, inf);
            let better = w.lt(bw);
            bw = F64x4::select(better, w, bw);
            bpos = F64x4::select(better, F64x4::splat(j as f64).add(iota), bpos);
            j += F64x4::LANES;
        }

        // Scalar tail over the last partial lane, same expressions.
        let mut best_w = bound;
        let mut best_pos = usize::MAX;
        for j in lanes..m {
            if vals[j] == vals[j + 1] {
                continue;
            }
            let i = lo + j;
            let ls = ps[j];
            let lss = pss[j];
            let rs = total_sum - ls;
            let rss = total_sum_sq - lss;
            let scaled_l = ((i + 1) as f64 * lss - ls * ls).max(0.0);
            let scaled_r = ((n - i - 1) as f64 * rss - rs * rs).max(0.0);
            let roots = paired_sqrt(scaled_l, scaled_r);
            let w = roots[0] + roots[1];
            if w < best_w {
                best_w = w;
                best_pos = j;
            }
        }

        // Lexicographic (w, position) reduction over the lane bests:
        // deterministic fixed order, equivalent to the scalar
        // leftmost-winner rule.
        for k in 0..F64x4::LANES {
            let w = bw.0[k];
            if w < bound {
                let p = bpos.0[k] as usize;
                if w < best_w || (w == best_w && p < best_pos) {
                    best_w = w;
                    best_pos = p;
                }
            }
        }

        if best_pos == usize::MAX {
            return None;
        }
        Some(Split {
            event,
            // The sorted-order invariant `value == col[seg[i]]` makes
            // this the scalar scan's `0.5 * (value + next_value)`.
            threshold: 0.5 * (vals[best_pos] + vals[best_pos + 1]),
            sdr: total_sd - best_w / nf,
        })
    })
}

/// Finds the SDR-maximizing split over all attributes of a presorted
/// node, subject to both sides receiving at least `min_leaf` samples.
///
/// With `n_threads > 1` the attribute scans run on scoped worker
/// threads; the result is bit-identical to the serial scan (see the
/// module docs).
///
/// Returns `None` when no admissible split improves on the parent (all
/// attribute columns constant, node too small, or best SDR is
/// numerically zero).
pub fn find_best_split(
    cols: &Columns<'_>,
    set: &NodeSet<'_>,
    min_leaf: usize,
    stats: &TargetStats,
    n_threads: usize,
) -> Option<Split> {
    find_best_split_with(cols, set, min_leaf, stats, n_threads, simd::simd_enabled())
}

/// [`find_best_split`] with the threshold-scan kernel chosen
/// explicitly: `use_simd` selects the vectorized [`scan_attribute_simd`]
/// or the scalar [`scan_attribute`] oracle. Both produce bit-identical
/// splits — this entry point exists so tests and benchmarks can A/B the
/// two in one process regardless of `SPECREPRO_NO_SIMD`.
pub fn find_best_split_with(
    cols: &Columns<'_>,
    set: &NodeSet<'_>,
    min_leaf: usize,
    stats: &TargetStats,
    n_threads: usize,
    use_simd: bool,
) -> Option<Split> {
    type ScanFn = fn(&[f64], &[f64], &[u32], EventId, usize, &TargetStats, f64) -> Option<Split>;
    let scan: ScanFn = if use_simd {
        scan_attribute_simd
    } else {
        scan_attribute
    };
    let n = set.len();
    if n < 2 * min_leaf {
        return None;
    }
    let total_sd = stats.sd();
    if total_sd <= 0.0 {
        return None;
    }
    // One SDR evaluation = one attribute's threshold scan at this node.
    obskit::metrics::add(
        obskit::metrics::Metric::TrainerSplitEvaluations,
        N_EVENTS as u64,
    );

    let mut per_event: Vec<Option<Split>> = vec![None; N_EVENTS];
    let workers = n_threads.min(N_EVENTS);
    if workers <= 1 {
        for (slot, event) in per_event.iter_mut().zip(EventId::ALL) {
            *slot = scan(
                cols.event(event),
                cols.cpi,
                set.sorted(event),
                event,
                min_leaf,
                stats,
                total_sd,
            );
        }
    } else {
        // Deal attributes round-robin to `workers` scoped threads; each
        // scan is independent, so placement never affects the result.
        let segments: Vec<&[u32]> = (0..N_EVENTS).map(|e| &*set.sorted[e]).collect();
        let segments = &segments;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        EventId::ALL
                            .into_iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|event| {
                                (
                                    event.index(),
                                    scan(
                                        cols.event(event),
                                        cols.cpi,
                                        segments[event.index()],
                                        event,
                                        min_leaf,
                                        stats,
                                        total_sd,
                                    ),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (index, result) in handle.join().expect("attribute scan panicked") {
                    per_event[index] = result;
                }
            }
        });
    }

    // Sequential reduction in EventId::ALL order: with strict `>`, the
    // earliest attribute keeps ties, matching the historical single-scan
    // behavior exactly.
    let mut best: Option<Split> = None;
    for candidate in per_event.into_iter().flatten() {
        if best.is_none_or(|b| candidate.sdr > b.sdr) {
            best = Some(candidate);
        }
    }
    best
}

/// Convenience wrapper: presorts a subset of `data` and searches it once.
///
/// This is the one-shot entry point used by tests and benchmarks; tree
/// fitting instead builds the root [`SortArena`] once and maintains it
/// by partitioning.
pub fn best_split(data: &Dataset, indices: &[u32], min_leaf: usize) -> Option<Split> {
    if indices.is_empty() {
        return None;
    }
    let cols = Columns::new(data);
    let mut arena = SortArena::new(&cols, indices);
    let set = arena.node_set();
    let stats = TargetStats::compute(cols.cpi, &set.indices);
    find_best_split(&cols, &set, min_leaf, &stats, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::Sample;

    fn two_regime_dataset() -> (Dataset, Vec<u32>) {
        // CPI = 0.5 below the DtlbMiss threshold, 2.0 above it.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("toy");
        for i in 0..100 {
            let (dtlb, cpi) = if i < 50 { (1e-4, 0.5) } else { (4e-4, 2.0) };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::DtlbMiss, dtlb);
            // A second, uninformative attribute.
            s.set(EventId::Load, 0.3);
            ds.push(s, b);
        }
        let idx = (0..100).collect();
        (ds, idx)
    }

    #[test]
    fn finds_the_informative_attribute() {
        let (ds, idx) = two_regime_dataset();
        let split = best_split(&ds, &idx, 2).unwrap();
        assert_eq!(split.event, EventId::DtlbMiss);
        assert!(split.threshold > 1e-4 && split.threshold < 4e-4);
        assert!(split.sdr > 0.0);
    }

    #[test]
    fn order_key_matches_total_cmp() {
        let values = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            0.3,
            f64::INFINITY,
        ];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    order_key(a).cmp(&order_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn partition_respects_threshold() {
        let (ds, idx) = two_regime_dataset();
        let cols = Columns::new(&ds);
        let mut arena = SortArena::new(&cols, &idx);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);
        let split = find_best_split(&cols, &set, 2, &stats, 1).unwrap();
        let mut mask = vec![false; ds.len()];
        let mut scratch = vec![0u32; ds.len()];
        let (left, right) = set.partition(&cols, &split, &mut mask, &mut scratch);
        assert_eq!(left.len(), 50);
        assert_eq!(right.len(), 50);
        assert!(left
            .indices
            .iter()
            .all(|&i| ds.sample(i as usize).get(EventId::DtlbMiss) <= split.threshold));
        assert!(right
            .indices
            .iter()
            .all(|&i| ds.sample(i as usize).get(EventId::DtlbMiss) > split.threshold));
    }

    #[test]
    fn partition_keeps_children_sorted() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("perm");
        // Interleaved values so the sorted permutations are non-trivial.
        for i in 0..60u32 {
            let v = ((i * 37) % 60) as f64 * 0.01;
            let mut s = Sample::zeros(if v < 0.3 { 0.5 } else { 2.0 });
            s.set(EventId::Load, v);
            s.set(EventId::Mul, 0.6 - v);
            ds.push(s, b);
        }
        let cols = Columns::new(&ds);
        let mut arena = SortArena::root(&cols);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);
        let split = find_best_split(&cols, &set, 2, &stats, 1).unwrap();
        let mut mask = vec![false; ds.len()];
        let mut scratch = vec![0u32; ds.len()];
        let (left, right) = set.partition(&cols, &split, &mut mask, &mut scratch);
        for child in [&left, &right] {
            for e in EventId::ALL {
                let col = cols.event(e);
                let list = child.sorted(e);
                assert_eq!(list.len(), child.len());
                for w in list.windows(2) {
                    let (a, b) = (col[w[0] as usize], col[w[1] as usize]);
                    assert!(a <= b, "child list unsorted on {e:?}: {a} > {b}");
                    // Stability: ties keep original index order.
                    if a == b {
                        assert!(w[0] < w[1]);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial() {
        let (ds, idx) = two_regime_dataset();
        let cols = Columns::new(&ds);
        let mut arena = SortArena::new(&cols, &idx);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);
        let serial = find_best_split(&cols, &set, 2, &stats, 1);
        for threads in [2, 4, 19, 64] {
            let parallel = find_best_split(&cols, &set, 2, &stats, threads);
            assert_eq!(serial, parallel, "n_threads = {threads}");
        }
    }

    #[test]
    fn simd_scan_is_bit_identical_to_scalar() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Messy datasets: duplicated attribute values (tie skipping),
        // several informative attributes (cross-attribute reduction),
        // varied sizes around the lane width and the scalar-fallback
        // cutoff.
        for (n, seed) in [
            (8usize, 1u64),
            (17, 2),
            (40, 3),
            (100, 4),
            (513, 5),
            (2000, 6),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ds = Dataset::new();
            let b = ds.add_benchmark("mix");
            for _ in 0..n {
                let dtlb = f64::from(rng.gen_range(0u32..8)) * 1e-4;
                let load = rng.gen::<f64>() * 0.5;
                let l2 = f64::from(rng.gen_range(0u32..4)) * 2e-4;
                let cpi = 0.5 + 900.0 * dtlb + 0.8 * load + 300.0 * l2 + 0.05 * rng.gen::<f64>();
                let mut s = Sample::zeros(cpi);
                s.set(EventId::DtlbMiss, dtlb);
                s.set(EventId::Load, load);
                s.set(EventId::L2Miss, l2);
                ds.push(s, b);
            }
            let cols = Columns::new(&ds);
            let mut arena = SortArena::root(&cols);
            let set = arena.node_set();
            let stats = TargetStats::compute(cols.cpi, &set.indices);
            for min_leaf in [1usize, 2, 4, 9] {
                for threads in [1usize, 4] {
                    let scalar =
                        find_best_split_with(&cols, &set, min_leaf, &stats, threads, false);
                    let simd = find_best_split_with(&cols, &set, min_leaf, &stats, threads, true);
                    match (scalar, simd) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.event, b.event, "n={n} min_leaf={min_leaf}");
                            assert_eq!(
                                a.threshold.to_bits(),
                                b.threshold.to_bits(),
                                "n={n} min_leaf={min_leaf}: {} vs {}",
                                a.threshold,
                                b.threshold
                            );
                            assert_eq!(
                                a.sdr.to_bits(),
                                b.sdr.to_bits(),
                                "n={n} min_leaf={min_leaf}: {} vs {}",
                                a.sdr,
                                b.sdr
                            );
                        }
                        (a, b) => panic!("n={n} min_leaf={min_leaf}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn simd_scan_handles_constant_and_tiny_columns() {
        // Constant-column early exit and the scalar fallback for
        // windows under the SIMD cutoff take the same paths as scalar.
        let (ds, idx) = two_regime_dataset();
        let cols = Columns::new(&ds);
        let mut arena = SortArena::new(&cols, &idx[..6]);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);
        let scalar = find_best_split_with(&cols, &set, 2, &stats, 1, false);
        let simd = find_best_split_with(&cols, &set, 2, &stats, 1, true);
        assert_eq!(scalar, simd);
    }

    #[test]
    fn no_split_on_constant_target() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        for i in 0..50 {
            let mut s = Sample::zeros(1.0);
            s.set(EventId::Load, i as f64 * 0.01);
            ds.push(s, b);
        }
        let idx: Vec<u32> = (0..50).collect();
        assert!(best_split(&ds, &idx, 2).is_none());
    }

    #[test]
    fn no_split_on_constant_attributes() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        for i in 0..50 {
            // Varying CPI but all attributes identical: nothing to split.
            ds.push(Sample::zeros(1.0 + (i % 5) as f64 * 0.1), b);
        }
        let idx: Vec<u32> = (0..50).collect();
        assert!(best_split(&ds, &idx, 2).is_none());
    }

    #[test]
    fn min_leaf_is_enforced() {
        let (ds, idx) = two_regime_dataset();
        // min_leaf of 60 cannot be met on either side of the only useful
        // split (50/50), and no other attribute varies.
        assert!(best_split(&ds, &idx, 60).is_none());
    }

    #[test]
    fn too_few_samples_returns_none() {
        let (ds, _) = two_regime_dataset();
        assert!(best_split(&ds, &[0, 1, 2], 2).is_none());
        assert!(best_split(&ds, &[], 2).is_none());
    }

    #[test]
    fn target_stats_helpers() {
        let cpi = [1.0, 2.0, 3.0, 4.0];
        let idx = [0u32, 1, 2, 3];
        let stats = TargetStats::compute(&cpi, &idx);
        assert_eq!(stats.n, 4);
        assert!((stats.mean() - 2.5).abs() < 1e-12);
        // Population sd of {1,2,3,4} = sqrt(1.25).
        assert!((stats.sd() - 1.25_f64.sqrt()).abs() < 1e-12);
        let empty = TargetStats::compute(&cpi, &[]);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.sd(), 0.0);
    }

    #[test]
    fn threshold_lies_between_distinct_values() {
        // Values interleave: make sure the chosen threshold always
        // separates two actually-distinct attribute values.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        for i in 0..40 {
            let v = (i / 10) as f64; // 0,0,..,1,1,..,2,..,3
            let mut s = Sample::zeros(v);
            s.set(EventId::Mul, v * 0.1);
            ds.push(s, b);
        }
        let idx: Vec<u32> = (0..40).collect();
        let split = best_split(&ds, &idx, 2).unwrap();
        assert_eq!(split.event, EventId::Mul);
        let distinct = [0.0, 0.1, 0.2, 0.3];
        assert!(distinct.iter().all(|&v| (v - split.threshold).abs() > 1e-9));
    }
}
