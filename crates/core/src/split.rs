//! Standard-deviation-reduction (SDR) split search.
//!
//! At each node, M5' examines every attribute and every threshold between
//! adjacent distinct values, and picks the split that maximizes
//!
//! ```text
//! SDR = sd(T) - Σ_i (|T_i| / |T|) * sd(T_i)
//! ```
//!
//! "the split event at a given node identifies the parameter to which CPI
//! is statistically most sensitive" (paper, Section IV-A1).

use perfcounters::events::EventId;
use perfcounters::Dataset;

/// A candidate split chosen by the SDR criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// The attribute to test.
    pub event: EventId,
    /// The threshold: samples with `value <= threshold` go left.
    pub threshold: f64,
    /// The achieved standard-deviation reduction (absolute, in CPI
    /// units).
    pub sdr: f64,
}

/// Population standard deviation from `(n, Σy, Σy²)` running sums.
#[inline]
fn sd_from_sums(n: f64, sum: f64, sum_sq: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mean = sum / n;
    (sum_sq / n - mean * mean).max(0.0).sqrt()
}

/// Population standard deviation of the CPI over selected samples.
pub(crate) fn cpi_sd(data: &Dataset, indices: &[usize]) -> f64 {
    let n = indices.len() as f64;
    let (sum, sum_sq) = indices.iter().fold((0.0, 0.0), |(s, s2), &i| {
        let y = data.sample(i).cpi();
        (s + y, s2 + y * y)
    });
    sd_from_sums(n, sum, sum_sq)
}

/// Mean CPI over selected samples (0 for an empty set).
pub(crate) fn cpi_mean(data: &Dataset, indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| data.sample(i).cpi()).sum::<f64>() / indices.len() as f64
}

/// Finds the SDR-maximizing split over all attributes, subject to both
/// sides receiving at least `min_leaf` samples.
///
/// Returns `None` when no admissible split improves on the parent (all
/// attribute columns constant, node too small, or best SDR is
/// numerically zero).
pub(crate) fn find_best_split(data: &Dataset, indices: &[usize], min_leaf: usize) -> Option<Split> {
    let n = indices.len();
    if n < 2 * min_leaf {
        return None;
    }
    let total_sd = cpi_sd(data, indices);
    if total_sd <= 0.0 {
        return None;
    }

    let mut best: Option<Split> = None;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    for event in EventId::ALL {
        pairs.clear();
        pairs.extend(indices.iter().map(|&i| {
            let s = data.sample(i);
            (s.get(event), s.cpi())
        }));
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pairs[0].0 == pairs[n - 1].0 {
            continue; // constant column
        }

        let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
        let total_sum_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();

        let mut left_sum = 0.0;
        let mut left_sum_sq = 0.0;
        for i in 0..n - 1 {
            let (value, y) = pairs[i];
            left_sum += y;
            left_sum_sq += y * y;
            let next_value = pairs[i + 1].0;
            if value == next_value {
                continue; // threshold must separate distinct values
            }
            let n_left = i + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let sd_left = sd_from_sums(n_left as f64, left_sum, left_sum_sq);
            let sd_right = sd_from_sums(
                n_right as f64,
                total_sum - left_sum,
                total_sum_sq - left_sum_sq,
            );
            let weighted =
                (n_left as f64 * sd_left + n_right as f64 * sd_right) / n as f64;
            let sdr = total_sd - weighted;
            if sdr > best.map_or(1e-12 * total_sd, |b| b.sdr) {
                best = Some(Split {
                    event,
                    threshold: 0.5 * (value + next_value),
                    sdr,
                });
            }
        }
    }
    best
}

/// Partitions `indices` by a split: `(left, right)` with
/// `value <= threshold` on the left.
pub(crate) fn partition(
    data: &Dataset,
    indices: &[usize],
    split: &Split,
) -> (Vec<usize>, Vec<usize>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &i in indices {
        if data.sample(i).get(split.event) <= split.threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::Sample;

    fn two_regime_dataset() -> (Dataset, Vec<usize>) {
        // CPI = 0.5 below the DtlbMiss threshold, 2.0 above it.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("toy");
        for i in 0..100 {
            let (dtlb, cpi) = if i < 50 { (1e-4, 0.5) } else { (4e-4, 2.0) };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::DtlbMiss, dtlb);
            // A second, uninformative attribute.
            s.set(EventId::Load, 0.3);
            ds.push(s, b);
        }
        let idx = (0..100).collect();
        (ds, idx)
    }

    #[test]
    fn finds_the_informative_attribute() {
        let (ds, idx) = two_regime_dataset();
        let split = find_best_split(&ds, &idx, 2).unwrap();
        assert_eq!(split.event, EventId::DtlbMiss);
        assert!(split.threshold > 1e-4 && split.threshold < 4e-4);
        assert!(split.sdr > 0.0);
    }

    #[test]
    fn partition_respects_threshold() {
        let (ds, idx) = two_regime_dataset();
        let split = find_best_split(&ds, &idx, 2).unwrap();
        let (left, right) = partition(&ds, &idx, &split);
        assert_eq!(left.len(), 50);
        assert_eq!(right.len(), 50);
        assert!(left
            .iter()
            .all(|&i| ds.sample(i).get(EventId::DtlbMiss) <= split.threshold));
        assert!(right
            .iter()
            .all(|&i| ds.sample(i).get(EventId::DtlbMiss) > split.threshold));
    }

    #[test]
    fn no_split_on_constant_target() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        for i in 0..50 {
            let mut s = Sample::zeros(1.0);
            s.set(EventId::Load, i as f64 * 0.01);
            ds.push(s, b);
        }
        let idx: Vec<usize> = (0..50).collect();
        assert!(find_best_split(&ds, &idx, 2).is_none());
    }

    #[test]
    fn no_split_on_constant_attributes() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        for i in 0..50 {
            // Varying CPI but all attributes identical: nothing to split.
            ds.push(Sample::zeros(1.0 + (i % 5) as f64 * 0.1), b);
        }
        let idx: Vec<usize> = (0..50).collect();
        assert!(find_best_split(&ds, &idx, 2).is_none());
    }

    #[test]
    fn min_leaf_is_enforced() {
        let (ds, idx) = two_regime_dataset();
        // min_leaf of 60 cannot be met on either side of the only useful
        // split (50/50), and no other attribute varies.
        assert!(find_best_split(&ds, &idx, 60).is_none());
    }

    #[test]
    fn too_few_samples_returns_none() {
        let (ds, _) = two_regime_dataset();
        assert!(find_best_split(&ds, &[0, 1, 2], 2).is_none());
    }

    #[test]
    fn sd_helpers() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        for &v in &[1.0, 2.0, 3.0, 4.0] {
            ds.push(Sample::zeros(v), b);
        }
        let idx = [0, 1, 2, 3];
        assert!((cpi_mean(&ds, &idx) - 2.5).abs() < 1e-12);
        // Population sd of {1,2,3,4} = sqrt(1.25).
        assert!((cpi_sd(&ds, &idx) - 1.25_f64.sqrt()).abs() < 1e-12);
        assert_eq!(cpi_mean(&ds, &[]), 0.0);
        assert_eq!(cpi_sd(&ds, &[]), 0.0);
    }

    #[test]
    fn threshold_lies_between_distinct_values() {
        // Values interleave: make sure the chosen threshold always
        // separates two actually-distinct attribute values.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        for i in 0..40 {
            let v = (i / 10) as f64; // 0,0,..,1,1,..,2,..,3
            let mut s = Sample::zeros(v);
            s.set(EventId::Mul, v * 0.1);
            ds.push(s, b);
        }
        let idx: Vec<usize> = (0..40).collect();
        let split = find_best_split(&ds, &idx, 2).unwrap();
        assert_eq!(split.event, EventId::Mul);
        let distinct = [0.0, 0.1, 0.2, 0.3];
        assert!(distinct.iter().all(|&v| (v - split.threshold).abs() > 1e-9));
    }
}
