//! M5' hyper-parameters.

use serde::{Deserialize, Serialize};

/// Configuration of the M5' learner.
///
/// The defaults mirror WEKA's `M5P` defaults (minimum of 4 instances per
/// leaf, stop splitting when a node's target standard deviation falls
/// below 5% of the full training set's, smoothing constant 15). The paper
/// notes that the authors "varied M5' algorithm parameters to achieve a
/// balance between tractable model size and good prediction accuracy";
/// [`M5Config::pruning_multiplier`] and [`M5Config::min_leaf`] are the two
/// knobs that trade size against accuracy here.
///
/// # Examples
///
/// ```
/// use modeltree::M5Config;
///
/// let config = M5Config::default()
///     .with_min_leaf(16)
///     .with_smoothing(false);
/// assert_eq!(config.min_leaf, 16);
/// assert!(!config.smoothing);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct M5Config {
    /// Minimum number of training samples in any leaf.
    pub min_leaf: usize,
    /// Minimum number of samples a node must hold to be considered for
    /// splitting (must be at least `2 * min_leaf`).
    pub min_split: usize,
    /// Stop splitting once a node's target standard deviation drops below
    /// this fraction of the root's standard deviation.
    pub sd_fraction: f64,
    /// Maximum tree depth (root = depth 0). `usize::MAX` means unlimited.
    pub max_depth: usize,
    /// Whether to prune bottom-up using the adjusted-error comparison.
    pub prune: bool,
    /// Multiplier applied to the subtree's adjusted error during pruning;
    /// values above 1.0 prune more aggressively (yielding the "tractable
    /// model size" of the paper), below 1.0 less.
    pub pruning_multiplier: f64,
    /// Whether to greedily drop attributes from node models when doing so
    /// lowers the adjusted error.
    pub attribute_elimination: bool,
    /// Whether predictions are smoothed along the root path.
    pub smoothing: bool,
    /// Quinlan's smoothing constant `k` in `p' = (n p + k q) / (n + k)`.
    pub smoothing_k: f64,
    /// Number of threads used for fitting and batch prediction (scoped
    /// threads; no thread pool). Must be at least 1. Training is
    /// **bit-identical** for every value: parallelism only changes wall
    /// clock, never the fitted tree. Defaults to 1 (serial); absent from
    /// older serialized configurations, where it also deserializes to 1.
    #[serde(default = "default_n_threads")]
    pub n_threads: usize,
}

fn default_n_threads() -> usize {
    1
}

impl Default for M5Config {
    fn default() -> Self {
        M5Config {
            min_leaf: 4,
            min_split: 8,
            sd_fraction: 0.05,
            max_depth: usize::MAX,
            prune: true,
            pruning_multiplier: 1.0,
            attribute_elimination: true,
            smoothing: true,
            smoothing_k: 15.0,
            n_threads: 1,
        }
    }
}

impl M5Config {
    /// Sets the minimum leaf size (also raises `min_split` to at least
    /// twice the leaf size).
    #[must_use]
    pub fn with_min_leaf(mut self, min_leaf: usize) -> Self {
        self.min_leaf = min_leaf;
        self.min_split = self.min_split.max(2 * min_leaf);
        self
    }

    /// Sets the standard-deviation stopping fraction.
    #[must_use]
    pub fn with_sd_fraction(mut self, sd_fraction: f64) -> Self {
        self.sd_fraction = sd_fraction;
        self
    }

    /// Sets the maximum depth.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Enables or disables pruning.
    #[must_use]
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Sets the pruning aggressiveness multiplier.
    #[must_use]
    pub fn with_pruning_multiplier(mut self, multiplier: f64) -> Self {
        self.pruning_multiplier = multiplier;
        self
    }

    /// Enables or disables greedy attribute elimination.
    #[must_use]
    pub fn with_attribute_elimination(mut self, enabled: bool) -> Self {
        self.attribute_elimination = enabled;
        self
    }

    /// Enables or disables prediction smoothing.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: bool) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the number of worker threads for fitting and batch
    /// prediction (1 = serial; results are identical for any value).
    #[must_use]
    pub fn with_n_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TreeError::InvalidConfig`] when a parameter is out
    /// of range (zero leaf size, `min_split < 2 * min_leaf`, negative or
    /// non-finite fractions).
    pub fn validate(&self) -> crate::Result<()> {
        if self.min_leaf == 0 {
            return Err(crate::TreeError::InvalidConfig(
                "min_leaf must be at least 1".into(),
            ));
        }
        if self.min_split < 2 * self.min_leaf {
            return Err(crate::TreeError::InvalidConfig(format!(
                "min_split ({}) must be >= 2 * min_leaf ({})",
                self.min_split, self.min_leaf
            )));
        }
        if !self.sd_fraction.is_finite() || self.sd_fraction < 0.0 {
            return Err(crate::TreeError::InvalidConfig(format!(
                "sd_fraction must be finite and >= 0, got {}",
                self.sd_fraction
            )));
        }
        if !self.pruning_multiplier.is_finite() || self.pruning_multiplier <= 0.0 {
            return Err(crate::TreeError::InvalidConfig(format!(
                "pruning_multiplier must be finite and > 0, got {}",
                self.pruning_multiplier
            )));
        }
        if !self.smoothing_k.is_finite() || self.smoothing_k < 0.0 {
            return Err(crate::TreeError::InvalidConfig(format!(
                "smoothing_k must be finite and >= 0, got {}",
                self.smoothing_k
            )));
        }
        if self.n_threads == 0 {
            return Err(crate::TreeError::InvalidConfig(
                "n_threads must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(M5Config::default().validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = M5Config::default()
            .with_min_leaf(10)
            .with_sd_fraction(0.1)
            .with_max_depth(5)
            .with_prune(false)
            .with_pruning_multiplier(2.0)
            .with_attribute_elimination(false)
            .with_smoothing(false);
        assert_eq!(c.min_leaf, 10);
        assert!(c.min_split >= 20);
        assert_eq!(c.max_depth, 5);
        assert!(!c.prune);
        assert!(!c.attribute_elimination);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(M5Config {
            min_leaf: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(M5Config {
            min_split: 4,
            min_leaf: 4,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(M5Config {
            sd_fraction: -0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(M5Config {
            pruning_multiplier: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(M5Config {
            smoothing_k: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(M5Config {
            n_threads: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn n_threads_builder_and_default() {
        assert_eq!(M5Config::default().n_threads, 1);
        let c = M5Config::default().with_n_threads(8);
        assert_eq!(c.n_threads, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn n_threads_defaults_when_absent_from_json() {
        // Configurations serialized before n_threads existed must still
        // deserialize (to the serial default).
        let c = M5Config::default();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("n_threads"));
        let stripped: serde_json::Value = {
            let v = serde_json::from_str::<serde_json::Value>(&json).unwrap();
            match v {
                serde_json::Value::Object(fields) => serde_json::Value::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k != "n_threads")
                        .collect(),
                ),
                other => other,
            }
        };
        let back: M5Config =
            serde_json::from_str(&serde_json::to_string(&stripped).unwrap()).unwrap();
        assert_eq!(back.n_threads, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = M5Config::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: M5Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
