//! From-scratch M5' model trees — the paper's primary contribution.
//!
//! A *model tree* recursively partitions the input space with univariate
//! threshold tests and places a multivariate **linear model** at each
//! leaf, so that each leaf represents one class of performance behavior.
//! This crate implements the M5' algorithm (Wang & Witten's
//! re-implementation of Quinlan's M5, the algorithm the paper runs inside
//! WEKA) over [`perfcounters`] datasets:
//!
//! * **Growing** ([`split`]): standard-deviation-reduction (SDR) splitting
//!   with per-attribute threshold scans.
//! * **Node models** ([`linreg`]): least-squares linear models over the
//!   attributes referenced in each node's subtree, simplified by greedy
//!   attribute elimination under the M5 adjusted-error factor
//!   `(n + v) / (n - v)`.
//! * **Pruning** ([`tree`]): bottom-up subtree replacement whenever a
//!   node's own linear model has no worse adjusted error than its
//!   subtree.
//! * **Smoothing** ([`tree`]): Quinlan's leaf-to-root prediction blending
//!   `p' = (n p + k q) / (n + k)`.
//! * **Rendering** ([`display`]): WEKA-style tree dumps and the
//!   paper-style leaf equations (e.g. `LM1: CPI = 0.53 + 4.73*L1DMiss +
//!   ...`).
//!
//! # Examples
//!
//! ```
//! use modeltree::{M5Config, ModelTree};
//! use perfcounters::{Dataset, EventId, Sample};
//!
//! // A tiny synthetic dataset: CPI jumps when DtlbMiss crosses 2e-4.
//! let mut ds = Dataset::new();
//! let b = ds.add_benchmark("toy");
//! for i in 0..200 {
//!     let dtlb = if i % 2 == 0 { 1e-4 } else { 3e-4 };
//!     let cpi = if i % 2 == 0 { 0.6 } else { 1.4 };
//!     let mut s = Sample::zeros(cpi);
//!     s.set(EventId::DtlbMiss, dtlb);
//!     ds.push(s, b);
//! }
//! let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
//! let mut probe = Sample::zeros(0.0);
//! probe.set(EventId::DtlbMiss, 3e-4);
//! assert!(tree.predict(&probe) > 1.0);
//! ```

pub mod compiled;
pub mod config;
pub mod crossval;
pub mod display;
pub mod linreg;
pub mod simd;
pub mod split;
pub mod tree;

pub use compiled::{CompiledTree, Precision};
pub use config::M5Config;
pub use crossval::{k_fold, CrossValidation};
pub use linreg::LinearModel;
pub use tree::{ExplainStep, Explanation, ModelTree, NodeId, NodeKind};

/// Errors from model-tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The training set was empty or smaller than the configured minimum.
    InsufficientData(String),
    /// Configuration parameters were invalid (e.g. a zero minimum leaf
    /// size).
    InvalidConfig(String),
    /// The target column was degenerate in a way that prevents fitting
    /// (e.g. non-finite CPI values).
    DegenerateTarget(String),
    /// An attribute column contained a NaN or infinite cell. Non-finite
    /// attribute values poison threshold midpoints (`0.5 * (v + NaN)`)
    /// and would let the split search produce empty partitions, so they
    /// are rejected up front.
    NonFiniteAttribute(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            TreeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TreeError::DegenerateTarget(msg) => write!(f, "degenerate target: {msg}"),
            TreeError::NonFiniteAttribute(msg) => write!(f, "non-finite attribute: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, TreeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TreeError::InsufficientData("empty".into())
            .to_string()
            .contains("empty"));
        assert!(!TreeError::InvalidConfig("x".into()).to_string().is_empty());
    }

    #[test]
    fn error_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TreeError>();
    }
}
