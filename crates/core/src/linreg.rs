//! Linear models at tree nodes, with M5-style greedy attribute
//! elimination.
//!
//! Models are fit by least squares over a precomputed Gram system so the
//! elimination search (which refits many attribute subsets) never
//! re-touches the sample data. Subset selection minimizes the M5 adjusted
//! error `rmse * (n + v) / (n - v)`, which penalizes parameter count `v`
//! on small nodes.

use crate::config::M5Config;
use crate::split::Columns;
use mathkit::matrix::Matrix;
use mathkit::solve::solve_ridge;
use perfcounters::events::EventId;
use perfcounters::Dataset;
use serde::{Deserialize, Serialize};

/// A linear model `CPI = intercept + Σ coefficient · event`.
///
/// Terms are kept sorted by event index. An empty term list is a constant
/// model, which is how M5' represents leaves whose subtree carried no
/// usable attribute (the paper: "the remainder of the models are
/// constants").
///
/// # Examples
///
/// ```
/// use modeltree::LinearModel;
/// use perfcounters::{EventId, Sample};
///
/// let lm = LinearModel::new(0.5, vec![(EventId::L2Miss, 1000.0)]);
/// let mut s = Sample::zeros(0.0);
/// s.set(EventId::L2Miss, 2e-4);
/// assert!((lm.predict(&s) - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    terms: Vec<(EventId, f64)>,
}

impl LinearModel {
    /// Creates a model from an intercept and `(event, coefficient)`
    /// terms. Terms are sorted by event index; duplicate events are
    /// summed.
    pub fn new(intercept: f64, mut terms: Vec<(EventId, f64)>) -> Self {
        terms.sort_by_key(|(e, _)| e.index());
        terms.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        LinearModel { intercept, terms }
    }

    /// A constant model.
    pub fn constant(value: f64) -> Self {
        LinearModel {
            intercept: value,
            terms: Vec::new(),
        }
    }

    /// The intercept (constant term).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The `(event, coefficient)` terms, sorted by event index.
    pub fn terms(&self) -> &[(EventId, f64)] {
        &self.terms
    }

    /// The coefficient for one event, or 0 if the event is absent.
    pub fn coefficient(&self, event: EventId) -> f64 {
        self.terms
            .iter()
            .find(|(e, _)| *e == event)
            .map_or(0.0, |(_, c)| *c)
    }

    /// Number of fitted parameters (intercept plus term count), the `v`
    /// of the adjusted-error factor.
    pub fn n_params(&self) -> usize {
        1 + self.terms.len()
    }

    /// True if the model is a pure constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Predicted CPI for a sample.
    pub fn predict(&self, sample: &perfcounters::Sample) -> f64 {
        self.intercept
            + self
                .terms
                .iter()
                .map(|(e, c)| c * sample.get(*e))
                .sum::<f64>()
    }

    /// Mean absolute error of this model over selected samples of a
    /// dataset (the error measure M5 pruning compares).
    ///
    /// Returns 0 for an empty index set.
    pub fn mean_abs_error(&self, data: &Dataset, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let sum: f64 = indices
            .iter()
            .map(|&i| {
                let s = data.sample(i);
                (self.predict(s) - s.cpi()).abs()
            })
            .sum();
        sum / indices.len() as f64
    }

    /// Columnar counterpart of [`LinearModel::mean_abs_error`], used by
    /// pruning so the hot path never touches row accessors. Same
    /// accumulation order, hence bit-identical results.
    pub(crate) fn mean_abs_error_cols(&self, cols: &Columns<'_>, indices: &[u32]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let sum: f64 = indices
            .iter()
            .map(|&i| {
                let i = i as usize;
                let predicted = self.intercept
                    + self
                        .terms
                        .iter()
                        .map(|(e, c)| c * cols.event(*e)[i])
                        .sum::<f64>();
                (predicted - cols.cpi[i]).abs()
            })
            .sum();
        sum / indices.len() as f64
    }
}

impl std::fmt::Display for LinearModel {
    /// Renders the model in the paper's equation style:
    /// `CPI = 0.53 + 4.73*L1DMiss - 0.198*Store`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CPI = {:.4}", self.intercept)?;
        for (e, c) in &self.terms {
            if *c >= 0.0 {
                write!(f, " + {:.4}*{}", c, e.short_name())?;
            } else {
                write!(f, " - {:.4}*{}", -c, e.short_name())?;
            }
        }
        Ok(())
    }
}

/// The M5 adjusted-error factor `(n + v) / (n - v)`; returns infinity when
/// `n <= v` so over-parameterized models always lose.
pub(crate) fn adjusted_error_factor(n: usize, v: usize) -> f64 {
    if n <= v {
        f64::INFINITY
    } else {
        (n + v) as f64 / (n - v) as f64
    }
}

/// Precomputed normal-equation system for one node's samples over a fixed
/// candidate attribute list, supporting cheap subset refits.
pub(crate) struct GramSystem {
    /// Candidate attributes, in the order of Gram rows 1..=k.
    candidates: Vec<EventId>,
    /// `(k+1) x (k+1)` Gram matrix of `[1, x_1, ..., x_k]`.
    gram: Matrix,
    /// `Xᵀ y` for the same augmented design.
    xty: Vec<f64>,
    /// `yᵀ y`.
    yty: f64,
    /// Sample count.
    n: usize,
}

impl GramSystem {
    /// Builds the system from the selected rows of a columnar view.
    pub(crate) fn new(cols: &Columns<'_>, indices: &[u32], candidates: &[EventId]) -> Self {
        let k = candidates.len();
        let mut gram = Matrix::zeros(k + 1, k + 1);
        let mut xty = vec![0.0; k + 1];
        let mut yty = 0.0;
        let mut row = vec![0.0; k + 1];
        let columns: Vec<&[f64]> = candidates.iter().map(|&e| cols.event(e)).collect();
        for &i in indices {
            let i = i as usize;
            row[0] = 1.0;
            for (j, col) in columns.iter().enumerate() {
                row[j + 1] = col[i];
            }
            let y = cols.cpi[i];
            yty += y * y;
            for a in 0..=k {
                xty[a] += row[a] * y;
                for b in a..=k {
                    gram[(a, b)] += row[a] * row[b];
                }
            }
        }
        for a in 0..=k {
            for b in 0..a {
                gram[(a, b)] = gram[(b, a)];
            }
        }
        GramSystem {
            candidates: candidates.to_vec(),
            gram,
            xty,
            yty,
            n: indices.len(),
        }
    }

    /// Solves the least-squares subproblem restricted to the candidate
    /// subset given by `active` (indices into the candidate list), and
    /// returns `(model, sse)`.
    pub(crate) fn solve_subset(&self, active: &[usize]) -> (LinearModel, f64) {
        // Column 0 (intercept) is always included.
        let dims: Vec<usize> = std::iter::once(0)
            .chain(active.iter().map(|&a| a + 1))
            .collect();
        let m = dims.len();
        let mut g = Matrix::zeros(m, m);
        let mut c = vec![0.0; m];
        for (ri, &di) in dims.iter().enumerate() {
            c[ri] = self.xty[di];
            for (ci, &dj) in dims.iter().enumerate() {
                g[(ri, ci)] = self.gram[(di, dj)];
            }
        }
        // Exact solve first; ridge regularization only for degenerate
        // (collinear / near-constant) designs so well-conditioned fits
        // stay unperturbed.
        let solution = mathkit::solve::solve_spd(&g, &c)
            .ok()
            .filter(|beta| beta.iter().all(|v| v.is_finite()))
            .map_or_else(|| solve_ridge(&g, &c, 1e-10), Ok);
        match solution {
            Ok(beta) => {
                let sse =
                    (self.yty - beta.iter().zip(&c).map(|(b, ci)| b * ci).sum::<f64>()).max(0.0);
                let terms: Vec<(EventId, f64)> = active
                    .iter()
                    .zip(beta.iter().skip(1))
                    .map(|(&a, &coef)| (self.candidates[a], coef))
                    .collect();
                (LinearModel::new(beta[0], terms), sse)
            }
            Err(_) => {
                // Fully degenerate: fall back to the mean-only model.
                let mean = if self.n > 0 {
                    self.xty[0] / self.n as f64
                } else {
                    0.0
                };
                let sse = (self.yty - mean * self.xty[0]).max(0.0);
                (LinearModel::constant(mean), sse)
            }
        }
    }

    /// Adjusted RMSE for a subset solution.
    fn adjusted_rmse(&self, sse: f64, v: usize) -> f64 {
        if self.n == 0 {
            return f64::INFINITY;
        }
        let rmse = (sse / self.n as f64).sqrt();
        rmse * adjusted_error_factor(self.n, v)
    }
}

/// Fits a linear model for one node: least squares over `candidates`,
/// followed (optionally) by greedy backward attribute elimination under
/// the adjusted-error criterion.
///
/// With an empty candidate list (a pre-pruning leaf whose subtree tests
/// nothing) the result is the constant mean model.
pub(crate) fn fit_node_model(
    cols: &Columns<'_>,
    indices: &[u32],
    candidates: &[EventId],
    config: &M5Config,
) -> LinearModel {
    if indices.is_empty() {
        return LinearModel::constant(0.0);
    }
    let system = GramSystem::new(cols, indices, candidates);
    if candidates.is_empty() {
        return system.solve_subset(&[]).0;
    }

    let mut active: Vec<usize> = (0..candidates.len()).collect();
    // If the node is too small for the full model, pre-trim to keep
    // n > v + 1 (drop from the end — the elimination loop below will
    // reorder by merit anyway).
    while !active.is_empty() && indices.len() <= active.len() + 2 {
        active.pop();
    }

    let (mut model, mut sse) = system.solve_subset(&active);
    if !config.attribute_elimination {
        return model;
    }
    let mut best_adjusted = system.adjusted_rmse(sse, active.len() + 1);

    loop {
        if active.is_empty() {
            break;
        }
        let mut best_drop: Option<(usize, LinearModel, f64, f64)> = None;
        for pos in 0..active.len() {
            let mut trial: Vec<usize> = active.clone();
            trial.remove(pos);
            let (m, s) = system.solve_subset(&trial);
            let adj = system.adjusted_rmse(s, trial.len() + 1);
            if adj <= best_adjusted && best_drop.as_ref().is_none_or(|(_, _, _, prev)| adj < *prev)
            {
                best_drop = Some((pos, m, s, adj));
            }
        }
        match best_drop {
            Some((pos, m, s, adj)) => {
                obskit::metrics::incr(obskit::metrics::Metric::TrainerAttributeEliminations);
                active.remove(pos);
                model = m;
                sse = s;
                best_adjusted = adj;
            }
            None => break,
        }
    }
    let _ = sse;
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::Sample;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth_dataset<F: Fn(&Sample) -> f64>(
        n: usize,
        seed: u64,
        events: &[EventId],
        truth: F,
    ) -> (Dataset, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let mut s = Sample::zeros(0.0);
            for e in events {
                s.set(*e, rng.gen::<f64>());
            }
            let cpi = truth(&s);
            s.set_cpi(cpi);
            ds.push(s, b);
        }
        let idx: Vec<u32> = (0..n as u32).collect();
        (ds, idx)
    }

    #[test]
    fn constant_model() {
        let lm = LinearModel::constant(1.44);
        assert!(lm.is_constant());
        assert_eq!(lm.n_params(), 1);
        assert_eq!(lm.predict(&Sample::zeros(0.0)), 1.44);
    }

    #[test]
    fn new_dedupes_and_sorts_terms() {
        let lm = LinearModel::new(
            0.0,
            vec![
                (EventId::Simd, 1.0),
                (EventId::Load, 2.0),
                (EventId::Simd, 3.0),
            ],
        );
        assert_eq!(lm.terms().len(), 2);
        assert_eq!(lm.terms()[0].0, EventId::Load);
        assert_eq!(lm.coefficient(EventId::Simd), 4.0);
        assert_eq!(lm.coefficient(EventId::Div), 0.0);
    }

    #[test]
    fn display_uses_paper_style() {
        let lm = LinearModel::new(
            0.53,
            vec![(EventId::L1DMiss, 4.73), (EventId::Store, -0.198)],
        );
        let text = format!("{lm}");
        assert!(text.starts_with("CPI = 0.5300"));
        assert!(text.contains("+ 4.7300*L1DMiss"));
        assert!(text.contains("- 0.1980*Store"));
    }

    #[test]
    fn fit_recovers_exact_linear_relationship() {
        let events = [EventId::Load, EventId::L2Miss];
        let (ds, idx) = synth_dataset(500, 1, &events, |s| {
            0.4 + 2.0 * s.get(EventId::Load) + 30.0 * s.get(EventId::L2Miss)
        });
        let lm = fit_node_model(&Columns::new(&ds), &idx, &events, &M5Config::default());
        assert!((lm.intercept() - 0.4).abs() < 1e-8, "{lm}");
        assert!((lm.coefficient(EventId::Load) - 2.0).abs() < 1e-8);
        assert!((lm.coefficient(EventId::L2Miss) - 30.0).abs() < 1e-8);
    }

    #[test]
    fn elimination_drops_irrelevant_attributes() {
        // CPI depends only on Load; Div is noise-free-irrelevant.
        let events = [EventId::Load, EventId::Div, EventId::Mul];
        let (ds, idx) = synth_dataset(400, 2, &events, |s| 1.0 + 3.0 * s.get(EventId::Load));
        let lm = fit_node_model(&Columns::new(&ds), &idx, &events, &M5Config::default());
        assert!(lm.coefficient(EventId::Div).abs() < 1e-8);
        assert!((lm.coefficient(EventId::Load) - 3.0).abs() < 1e-8);
    }

    #[test]
    fn elimination_can_be_disabled() {
        let events = [EventId::Load, EventId::Div];
        let (ds, idx) = synth_dataset(50, 3, &events, |s| 1.0 + 3.0 * s.get(EventId::Load));
        let config = M5Config::default().with_attribute_elimination(false);
        let lm = fit_node_model(&Columns::new(&ds), &idx, &events, &config);
        // Without elimination both attributes stay in the model.
        assert_eq!(lm.terms().len(), 2);
    }

    #[test]
    fn empty_candidates_yield_mean() {
        let (ds, idx) = synth_dataset(100, 4, &[], |_| 1.25);
        let lm = fit_node_model(&Columns::new(&ds), &idx, &[], &M5Config::default());
        assert!(lm.is_constant());
        assert!((lm.intercept() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_indices_yield_zero_constant() {
        let (ds, _) = synth_dataset(10, 5, &[], |_| 1.0);
        let lm = fit_node_model(
            &Columns::new(&ds),
            &[],
            &[EventId::Load],
            &M5Config::default(),
        );
        assert!(lm.is_constant());
    }

    #[test]
    fn tiny_node_does_not_overparameterize() {
        let events = EventId::ALL;
        let (ds, _) = synth_dataset(6, 6, &events, |s| 1.0 + s.get(EventId::Load));
        let idx: Vec<u32> = (0..6).collect();
        let lm = fit_node_model(&Columns::new(&ds), &idx, &events, &M5Config::default());
        assert!(lm.n_params() < 6, "params {} for 6 samples", lm.n_params());
    }

    #[test]
    fn collinear_attributes_handled() {
        // Two identical columns: ridge fallback must keep it finite.
        let mut rng = StdRng::seed_from_u64(7);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        for _ in 0..200 {
            let v: f64 = rng.gen();
            let mut s = Sample::zeros(1.0 + 5.0 * v);
            s.set(EventId::Load, v);
            s.set(EventId::Br, v);
            ds.push(s, b);
        }
        let idx: Vec<u32> = (0..200).collect();
        let lm = fit_node_model(
            &Columns::new(&ds),
            &idx,
            &[EventId::Load, EventId::Br],
            &M5Config::default(),
        );
        let mut probe = Sample::zeros(0.0);
        probe.set(EventId::Load, 0.5);
        probe.set(EventId::Br, 0.5);
        assert!((lm.predict(&probe) - 3.5).abs() < 1e-3, "{lm}");
    }

    #[test]
    fn mean_abs_error_computation() {
        let lm = LinearModel::constant(1.0);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        ds.push(Sample::zeros(0.5), b);
        ds.push(Sample::zeros(2.0), b);
        let mae = lm.mean_abs_error(&ds, &[0, 1]);
        assert!((mae - 0.75).abs() < 1e-12);
        assert_eq!(lm.mean_abs_error(&ds, &[]), 0.0);
    }

    #[test]
    fn adjusted_factor_behavior() {
        assert_eq!(adjusted_error_factor(10, 10), f64::INFINITY);
        assert!((adjusted_error_factor(100, 2) - 102.0 / 98.0).abs() < 1e-12);
        assert!(adjusted_error_factor(10, 5) > adjusted_error_factor(100, 5));
    }

    #[test]
    fn serde_roundtrip() {
        let lm = LinearModel::new(0.1, vec![(EventId::PageWalk, 15.7)]);
        let json = serde_json::to_string(&lm).unwrap();
        let back: LinearModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lm);
    }
}
