//! Compiled batch inference over fitted model trees.
//!
//! [`ModelTree::predict`] is an interpreter: every prediction chases
//! node pointers through an enum-tagged arena and, when Quinlan
//! smoothing is enabled, re-evaluates the linear model of **every
//! ancestor** on the root-to-leaf path. That is fine for one sample and
//! ruinous for the evaluation loops the paper pipeline runs — 10-fold
//! cross-validation, pruning sweeps, transferability assessments,
//! bootstrap confidence intervals, and the Table II/IV classification
//! passes all predict tens of thousands of samples per call.
//!
//! [`CompiledTree`] removes both costs at compile time:
//!
//! * **Flat structure-of-arrays layout, columnar partition descent.**
//!   Nodes are stored as parallel arrays (`feature`, `threshold`,
//!   `children`, `slot`) in the tree's interning order, so a scalar
//!   descent is a short loop over dense arrays with no enum matching.
//!   The batch kernels never descend per row at all: they recursively
//!   **partition** the chunk's row list through the tree, so each node
//!   is visited once per chunk with its tested column and threshold
//!   held in registers, every sweep streams the columnar cache, rows
//!   leave the recursion the moment they reach their leaf, and each
//!   leaf's folded model is then evaluated term-major over the leaf's
//!   row list — one coefficient against a contiguous run of rows at a
//!   time.
//!
//! * **Smoothing folded into the leaves.** Quinlan smoothing
//!   `p' = (n·p + k·q) / (n + k)` is a fixed convex combination of the
//!   path's linear models — the weights depend only on the per-node
//!   training counts, never on the sample. For the path
//!   `v_0 (root), v_1, …, v_d (leaf)` the smoothed prediction is
//!   `Σ_i w_i · m_i(x)` with
//!
//!   ```text
//!   w_d = Π_{j=1..d} n_j / (n_j + k)
//!   w_i = k / (n_{i+1} + k) · Π_{j=1..i} n_j / (n_j + k)   (i < d)
//!   ```
//!
//!   Because every `m_i` is linear, the whole combination collapses
//!   into **one effective linear model per leaf** whose intercept and
//!   coefficients are precomputed here. A smoothed prediction becomes a
//!   flat-array descent plus a single sparse dot product — identical in
//!   cost to an unsmoothed one.
//!
//! # Vectorized kernels
//!
//! The batch entry points run a **SIMD cache-blocked kernel** by
//! default (see [`crate::simd`] for the lane types and the
//! `SPECREPRO_NO_SIMD` / `SPECREPRO_BLOCK_ROWS` knobs): rows are
//! processed in blocks sized so one block's working set — the used
//! column windows, the `u32` block-local row lists, the partition
//! scratch, and the accumulator — stays L2-resident across the whole
//! descent. Within a block the partition step gathers lane-width
//! comparison masks, and each leaf's folded model runs term-major with
//! four-lane unfused multiply-adds. Block-local `u32` indices serve as
//! both gather subscript and output position, halving the partition
//! traffic of the scalar kernel's packed `u64` pairs.
//!
//! Every arithmetic step keeps the scalar kernel's association — terms
//! accumulate per row in ascending term order, products round before
//! they are added (no FMA contraction), and the intercept is added
//! last — so the f64 SIMD kernel is **bit-identical** to the scalar
//! oracle kernel, which is kept intact and selectable via
//! `SPECREPRO_NO_SIMD=1` or [`CompiledTree::with_simd`].
//!
//! An opt-in quantized fast path
//! ([`CompiledTree::with_precision`] with [`Precision::F32Fast`])
//! additionally casts thresholds, coefficients, and gathered inputs to
//! `f32`, doubling lane width and halving memory traffic; its per-leaf
//! rounding-error bound is derived analytically at quantization time
//! (see [`CompiledTree::f32_error_bound`]).
//!
//! The folded coefficients are mathematically exact; compiled and
//! interpreted predictions differ only by floating-point reassociation
//! and agree within `1e-10` on every sample (pinned by property tests).
//! [`CompiledTree::predict_batch`] is additionally **bit-identical**
//! for every thread count: each output element is a pure function of
//! its sample, so chunking only changes wall clock.

use std::sync::{Arc, OnceLock};

use crate::linreg::LinearModel;
use crate::simd::{self, F32x8, F64x4};
use crate::tree::{ModelTree, NodeKind};
use perfcounters::events::N_EVENTS;
use perfcounters::{ColumnStore, Dataset, EventId, Sample};
use serde::{Deserialize, Serialize};

/// Sentinel in [`CompiledTree::slot`] marking a split node.
const SPLIT: u32 = u32::MAX;

/// Rows per partition descent in the **scalar** oracle kernel. Each
/// descent level re-sweeps the block's packed row list, so the list,
/// its partition scratch, the leaf accumulator, and the touched column
/// stretches must stay cache-resident; a few thousand rows keeps that
/// working set around a hundred kilobytes while still amortizing the
/// per-node recursion to nothing. The SIMD kernel sizes its blocks at
/// runtime instead ([`simd::block_rows`]).
const BLOCK: usize = 4096;

/// Minimum rows a batch must supply per worker before the chunked
/// entry points spawn threads at all: below this, thread startup
/// dwarfs the kernel and the serial path is both faster and free of
/// dispatch overhead.
const MIN_ROWS_PER_THREAD: usize = 1024;

/// Numeric precision of the batch kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Full `f64` arithmetic, bit-identical to the scalar engine (the
    /// default).
    #[default]
    F64,
    /// Quantized `f32` fast path: thresholds, folded coefficients, and
    /// gathered inputs are cast to `f32`, doubling SIMD lane width and
    /// halving memory traffic. Predictions carry an analytically
    /// bounded rounding error ([`CompiledTree::f32_error_bound`]); a
    /// sample landing within `f32` rounding of a split threshold may
    /// descend to a different (adjacent) leaf than the `f64` engine.
    F32Fast,
}

/// A fitted [`ModelTree`] compiled for batch inference: flat
/// structure-of-arrays nodes plus one smoothing-folded linear model per
/// leaf.
///
/// Build one with [`ModelTree::compile`]. Compilation is cheap (linear
/// in the tree size) and the result is immutable, so it can be reused
/// across every prediction pass over a model.
///
/// # Examples
///
/// ```
/// use modeltree::{M5Config, ModelTree};
/// use perfcounters::{Dataset, EventId, Sample};
///
/// let mut ds = Dataset::new();
/// let b = ds.add_benchmark("toy");
/// for i in 0..200 {
///     let mut s = Sample::zeros(if i % 2 == 0 { 0.6 } else { 1.4 });
///     s.set(EventId::DtlbMiss, if i % 2 == 0 { 1e-4 } else { 3e-4 });
///     ds.push(s, b);
/// }
/// let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
/// let engine = tree.compile();
/// let batch = engine.predict_batch(&ds);
/// for (i, &p) in batch.iter().enumerate() {
///     assert!((p - tree.predict(ds.sample(i))).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTree {
    /// Per node: the tested attribute's [`EventId::index`] (0 for
    /// leaves, whose lookup result never affects the descent).
    feature: Vec<u32>,
    /// Per node: the split threshold (`value <= threshold` goes left);
    /// unused (0) for leaves.
    threshold: Vec<f64>,
    /// Per node: the left and right child slots interleaved
    /// (`children[2·id]` left, `children[2·id + 1]` right). A split's
    /// left child is always `id + 1` because nodes are interned in
    /// pre-order; leaves loop back to themselves. Interleaving lets the
    /// batch descent select the child by *indexing* with the comparison
    /// result — the select cannot compile to a data-dependent branch.
    children: Vec<u32>,
    /// Per node: the leaf's slot in the leaf arrays, or [`SPLIT`].
    slot: Vec<u32>,
    /// Maximum root-to-leaf edge count — also the recursion depth of
    /// the batch partitioner.
    depth: u32,
    /// Per leaf slot: the 1-based linear-model number.
    lm_index: Vec<u32>,
    /// Per leaf slot: the folded model's intercept.
    intercept: Vec<f64>,
    /// All folded-model terms, flattened: leaf `l` owns
    /// `term_start[l] .. term_start[l + 1]`.
    term_feature: Vec<u32>,
    term_coef: Vec<f64>,
    /// Per leaf slot (length `n_leaves + 1`): offsets into the term
    /// arrays.
    term_start: Vec<u32>,
    /// Thread budget for batch entry points (1 = serial). Results are
    /// bit-identical for every value.
    n_threads: usize,
    /// SIMD kernel override: `Some(_)` forces the choice, `None`
    /// follows [`simd::simd_enabled`]. An execution hint like
    /// `n_threads`, but not serialized — a deserialized engine falls
    /// back to the environment default.
    #[serde(skip)]
    simd: Option<bool>,
    /// Cache-block row override for the SIMD kernels; `None` follows
    /// [`simd::block_rows`]. Not serialized (execution hint).
    #[serde(skip)]
    block_rows: Option<usize>,
    /// The `f32` fast path's quantized tables, present iff the engine
    /// was switched to [`Precision::F32Fast`]. Not serialized — the
    /// tables are derived data; re-apply [`CompiledTree::with_precision`]
    /// after deserializing.
    #[serde(skip)]
    quantized: Option<Quantized>,
    /// Lazily built, cached [`KernelPlan`]: the data-independent part
    /// of the per-call SIMD kernel (used-column set plus node/term slot
    /// resolution). Derived data, so not serialized and excluded from
    /// equality; a deserialized engine rebuilds it on first use.
    #[serde(skip)]
    plan: PlanCell,
    /// Inverted plan-caching switch ([`CompiledTree::with_plan_caching`]).
    /// Stored inverted so the serde-skip default (`false`) keeps caching
    /// **on** for deserialized engines.
    #[serde(skip)]
    plan_uncached: bool,
}

impl CompiledTree {
    /// Compiles a fitted tree. Equivalent to [`ModelTree::compile`].
    pub fn new(tree: &ModelTree) -> CompiledTree {
        let _span = obskit::span("engine", "engine.compile");
        obskit::metrics::incr(obskit::metrics::Metric::EngineCompilations);
        let n_nodes = tree.n_nodes();
        let mut compiled = CompiledTree {
            feature: Vec::with_capacity(n_nodes),
            threshold: Vec::with_capacity(n_nodes),
            children: Vec::with_capacity(2 * n_nodes),
            slot: Vec::with_capacity(n_nodes),
            depth: 0,
            lm_index: Vec::new(),
            intercept: Vec::new(),
            term_feature: Vec::new(),
            term_coef: Vec::new(),
            term_start: vec![0],
            n_threads: tree.config().n_threads.max(1),
            simd: None,
            block_rows: None,
            quantized: None,
            plan: PlanCell::default(),
            plan_uncached: false,
        };
        let k = if tree.config().smoothing {
            tree.config().smoothing_k
        } else {
            0.0
        };
        // Dense accumulator for one leaf's folded coefficients; the
        // sparse terms are extracted per leaf so a deep path with
        // overlapping ancestor models still folds to few terms.
        let mut dense = [0.0f64; N_EVENTS];
        let mut path: Vec<(f64, &LinearModel)> = Vec::new(); // (weight, model)
        {
            // The flatten pass is where Quinlan smoothing is actually
            // materialized, so it carries the M5' smoothing-stage span.
            let _fold = obskit::span("engine", "m5.smooth_fold");
            compiled.flatten(tree, tree.root(), 1.0, k, 0, &mut path, &mut dense);
        }
        debug_assert_eq!(compiled.feature.len(), n_nodes);
        obskit::metrics::gauge_max(
            obskit::metrics::Metric::EngineMaxDescentDepth,
            compiled.depth as u64,
        );
        compiled
    }

    /// Pre-order flattening. `weight` is the product
    /// `Π n_j / (n_j + k)` accumulated over the path *below the root*
    /// so far; `path` carries each ancestor's `(folded weight, model)`.
    #[allow(clippy::too_many_arguments)]
    fn flatten<'t>(
        &mut self,
        tree: &'t ModelTree,
        id: crate::tree::NodeId,
        weight: f64,
        k: f64,
        level: u32,
        path: &mut Vec<(f64, &'t LinearModel)>,
        dense: &mut [f64; N_EVENTS],
    ) {
        let node = tree.node(id);
        match *node.kind() {
            NodeKind::Split {
                event,
                threshold,
                left,
                right,
            } => {
                let slot = self.feature.len();
                self.feature.push(event.index() as u32);
                self.threshold.push(threshold);
                self.children.push(slot as u32 + 1);
                self.children.push(0); // patched after the left subtree
                self.slot.push(SPLIT);
                for &child in &[left, right] {
                    // Descending from this node to `child` multiplies
                    // every weight above by n_child / (n_child + k) and
                    // gives this node's own model the complementary
                    // k / (n_child + k) share.
                    let n_child = tree.node(child).n_samples() as f64;
                    let keep = n_child / (n_child + k);
                    let blend = k / (n_child + k);
                    path.push((weight * blend, node.model()));
                    if child == right {
                        self.children[2 * slot + 1] = self.feature.len() as u32;
                    }
                    self.flatten(tree, child, weight * keep, k, level + 1, path, dense);
                    path.pop();
                }
            }
            NodeKind::Leaf { lm_index } => {
                let id = self.feature.len() as u32;
                let leaf_slot = self.lm_index.len() as u32;
                self.feature.push(0);
                self.threshold.push(0.0);
                self.children.push(id);
                self.children.push(id);
                self.slot.push(leaf_slot);
                self.depth = self.depth.max(level);
                self.lm_index.push(lm_index as u32);

                // Fold the path: the leaf model carries the remaining
                // weight, each ancestor its recorded share. Weights sum
                // to 1 by construction.
                let mut intercept = weight * node.model().intercept();
                for (e, c) in node.model().terms() {
                    dense[e.index()] += weight * c;
                }
                for &(w, model) in path.iter() {
                    intercept += w * model.intercept();
                    for (e, c) in model.terms() {
                        dense[e.index()] += w * c;
                    }
                }
                self.intercept.push(intercept);
                for (e, slot) in dense.iter_mut().enumerate() {
                    if *slot != 0.0 {
                        self.term_feature.push(e as u32);
                        self.term_coef.push(*slot);
                        *slot = 0.0;
                    }
                }
                self.term_start.push(self.term_feature.len() as u32);
            }
        }
    }

    /// Number of flattened nodes (equal to the source tree's).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of leaves (= folded linear models).
    pub fn n_leaves(&self) -> usize {
        self.lm_index.len()
    }

    /// The thread budget used by the batch entry points.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Returns the engine with a different batch thread budget (at
    /// least 1). Predictions are bit-identical for every value.
    #[must_use]
    pub fn with_n_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads.max(1);
        self
    }

    /// Returns the engine with the vectorized batch kernels forced on
    /// or off, overriding the `SPECREPRO_NO_SIMD` environment default.
    /// The f64 SIMD kernel is bit-identical to the scalar kernel, so
    /// this only changes speed — it exists for A/B benchmarking and
    /// the testkit's differential axis.
    #[must_use]
    pub fn with_simd(mut self, enabled: bool) -> Self {
        self.simd = Some(enabled);
        self
    }

    /// Returns the engine with a fixed cache-block row count for the
    /// SIMD kernels (at least 1), overriding both the
    /// `SPECREPRO_BLOCK_ROWS` environment variable and the runtime
    /// cache probe. Results are identical for every value.
    #[must_use]
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = Some(rows.max(1));
        self
    }

    /// Returns the engine with kernel-plan caching forced on (the
    /// default) or off.
    ///
    /// The batch entry points split each call's kernel into a
    /// **data-independent plan** — the deduplicated set of columns the
    /// tree touches plus every node's and folded term's slot in that
    /// set, `O(nodes + terms)` to build — and a **per-call view** that
    /// merely borrows the dataset's column slices for the planned
    /// events, `O(used columns)`. The plan depends only on the tree
    /// structure, which is immutable after compilation, so it is built
    /// once and cached on the engine; for the repeated small batches a
    /// model server coalesces (1–64 rows), rebuilding it per call would
    /// dominate the kernel itself. Disabling exists for A/B
    /// benchmarking (`benches/serve_kernel.rs`) — results are identical
    /// either way.
    #[must_use]
    pub fn with_plan_caching(mut self, enabled: bool) -> Self {
        self.plan_uncached = !enabled;
        if !enabled {
            self.plan = PlanCell::default();
        }
        self
    }

    /// Whether the batch entry points reuse the cached kernel plan.
    pub fn plan_caching(&self) -> bool {
        !self.plan_uncached
    }

    /// The engine's kernel plan: the cached copy (building it on first
    /// use), or a fresh build when caching is off.
    fn kernel_plan(&self) -> Arc<KernelPlan> {
        if self.plan_uncached {
            return Arc::new(KernelPlan::build(self));
        }
        Arc::clone(
            self.plan
                .0
                .get_or_init(|| Arc::new(KernelPlan::build(self))),
        )
    }

    /// Returns the engine switched to the given kernel precision.
    /// [`Precision::F32Fast`] builds the quantized tables and their
    /// per-leaf error bounds; [`Precision::F64`] drops them.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.quantized = match precision {
            Precision::F64 => None,
            Precision::F32Fast => Some(Quantized::build(&self)),
        };
        self
    }

    /// The engine's current kernel precision.
    pub fn precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::F32Fast
        } else {
            Precision::F64
        }
    }

    /// Whether the batch entry points will take the vectorized kernel:
    /// the per-engine override if set, the environment default
    /// otherwise.
    pub fn simd_active(&self) -> bool {
        self.simd.unwrap_or_else(simd::simd_enabled)
    }

    /// Analytic bound on `|predict_f32(s) − predict_f64(s)|` for a
    /// [`Precision::F32Fast`] engine, **valid whenever both precisions
    /// descend to the same leaf** (equivalently, when
    /// [`CompiledTree::classify`] agrees across precisions — they can
    /// disagree only when an attribute lies within `f32` rounding of a
    /// split threshold).
    ///
    /// For a leaf whose folded model has `k` terms the quantized
    /// evaluation performs, per term, one `f64→f32` input rounding, one
    /// coefficient rounding, one product rounding, and one accumulation
    /// rounding, plus the intercept rounding and final add — at most
    /// `k + 4` relative roundings of size `u` weighted against each
    /// `|c_i·x_i|` (standard running-error analysis, any summation
    /// order). With `γ_m = m·u / (1 − m·u)` the error is bounded by
    ///
    /// ```text
    /// |err| ≤ γ_{k+4} · (|b| + Σ_i |c_i|·|x_i|)
    /// ```
    ///
    /// Taking `u = f32::EPSILON` (twice the true unit roundoff) absorbs
    /// every constant. The per-leaf factors `γ_{k+4}` are computed and
    /// sanity-checked when [`CompiledTree::with_precision`] quantizes
    /// the tree; this method plugs in the sample's magnitudes.
    ///
    /// Returns `None` unless the engine is quantized.
    pub fn f32_error_bound(&self, sample: &Sample) -> Option<f64> {
        let q = self.quantized.as_ref()?;
        let densities = sample.densities();
        let slot = self.descend(|f| densities[f]);
        let range = self.term_start[slot] as usize..self.term_start[slot + 1] as usize;
        let mut magnitude = self.intercept[slot].abs();
        for t in range {
            magnitude += self.term_coef[t].abs() * densities[self.term_feature[t] as usize].abs();
        }
        Some(q.gamma[slot] * magnitude)
    }

    /// The smoothing-folded effective linear model of one leaf, by its
    /// 1-based linear-model number. With smoothing disabled this equals
    /// the leaf's fitted model; with smoothing enabled it is the full
    /// root-path blend collapsed into a single equation.
    ///
    /// Returns `None` for an out-of-range index.
    pub fn folded_model(&self, lm_index: usize) -> Option<LinearModel> {
        let slot = self.lm_index.iter().position(|&l| l as usize == lm_index)?;
        let range = self.term_start[slot] as usize..self.term_start[slot + 1] as usize;
        let terms = range
            .map(|t| {
                let event = EventId::from_index(self.term_feature[t] as usize)
                    .expect("compiled term features are valid event indices");
                (event, self.term_coef[t])
            })
            .collect();
        Some(LinearModel::new(self.intercept[slot], terms))
    }

    /// Descends the flat arrays for one feature-lookup closure,
    /// returning the reached leaf's slot.
    #[inline]
    fn descend(&self, lookup: impl Fn(usize) -> f64) -> usize {
        let mut id = 0usize;
        loop {
            let s = self.slot[id];
            if s != SPLIT {
                return s as usize;
            }
            let go = usize::from(lookup(self.feature[id] as usize) > self.threshold[id]);
            id = self.children[2 * id + go] as usize;
        }
    }

    /// [`CompiledTree::descend`] against the quantized `f32`
    /// thresholds.
    #[inline]
    fn descend32(&self, q: &Quantized, lookup: impl Fn(usize) -> f32) -> usize {
        let mut id = 0usize;
        loop {
            let s = self.slot[id];
            if s != SPLIT {
                return s as usize;
            }
            let go = usize::from(lookup(self.feature[id] as usize) > q.threshold[id]);
            id = self.children[2 * id + go] as usize;
        }
    }

    /// Branch-free partition of `pairs` by one split test, written into
    /// `scratch`: rows going left end up in `scratch[..nl]` in order,
    /// rows going right in `scratch[nl..]` reversed. Returns `nl`.
    ///
    /// Each row is written to *both* candidate slots and only the
    /// chosen cursor advances, so the loop carries no data-dependent
    /// branch for the predictor to miss. There is no copy-back: the
    /// recursion ping-pongs, descending into `scratch` with the spent
    /// `pairs` buffer as the next level's scratch. The reversed right
    /// half only flips traversal direction — each row's prediction is
    /// independent, so results are unaffected, and hardware prefetchers
    /// stream descending sweeps as well as ascending ones.
    #[inline]
    fn partition(kernel_node: &KernelNode<'_>, pairs: &[u64], scratch: &mut [u64]) -> usize {
        let n = pairs.len();
        let scratch = &mut scratch[..n];
        let mut l = 0usize;
        let mut r = n;
        for &p in pairs {
            let go = usize::from(kernel_node.col[(p >> 32) as usize] > kernel_node.threshold);
            scratch[l] = p;
            scratch[r - 1] = p;
            l += 1 - go;
            r -= go;
        }
        l
    }

    /// Partition-descends `pairs` (packed `row << 32 | out_pos`) from
    /// node `id` and writes each row's prediction to `out[out_pos]`.
    ///
    /// At a leaf the folded model runs **term-major**: each term's
    /// coefficient and column pointer stay in registers while the
    /// leaf's whole row list accumulates, so the per-(row, term) work
    /// is one monotone-order gather and one multiply-add into a
    /// sequential accumulator. Per row the terms still accumulate in
    /// ascending term order with the intercept added last — exactly the
    /// association of [`CompiledTree::dot`] — so batch and scalar
    /// predictions are bit-identical.
    fn predict_node(
        &self,
        kernel: &BatchKernel<'_>,
        id: usize,
        pairs: &mut [u64],
        scratch: &mut [u64],
        acc: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        if pairs.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let slot = s as usize;
            let range = self.term_start[slot] as usize..self.term_start[slot + 1] as usize;
            acc.clear();
            acc.resize(pairs.len(), 0.0);
            for t in &kernel.terms[range] {
                for (a, &p) in acc.iter_mut().zip(pairs.iter()) {
                    *a += t.coef * t.col[(p >> 32) as usize];
                }
            }
            let intercept = self.intercept[slot];
            for (&p, &a) in pairs.iter().zip(acc.iter()) {
                out[p as u32 as usize] = intercept + a;
            }
            return;
        }
        let nl = Self::partition(&kernel.nodes[id], pairs, scratch);
        // The buffers swap roles below, so the new row lists must be
        // sized exactly — scratch can be oversized on a partial block.
        let (sl, sr) = scratch[..pairs.len()].split_at_mut(nl);
        let (pl, pr) = pairs.split_at_mut(nl);
        self.predict_node(kernel, self.children[2 * id] as usize, sl, pl, acc, out);
        self.predict_node(kernel, self.children[2 * id + 1] as usize, sr, pr, acc, out);
    }

    /// Partition-descends `pairs` from node `id` and writes each row's
    /// 1-based linear-model number to `out[out_pos]`.
    fn classify_node(
        &self,
        kernel: &BatchKernel<'_>,
        id: usize,
        pairs: &mut [u64],
        scratch: &mut [u64],
        out: &mut [u32],
    ) {
        if pairs.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let lm = self.lm_index[s as usize];
            for &p in pairs.iter() {
                out[p as u32 as usize] = lm;
            }
            return;
        }
        let nl = Self::partition(&kernel.nodes[id], pairs, scratch);
        let (sl, sr) = scratch[..pairs.len()].split_at_mut(nl);
        let (pl, pr) = pairs.split_at_mut(nl);
        self.classify_node(kernel, self.children[2 * id] as usize, sl, pl, out);
        self.classify_node(kernel, self.children[2 * id + 1] as usize, sr, pr, out);
    }

    /// Evaluates the folded model of `leaf_slot`. Terms are accumulated
    /// first and the intercept added last — the same association as
    /// [`LinearModel::predict`], so an unsmoothed compiled prediction is
    /// bit-identical to the interpreted leaf-model evaluation.
    #[inline]
    fn dot(&self, leaf_slot: usize, lookup: impl Fn(usize) -> f64) -> f64 {
        let range = self.term_start[leaf_slot] as usize..self.term_start[leaf_slot + 1] as usize;
        let coefs = &self.term_coef[range.clone()];
        let feats = &self.term_feature[range];
        let mut acc = 0.0;
        for (&c, &f) in coefs.iter().zip(feats) {
            acc += c * lookup(f as usize);
        }
        self.intercept[leaf_slot] + acc
    }

    /// [`CompiledTree::dot`] in quantized `f32` arithmetic — the same
    /// association as the batch `f32` kernel's per-row accumulation, so
    /// scalar and batch quantized predictions are bit-identical.
    #[inline]
    fn dot32(&self, q: &Quantized, leaf_slot: usize, lookup: impl Fn(usize) -> f32) -> f64 {
        let range = self.term_start[leaf_slot] as usize..self.term_start[leaf_slot + 1] as usize;
        let coefs = &q.term_coef[range.clone()];
        let feats = &self.term_feature[range];
        let mut acc = 0.0f32;
        for (&c, &f) in coefs.iter().zip(feats) {
            acc += c * lookup(f as usize);
        }
        f64::from(q.intercept[leaf_slot] + acc)
    }

    /// Predicts CPI for one sample (smoothing already folded in).
    pub fn predict(&self, sample: &Sample) -> f64 {
        let densities = sample.densities();
        if let Some(q) = &self.quantized {
            let leaf = self.descend32(q, |f| densities[f] as f32);
            return self.dot32(q, leaf, |f| densities[f] as f32);
        }
        let leaf = self.descend(|f| densities[f]);
        self.dot(leaf, |f| densities[f])
    }

    /// The 1-based linear-model number the sample classifies into
    /// (under the engine's precision — a quantized engine descends its
    /// `f32` thresholds, consistent with its predictions).
    pub fn classify(&self, sample: &Sample) -> usize {
        let densities = sample.densities();
        let slot = if let Some(q) = &self.quantized {
            self.descend32(q, |f| densities[f] as f32)
        } else {
            self.descend(|f| densities[f])
        };
        self.lm_index[slot] as usize
    }

    /// Predicts CPI for every sample of a dataset by partitioning row
    /// lists through the tree over the dataset's columnar cache.
    ///
    /// With a thread budget above 1 the rows are split into contiguous
    /// chunks processed on scoped worker threads; each element is a
    /// pure function of its sample, so the output is **bit-identical**
    /// for every thread count — and, on the default f64 path, for SIMD
    /// on and off.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        let _span = obskit::span("engine", "engine.predict_batch");
        self.count_batch(data.len(), obskit::metrics::Metric::EngineRowsPredicted);
        let store = data.columns();
        let mut out = vec![0.0; data.len()];
        if let Some(q) = &self.quantized {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk_f32(q, &kernel, slice, Rows::Range { start });
            });
        } else if self.simd_active() {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk_simd(&kernel, slice, Rows::Range { start });
            });
        } else {
            let kernel = BatchKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk(&kernel, slice, |j| start + j);
            });
        }
        out
    }

    /// Predicts CPI for the selected rows of a dataset (`indices` are
    /// row numbers into `data`), in `indices` order. Used by
    /// cross-validation to evaluate folds without materializing fold
    /// datasets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn predict_indices(&self, data: &Dataset, indices: &[u32]) -> Vec<f64> {
        let _span = obskit::span("engine", "engine.predict_indices");
        self.count_batch(indices.len(), obskit::metrics::Metric::EngineRowsPredicted);
        let store = data.columns();
        let mut out = vec![0.0; indices.len()];
        if let Some(q) = &self.quantized {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk_f32(q, &kernel, slice, Rows::Indices(&indices[start..]));
            });
        } else if self.simd_active() {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk_simd(&kernel, slice, Rows::Indices(&indices[start..]));
            });
        } else {
            let kernel = BatchKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.predict_chunk(&kernel, slice, |j| indices[start + j] as usize);
            });
        }
        out
    }

    /// Classifies every sample of a dataset into its 1-based
    /// linear-model number — the batch form of [`CompiledTree::classify`]
    /// behind the paper's Table II/IV profiles.
    pub fn classify_batch(&self, data: &Dataset) -> Vec<u32> {
        let _span = obskit::span("engine", "engine.classify_batch");
        self.count_batch(data.len(), obskit::metrics::Metric::EngineRowsClassified);
        let store = data.columns();
        let mut out = vec![0u32; data.len()];
        if let Some(q) = &self.quantized {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.classify_chunk_f32(q, &kernel, slice, Rows::Range { start });
            });
        } else if self.simd_active() {
            let kernel = SimdKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                self.classify_chunk_simd(&kernel, slice, Rows::Range { start });
            });
        } else {
            let kernel = BatchKernel::new(self, store);
            self.for_each_chunk(&mut out, |slice, start| {
                let mut pairs = Vec::with_capacity(BLOCK.min(slice.len()));
                let mut scratch = vec![0u64; BLOCK.min(slice.len())];
                for (b, block) in slice.chunks_mut(BLOCK).enumerate() {
                    Self::pack_rows(&mut pairs, block.len(), |j| start + b * BLOCK + j);
                    self.classify_node(&kernel, 0, &mut pairs, &mut scratch, block);
                }
            });
        }
        out
    }

    /// Packed partition entries for one block: the dataset row in the
    /// high half (what the split tests and folded terms gather), the
    /// block-local output position in the low half (where the result
    /// lands, preserving `row_of` order).
    fn pack_rows(pairs: &mut Vec<u64>, len: usize, row_of: impl Fn(usize) -> usize) {
        pairs.clear();
        pairs.extend((0..len).map(|j| (row_of(j) as u64) << 32 | j as u64));
    }

    /// Fills `out` with predictions for the rows `row_of(0..out.len())`,
    /// one partition descent per [`BLOCK`]-sized stretch.
    fn predict_chunk(
        &self,
        kernel: &BatchKernel<'_>,
        out: &mut [f64],
        row_of: impl Fn(usize) -> usize,
    ) {
        let mut pairs = Vec::with_capacity(BLOCK.min(out.len()));
        let mut scratch = vec![0u64; BLOCK.min(out.len())];
        let mut acc = Vec::with_capacity(BLOCK.min(out.len()));
        for (b, block) in out.chunks_mut(BLOCK).enumerate() {
            Self::pack_rows(&mut pairs, block.len(), |j| row_of(b * BLOCK + j));
            self.predict_node(kernel, 0, &mut pairs, &mut scratch, &mut acc, block);
        }
    }

    /// The SIMD kernels' cache-block row count: the per-engine override
    /// if set, otherwise [`simd::block_rows`] sized to this tree's used
    /// columns (`bytes_per_value` is 8 for the f64 kernel, 4 for f32).
    fn effective_block_rows(&self, n_used: usize, bytes_per_value: usize) -> usize {
        self.block_rows.unwrap_or_else(|| {
            // Per row: the used column windows, two u32 index buffers,
            // the accumulator, and the output element.
            simd::block_rows(n_used * bytes_per_value + 24)
        })
    }

    /// Vectorized [`CompiledTree::predict_chunk`]: rows in cache-sized
    /// blocks, block-local `u32` row lists, lane-mask partitions, and
    /// four-lane unfused FMA at the leaves. Bit-identical to the scalar
    /// kernel (see the module docs).
    fn predict_chunk_simd(&self, kernel: &SimdKernel<'_>, out: &mut [f64], rows: Rows<'_>) {
        if out.is_empty() {
            return;
        }
        let cap = self
            .effective_block_rows(kernel.used.len(), 8)
            .min(out.len());
        let mut idx: Vec<u32> = Vec::with_capacity(cap);
        let mut scratch = vec![0u32; cap];
        let mut acc: Vec<f64> = Vec::with_capacity(cap);
        // Gathered structure-of-arrays scratch, only needed when the
        // rows are arbitrary indices; contiguous ranges borrow the
        // columns directly.
        let mut gathered: Vec<f64> = match rows {
            Rows::Range { .. } => Vec::new(),
            Rows::Indices(_) => vec![0.0; kernel.used.len() * cap],
        };
        for (b, block) in out.chunks_mut(cap).enumerate() {
            let b0 = b * cap;
            let len = block.len();
            idx.clear();
            idx.extend(0..len as u32);
            let views = block_views(&kernel.used, rows, b0, len, cap, &mut gathered);
            self.predict_node_simd(kernel, &views, 0, &mut idx, &mut scratch, &mut acc, block);
        }
    }

    /// Recursive partition descent of the f64 SIMD kernel over
    /// block-local `u32` row lists. `views` holds this block's window
    /// of every used column, so `views[slot][i]` is row `i`'s value and
    /// `out[i]` its output cell — one index serves gather and store.
    #[allow(clippy::too_many_arguments)]
    fn predict_node_simd(
        &self,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        id: usize,
        idx: &mut [u32],
        scratch: &mut [u32],
        acc: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        if idx.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            self.eval_leaf_simd(kernel, views, s as usize, idx, acc, out);
            return;
        }
        let col = views[kernel.plan.node_slot[id] as usize];
        let nl = partition_lanes_f64(col, self.threshold[id], idx, scratch);
        let (sl, sr) = scratch[..idx.len()].split_at_mut(nl);
        let (il, ir) = idx.split_at_mut(nl);
        self.predict_node_simd(
            kernel,
            views,
            self.children[2 * id] as usize,
            sl,
            il,
            acc,
            out,
        );
        self.predict_node_simd(
            kernel,
            views,
            self.children[2 * id + 1] as usize,
            sr,
            ir,
            acc,
            out,
        );
    }

    /// Term-major vectorized evaluation of one leaf's folded model over
    /// its block-local row list. Per row the association is exactly the
    /// scalar kernel's — terms ascending, each product rounded before
    /// its add (unfused), intercept last — so results are bit-identical
    /// to [`CompiledTree::dot`].
    fn eval_leaf_simd(
        &self,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        slot: usize,
        idx: &[u32],
        acc: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        let (start, end) = (
            self.term_start[slot] as usize,
            self.term_start[slot + 1] as usize,
        );
        let m = idx.len();
        let lanes = m - m % F64x4::LANES;
        acc.clear();
        acc.resize(m, 0.0);
        let intercept = self.intercept[slot];
        if start == end {
            for &i in idx {
                out[i as usize] = intercept;
            }
        }
        // Sweep up to four terms per pass over the rows so each
        // accumulator load/store and index conversion pays for several
        // gather-FMAs instead of one. The final sweep folds the
        // intercept add and output scatter in, sparing the accumulator
        // a last round-trip through memory.
        let mut t = start;
        while t < end {
            let k = (end - t).min(4);
            let last = (t + k == end).then_some((intercept, &mut *out));
            match k {
                1 => self.sweep_terms_f64::<1>(kernel, views, t, idx, acc, lanes, last),
                2 => self.sweep_terms_f64::<2>(kernel, views, t, idx, acc, lanes, last),
                3 => self.sweep_terms_f64::<3>(kernel, views, t, idx, acc, lanes, last),
                _ => self.sweep_terms_f64::<4>(kernel, views, t, idx, acc, lanes, last),
            }
            t += k;
        }
        obskit::metrics::add(obskit::metrics::Metric::EngineSimdRows, lanes as u64);
        obskit::metrics::add(
            obskit::metrics::Metric::EngineScalarTailRows,
            (m - lanes) as u64,
        );
    }

    /// One pass over a leaf's rows applying `K` consecutive terms. Per
    /// row the `K` products join the accumulator in ascending-term
    /// order, each rounded before its add (unfused [`F64x4::mul_add`])
    /// — exactly the scalar chain's association — so the unroll changes
    /// nothing bitwise. When `finish` carries the leaf's intercept the
    /// sweep is the model's last: instead of storing the accumulator it
    /// writes `intercept + acc` straight to the output rows, the same
    /// final add the scalar [`CompiledTree::dot`] performs.
    #[allow(clippy::too_many_arguments)]
    fn sweep_terms_f64<const K: usize>(
        &self,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        t0: usize,
        idx: &[u32],
        acc: &mut [f64],
        lanes: usize,
        finish: Option<(f64, &mut [f64])>,
    ) {
        let cols: [&[f64]; K] =
            std::array::from_fn(|k| views[kernel.plan.term_slot[t0 + k] as usize]);
        let coefs: [f64; K] = std::array::from_fn(|k| self.term_coef[t0 + k]);
        let splats: [F64x4; K] = std::array::from_fn(|k| F64x4::splat(coefs[k]));
        if let Some((intercept, out)) = finish {
            let b4 = F64x4::splat(intercept);
            let mut j = 0;
            while j < lanes {
                let g: [u32; 4] = idx[j..j + 4].try_into().expect("full lane");
                let mut a = F64x4::from_slice(&acc[j..]);
                for k in 0..K {
                    a = F64x4::gather(cols[k], &g).mul_add(splats[k], a);
                }
                let mut r = [0.0; 4];
                b4.add(a).write_to(&mut r);
                for k in 0..4 {
                    out[g[k] as usize] = r[k];
                }
                j += 4;
            }
            for (&i, a) in idx[lanes..].iter().zip(&mut acc[lanes..]) {
                for k in 0..K {
                    *a += coefs[k] * cols[k][i as usize];
                }
                out[i as usize] = intercept + *a;
            }
        } else {
            let mut j = 0;
            while j < lanes {
                let g: [u32; 4] = idx[j..j + 4].try_into().expect("full lane");
                let mut a = F64x4::from_slice(&acc[j..]);
                for k in 0..K {
                    a = F64x4::gather(cols[k], &g).mul_add(splats[k], a);
                }
                a.write_to(&mut acc[j..]);
                j += 4;
            }
            for (&i, a) in idx[lanes..].iter().zip(&mut acc[lanes..]) {
                for k in 0..K {
                    *a += coefs[k] * cols[k][i as usize];
                }
            }
        }
    }

    /// Vectorized classify: same lane-mask partition descent as
    /// [`CompiledTree::predict_chunk_simd`], leaf writes the model
    /// number.
    fn classify_chunk_simd(&self, kernel: &SimdKernel<'_>, out: &mut [u32], rows: Rows<'_>) {
        if out.is_empty() {
            return;
        }
        let cap = self
            .effective_block_rows(kernel.used.len(), 8)
            .min(out.len());
        let mut idx: Vec<u32> = Vec::with_capacity(cap);
        let mut scratch = vec![0u32; cap];
        // Classify is only entered with contiguous ranges, so the
        // gather buffer stays empty.
        let mut gathered: Vec<f64> = Vec::new();
        for (b, block) in out.chunks_mut(cap).enumerate() {
            let b0 = b * cap;
            let len = block.len();
            idx.clear();
            idx.extend(0..len as u32);
            let views = block_views(&kernel.used, rows, b0, len, cap, &mut gathered);
            self.classify_node_simd(kernel, &views, 0, &mut idx, &mut scratch, block);
        }
    }

    /// Recursive descent of the vectorized classifier.
    fn classify_node_simd(
        &self,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        id: usize,
        idx: &mut [u32],
        scratch: &mut [u32],
        out: &mut [u32],
    ) {
        if idx.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let lm = self.lm_index[s as usize];
            for &i in idx.iter() {
                out[i as usize] = lm;
            }
            let lanes = idx.len() - idx.len() % 8;
            obskit::metrics::add(obskit::metrics::Metric::EngineSimdRows, lanes as u64);
            obskit::metrics::add(
                obskit::metrics::Metric::EngineScalarTailRows,
                (idx.len() - lanes) as u64,
            );
            return;
        }
        let col = views[kernel.plan.node_slot[id] as usize];
        let nl = partition_lanes_f64(col, self.threshold[id], idx, scratch);
        let (sl, sr) = scratch[..idx.len()].split_at_mut(nl);
        let (il, ir) = idx.split_at_mut(nl);
        self.classify_node_simd(kernel, views, self.children[2 * id] as usize, sl, il, out);
        self.classify_node_simd(
            kernel,
            views,
            self.children[2 * id + 1] as usize,
            sr,
            ir,
            out,
        );
    }

    /// The quantized `f32` fast path. The partition descent runs on the
    /// **original `f64` columns** against the precomputed `f64`-domain
    /// cut points of [`f32_cut_as_f64`] — exactly the comparisons the
    /// scalar [`CompiledTree::descend32`] makes after narrowing, with
    /// no conversion pass over the data — and leaf sweeps narrow
    /// in-register ([`F32x8::gather_narrow`]). Per-row association
    /// matches [`CompiledTree::dot32`] bitwise.
    fn predict_chunk_f32(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        out: &mut [f64],
        rows: Rows<'_>,
    ) {
        if out.is_empty() {
            return;
        }
        let cap = self
            .effective_block_rows(kernel.used.len(), 8)
            .min(out.len());
        let mut idx: Vec<u32> = Vec::with_capacity(cap);
        let mut scratch = vec![0u32; cap];
        let mut acc: Vec<f32> = Vec::with_capacity(cap);
        let mut gathered: Vec<f64> = match rows {
            Rows::Range { .. } => Vec::new(),
            Rows::Indices(_) => vec![0.0; kernel.used.len() * cap],
        };
        for (b, block) in out.chunks_mut(cap).enumerate() {
            let b0 = b * cap;
            let len = block.len();
            idx.clear();
            idx.extend(0..len as u32);
            let views = block_views(&kernel.used, rows, b0, len, cap, &mut gathered);
            self.predict_node_f32(
                q,
                kernel,
                &views,
                0,
                &mut idx,
                &mut scratch,
                &mut acc,
                block,
            );
        }
    }

    /// Recursive partition descent of the `f32` kernel over the
    /// original `f64` columns.
    #[allow(clippy::too_many_arguments)]
    fn predict_node_f32(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        id: usize,
        idx: &mut [u32],
        scratch: &mut [u32],
        acc: &mut Vec<f32>,
        out: &mut [f64],
    ) {
        if idx.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            self.eval_leaf_f32(q, kernel, views, s as usize, idx, acc, out);
            return;
        }
        let col = views[kernel.plan.node_slot[id] as usize];
        let nl = partition_lanes_f64(col, q.threshold64[id], idx, scratch);
        let (sl, sr) = scratch[..idx.len()].split_at_mut(nl);
        let (il, ir) = idx.split_at_mut(nl);
        self.predict_node_f32(
            q,
            kernel,
            views,
            self.children[2 * id] as usize,
            sl,
            il,
            acc,
            out,
        );
        self.predict_node_f32(
            q,
            kernel,
            views,
            self.children[2 * id + 1] as usize,
            sr,
            ir,
            acc,
            out,
        );
    }

    /// Eight-lane term-major evaluation of one leaf's quantized model,
    /// narrowing each gathered value to `f32` in-register.
    #[allow(clippy::too_many_arguments)]
    fn eval_leaf_f32(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        slot: usize,
        idx: &[u32],
        acc: &mut Vec<f32>,
        out: &mut [f64],
    ) {
        let (start, end) = (
            self.term_start[slot] as usize,
            self.term_start[slot + 1] as usize,
        );
        let m = idx.len();
        let lanes = m - m % F32x8::LANES;
        acc.clear();
        acc.resize(m, 0.0);
        let intercept = q.intercept[slot];
        if start == end {
            for &i in idx {
                out[i as usize] = f64::from(intercept);
            }
        }
        let mut t = start;
        while t < end {
            let k = (end - t).min(4);
            let last = (t + k == end).then_some((intercept, &mut *out));
            match k {
                1 => self.sweep_terms_f32::<1>(q, kernel, views, t, idx, acc, lanes, last),
                2 => self.sweep_terms_f32::<2>(q, kernel, views, t, idx, acc, lanes, last),
                3 => self.sweep_terms_f32::<3>(q, kernel, views, t, idx, acc, lanes, last),
                _ => self.sweep_terms_f32::<4>(q, kernel, views, t, idx, acc, lanes, last),
            }
            t += k;
        }
        obskit::metrics::add(obskit::metrics::Metric::EngineSimdRows, lanes as u64);
        obskit::metrics::add(
            obskit::metrics::Metric::EngineScalarTailRows,
            (m - lanes) as u64,
        );
    }

    /// The `f32` counterpart of [`CompiledTree::sweep_terms_f64`]:
    /// ascending-term single-rounded `f32` adds, matching
    /// [`CompiledTree::dot32`]'s chain per row, with the final sweep
    /// widening `intercept + acc` to `f64` on its way to the output.
    #[allow(clippy::too_many_arguments)]
    fn sweep_terms_f32<const K: usize>(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        t0: usize,
        idx: &[u32],
        acc: &mut [f32],
        lanes: usize,
        finish: Option<(f32, &mut [f64])>,
    ) {
        let cols: [&[f64]; K] =
            std::array::from_fn(|k| views[kernel.plan.term_slot[t0 + k] as usize]);
        let coefs: [f32; K] = std::array::from_fn(|k| q.term_coef[t0 + k]);
        let splats: [F32x8; K] = std::array::from_fn(|k| F32x8::splat(coefs[k]));
        if let Some((intercept, out)) = finish {
            let b8 = F32x8::splat(intercept);
            let mut j = 0;
            while j < lanes {
                let g: [u32; 8] = idx[j..j + 8].try_into().expect("full lane");
                let mut a = F32x8::from_slice(&acc[j..]);
                for k in 0..K {
                    a = F32x8::gather_narrow(cols[k], &g).mul_add(splats[k], a);
                }
                let mut r = [0.0f32; 8];
                b8.add(a).write_to(&mut r);
                for k in 0..8 {
                    out[g[k] as usize] = f64::from(r[k]);
                }
                j += 8;
            }
            for (&i, a) in idx[lanes..].iter().zip(&mut acc[lanes..]) {
                for k in 0..K {
                    *a += coefs[k] * (cols[k][i as usize] as f32);
                }
                out[i as usize] = f64::from(intercept + *a);
            }
        } else {
            let mut j = 0;
            while j < lanes {
                let g: [u32; 8] = idx[j..j + 8].try_into().expect("full lane");
                let mut a = F32x8::from_slice(&acc[j..]);
                for k in 0..K {
                    a = F32x8::gather_narrow(cols[k], &g).mul_add(splats[k], a);
                }
                a.write_to(&mut acc[j..]);
                j += 8;
            }
            for (&i, a) in idx[lanes..].iter().zip(&mut acc[lanes..]) {
                for k in 0..K {
                    *a += coefs[k] * (cols[k][i as usize] as f32);
                }
            }
        }
    }

    /// Quantized classify over whole datasets: the `f64`-domain cut
    /// points steer every row to the leaf its `f32` descent reaches.
    fn classify_chunk_f32(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        out: &mut [u32],
        rows: Rows<'_>,
    ) {
        if out.is_empty() {
            return;
        }
        let cap = self
            .effective_block_rows(kernel.used.len(), 8)
            .min(out.len());
        let mut idx: Vec<u32> = Vec::with_capacity(cap);
        let mut scratch = vec![0u32; cap];
        let mut gathered: Vec<f64> = Vec::new();
        for (b, block) in out.chunks_mut(cap).enumerate() {
            let b0 = b * cap;
            let len = block.len();
            idx.clear();
            idx.extend(0..len as u32);
            let views = block_views(&kernel.used, rows, b0, len, cap, &mut gathered);
            self.classify_node_f32(q, kernel, &views, 0, &mut idx, &mut scratch, block);
        }
    }

    /// Recursive descent of the quantized classifier.
    #[allow(clippy::too_many_arguments)]
    fn classify_node_f32(
        &self,
        q: &Quantized,
        kernel: &SimdKernel<'_>,
        views: &[&[f64]],
        id: usize,
        idx: &mut [u32],
        scratch: &mut [u32],
        out: &mut [u32],
    ) {
        if idx.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let lm = self.lm_index[s as usize];
            for &i in idx.iter() {
                out[i as usize] = lm;
            }
            return;
        }
        let col = views[kernel.plan.node_slot[id] as usize];
        let nl = partition_lanes_f64(col, q.threshold64[id], idx, scratch);
        let (sl, sr) = scratch[..idx.len()].split_at_mut(nl);
        let (il, ir) = idx.split_at_mut(nl);
        self.classify_node_f32(
            q,
            kernel,
            views,
            self.children[2 * id] as usize,
            sl,
            il,
            out,
        );
        self.classify_node_f32(
            q,
            kernel,
            views,
            self.children[2 * id + 1] as usize,
            sr,
            ir,
            out,
        );
    }

    /// Records one batch entry's telemetry: batch and block counts plus
    /// the row-count distribution and rows under `rows_metric`. Outside
    /// the row loops, so per-row cost is untouched.
    fn count_batch(&self, rows: usize, rows_metric: obskit::metrics::Metric) {
        use obskit::metrics::{add, incr, observe, Hist, Metric};
        incr(Metric::EngineBatches);
        add(Metric::EngineBlocks, rows.div_ceil(BLOCK) as u64);
        add(rows_metric, rows as u64);
        observe(Hist::EngineBatchRows, rows as u64);
    }

    /// Runs `body(chunk, chunk_start)` over `out` split into
    /// `n_threads` near-equal contiguous chunks, on scoped workers when
    /// the budget allows. Batches too small to give every worker at
    /// least [`MIN_ROWS_PER_THREAD`] rows shed workers, and a single
    /// worker falls straight through to the caller's thread — the
    /// serial path carries zero dispatch overhead.
    fn for_each_chunk<T: Send>(&self, out: &mut [T], body: impl Fn(&mut [T], usize) + Sync) {
        let threads = self
            .n_threads
            .max(1)
            .min(out.len().div_ceil(MIN_ROWS_PER_THREAD));
        if threads <= 1 {
            body(out, 0);
            return;
        }
        let chunk = out.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in out.chunks_mut(chunk).enumerate() {
                let body = &body;
                scope.spawn(move || body(slice, t * chunk));
            }
        });
    }
}

impl ModelTree {
    /// Compiles this tree into a [`CompiledTree`] batch-inference
    /// engine: flat node arrays plus one smoothing-folded linear model
    /// per leaf. See the [`compiled`](crate::compiled) module docs for
    /// the layout and folding algebra.
    pub fn compile(&self) -> CompiledTree {
        CompiledTree::new(self)
    }
}

/// Quantized `f32` tables of a [`Precision::F32Fast`] engine, aligned
/// with the f64 arrays they shadow, plus the per-leaf error-bound
/// factors derived when the tables are built.
#[derive(Debug, Clone, PartialEq)]
struct Quantized {
    /// Per node: `threshold as f32` — what the scalar `f32` descent
    /// compares against.
    threshold: Vec<f32>,
    /// Per node: the `f64`-domain cut point equivalent to the `f32`
    /// comparison ([`f32_cut_as_f64`]), letting the batch kernel
    /// partition the original `f64` columns directly — no `f32` copy
    /// of the data — while descending to exactly the leaf the scalar
    /// `f32` descent reaches.
    threshold64: Vec<f64>,
    /// Per leaf slot: `intercept as f32`.
    intercept: Vec<f32>,
    /// Per term: `term_coef as f32`.
    term_coef: Vec<f32>,
    /// Per leaf slot: the rounding-error factor `γ_{k+4}` of
    /// [`CompiledTree::f32_error_bound`].
    gamma: Vec<f64>,
}

impl Quantized {
    fn build(tree: &CompiledTree) -> Quantized {
        let u = f64::from(f32::EPSILON);
        let gamma = (0..tree.lm_index.len())
            .map(|slot| {
                let k = (tree.term_start[slot + 1] - tree.term_start[slot]) as f64;
                let mu = (k + 4.0) * u;
                let g = mu / (1.0 - mu);
                // With k ≤ N_EVENTS the factor is a few ULPs of f32 —
                // a violation means the tables are unusable, so check
                // at quantization time rather than per prediction.
                assert!(
                    g.is_finite() && g < 1e-4,
                    "f32 error-bound factor out of range for leaf {slot}: {g}"
                );
                g
            })
            .collect();
        let threshold: Vec<f32> = tree.threshold.iter().map(|&t| t as f32).collect();
        let threshold64 = threshold.iter().map(|&t| f32_cut_as_f64(t)).collect();
        Quantized {
            threshold,
            threshold64,
            intercept: tree.intercept.iter().map(|&b| b as f32).collect(),
            term_coef: tree.term_coef.iter().map(|&c| c as f32).collect(),
            gamma,
        }
    }
}

/// The next `f32` above `t` in `total_cmp` order (bit-increment on the
/// sign-magnitude representation; `t` must be finite).
fn next_up_f32(t: f32) -> f32 {
    let bits = t.to_bits();
    if t == 0.0 {
        f32::from_bits(1) // smallest positive subnormal, for ±0
    } else if bits >> 31 == 0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

/// The next `f64` below `x` (`x` must be finite or `+∞`, not `−∞`).
fn next_down_f64(x: f64) -> f64 {
    if x == f64::INFINITY {
        return f64::MAX;
    }
    let bits = x.to_bits();
    if x == 0.0 {
        f64::from_bits(1 | (1 << 63)) // largest negative subnormal
    } else if bits >> 63 == 0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// The largest `f64` cut point `T` such that for every `f64` value `x`
///
/// ```text
/// (x as f32) <= t   ⟺   x <= T
/// ```
///
/// so the quantized descent's `f32` comparison `x32 > t` is exactly the
/// `f64` comparison `x > T` — the batch kernel never has to narrow the
/// data columns. `T` is the last `f64` that still rounds (to nearest,
/// ties to even) to at most `t`: the midpoint `m` between `t` and the
/// next `f32` up is exactly representable in `f64`, belongs to the
/// left side iff it rounds down (checked by performing the rounding),
/// and everything strictly between `t` and `m` rounds to `t`. NaN
/// behavior matches too: a NaN fails both `>` comparisons.
fn f32_cut_as_f64(t: f32) -> f64 {
    debug_assert!(t.is_finite(), "split thresholds are finite");
    let up = next_up_f32(t);
    if up.is_finite() {
        let mid = 0.5 * (f64::from(t) + f64::from(up));
        if (mid as f32) <= t {
            mid
        } else {
            next_down_f64(mid)
        }
    } else {
        // t = f32::MAX: values from 2^128 − 2^103 upward round to +∞.
        next_down_f64((2.0f64).powi(128) - (2.0f64).powi(103))
    }
}

/// Which rows a chunk covers: a contiguous dataset range (column
/// windows borrow straight from the column store) or an arbitrary index
/// list (columns are gathered per block).
#[derive(Clone, Copy)]
enum Rows<'r> {
    /// Chunk row `j` is dataset row `start + j`.
    Range { start: usize },
    /// Chunk row `j` is dataset row `indices[j]` (already offset to the
    /// chunk).
    Indices(&'r [u32]),
}

/// One block's window of every used column: zero-copy sub-slices of
/// the column store for contiguous ranges, a refreshed gather into
/// `gathered` (stride `cap` per column) for arbitrary index lists. The
/// returned views borrow `gathered`, so it is re-borrowed per block.
fn block_views<'g>(
    used: &[&'g [f64]],
    rows: Rows<'_>,
    b0: usize,
    len: usize,
    cap: usize,
    gathered: &'g mut [f64],
) -> Vec<&'g [f64]> {
    match rows {
        Rows::Range { start } => used
            .iter()
            .map(|&col| &col[start + b0..start + b0 + len])
            .collect(),
        Rows::Indices(indices) => {
            let sel = &indices[b0..b0 + len];
            for (u, &col) in used.iter().enumerate() {
                let dst = &mut gathered[u * cap..u * cap + len];
                for (d, &i) in dst.iter_mut().zip(sel) {
                    *d = col[i as usize];
                }
            }
            let gathered: &'g [f64] = gathered;
            (0..used.len())
                .map(|u| &gathered[u * cap..u * cap + len])
                .collect()
        }
    }
}

/// Lane-mask partition of `idx` by `col[i] > threshold`, written into
/// `scratch` exactly like [`CompiledTree::partition`] (left prefix in
/// order, right suffix reversed; returns the left count). The
/// comparisons run lane-width — eight rows gather into two [`F64x4`]s
/// and emit one eight-wide mask — and only the cursor advance is
/// scalar, which is branchless either way.
#[inline]
fn partition_lanes_f64(col: &[f64], threshold: f64, idx: &[u32], scratch: &mut [u32]) -> usize {
    let n = idx.len();
    let scratch = &mut scratch[..n];
    let mut l = 0usize;
    let mut r = n;
    let t4 = F64x4::splat(threshold);
    let mut chunks = idx.chunks_exact(8);
    for ch in &mut chunks {
        let lo: [u32; 4] = ch[..4].try_into().expect("full lane");
        let hi: [u32; 4] = ch[4..].try_into().expect("full lane");
        let ma = F64x4::gather(col, &lo).gt(t4);
        let mb = F64x4::gather(col, &hi).gt(t4);
        let mut mask = [false; 8];
        mask[..4].copy_from_slice(&ma);
        mask[4..].copy_from_slice(&mb);
        for (k, &i) in ch.iter().enumerate() {
            scratch[l] = i;
            scratch[r - 1] = i;
            let go = usize::from(mask[k]);
            l += 1 - go;
            r -= go;
        }
    }
    for &i in chunks.remainder() {
        let go = usize::from(col[i as usize] > threshold);
        scratch[l] = i;
        scratch[r - 1] = i;
        l += 1 - go;
        r -= go;
    }
    l
}

/// One node's split data in the shape the kernels want: the tested
/// column already resolved to a slice, plus the threshold. The
/// partitioner hoists both out of its row sweep.
#[derive(Clone, Copy)]
struct KernelNode<'a> {
    /// The tested attribute's column (leaves point at column 0, whose
    /// lookup result never affects the descent).
    col: &'a [f64],
    threshold: f64,
}

/// One folded-model term: coefficient and its resolved column.
#[derive(Clone, Copy)]
struct KernelTerm<'a> {
    col: &'a [f64],
    coef: f64,
}

/// Per-call inference kernel: the tree's nodes and folded terms
/// re-resolved against one dataset's borrowed event columns, so the hot
/// loops index straight into column slices instead of going
/// `feature id → column table → column`. Building it is linear in the
/// tree size — trivial next to any batch — and keeps the serialized
/// [`CompiledTree`] free of borrowed data.
struct BatchKernel<'a> {
    nodes: Vec<KernelNode<'a>>,
    /// Aligned with the tree's flattened term arrays: leaf `l` owns
    /// `term_start[l] .. term_start[l + 1]`.
    terms: Vec<KernelTerm<'a>>,
}

impl<'a> BatchKernel<'a> {
    fn new(tree: &CompiledTree, store: &'a ColumnStore) -> BatchKernel<'a> {
        let events: Vec<&[f64]> = EventId::ALL.iter().map(|&e| store.event(e)).collect();
        BatchKernel {
            nodes: (0..tree.n_nodes())
                .map(|n| KernelNode {
                    col: events[tree.feature[n] as usize],
                    threshold: tree.threshold[n],
                })
                .collect(),
            terms: tree
                .term_feature
                .iter()
                .zip(&tree.term_coef)
                .map(|(&f, &coef)| KernelTerm {
                    col: events[f as usize],
                    coef,
                })
                .collect(),
        }
    }
}

/// The data-independent half of the SIMD kernel: which columns the tree
/// actually touches (typically far fewer than `N_EVENTS`), deduplicated,
/// with every node and folded term resolved to an index into that small
/// set. The plan depends only on the immutable compiled tree, so it is
/// built once per engine and cached ([`CompiledTree::with_plan_caching`]);
/// a per-call [`SimdKernel`] then only borrows one dataset's slices for
/// the planned events.
#[derive(Debug)]
struct KernelPlan {
    /// Deduplicated events touched by any split test or folded term, in
    /// first-touch order.
    used_events: Vec<EventId>,
    /// Per node: index into `used_events` of the tested column (0 for
    /// leaves; never read there).
    node_slot: Vec<u32>,
    /// Per folded term: index into `used_events`.
    term_slot: Vec<u32>,
}

impl KernelPlan {
    fn build(tree: &CompiledTree) -> KernelPlan {
        let mut index_of = [u32::MAX; N_EVENTS];
        let mut used_events: Vec<EventId> = Vec::new();
        let mut resolve = |feature: u32, used: &mut Vec<EventId>| {
            let f = feature as usize;
            if index_of[f] == u32::MAX {
                index_of[f] = used.len() as u32;
                let event = EventId::from_index(f).expect("compiled features are valid events");
                used.push(event);
            }
            index_of[f]
        };
        let node_slot = (0..tree.n_nodes())
            .map(|n| {
                if tree.slot[n] == SPLIT {
                    resolve(tree.feature[n], &mut used_events)
                } else {
                    0
                }
            })
            .collect();
        let term_slot = tree
            .term_feature
            .iter()
            .map(|&f| resolve(f, &mut used_events))
            .collect();
        KernelPlan {
            used_events,
            node_slot,
            term_slot,
        }
    }
}

/// The cached [`KernelPlan`] slot on a [`CompiledTree`]. Derived data:
/// clones share the already-built plan (an `Arc` bump), equality ignores
/// it, and serde skips it entirely.
#[derive(Debug, Default)]
struct PlanCell(OnceLock<Arc<KernelPlan>>);

impl Clone for PlanCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(plan) = self.0.get() {
            let _ = cell.set(Arc::clone(plan));
        }
        PlanCell(cell)
    }
}

impl PartialEq for PlanCell {
    fn eq(&self, _: &Self) -> bool {
        true // cache state is not part of an engine's identity
    }
}

/// The SIMD kernels' per-call view of a tree over one dataset: the
/// cached [`KernelPlan`] plus the dataset's borrowed column slices for
/// the planned events. Blocks then materialize one window per used
/// column and the descent indexes `views[slot]` directly. Building it is
/// `O(used columns)` — trivial even for single-row batches.
struct SimdKernel<'a> {
    /// Column slices for [`KernelPlan::used_events`], same order.
    used: Vec<&'a [f64]>,
    plan: Arc<KernelPlan>,
}

impl<'a> SimdKernel<'a> {
    fn new(tree: &CompiledTree, store: &'a ColumnStore) -> SimdKernel<'a> {
        let plan = tree.kernel_plan();
        let used = plan.used_events.iter().map(|&e| store.event(e)).collect();
        SimdKernel { used, plan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::M5Config;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn regime_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let load = rng.gen::<f64>() * 0.4;
            let l2 = rng.gen::<f64>() * 1e-3;
            let cpi = if dtlb <= 2e-4 {
                0.6 + 500.0 * dtlb + 2.0 * load
            } else {
                1.0 + 1200.0 * l2
            };
            let mut s = Sample::zeros(cpi + 0.01 * rng.gen::<f64>());
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, load);
            s.set(EventId::L2Miss, l2);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn compiled_matches_interpreted_smoothed() {
        let ds = regime_dataset(2000, 1);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        assert_eq!(engine.n_nodes(), tree.n_nodes());
        assert_eq!(engine.n_leaves(), tree.n_leaves());
        for i in 0..ds.len() {
            let s = ds.sample(i);
            let a = tree.predict(s);
            let b = engine.predict(s);
            assert!((a - b).abs() < 1e-10, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn compiled_matches_interpreted_unsmoothed() {
        let ds = regime_dataset(1500, 2);
        let tree = ModelTree::fit(&ds, &M5Config::default().with_smoothing(false)).unwrap();
        let engine = tree.compile();
        for i in 0..ds.len() {
            let s = ds.sample(i);
            // Without smoothing the folded model IS the leaf model:
            // identical arithmetic, hence identical bits.
            assert_eq!(tree.predict(s).to_bits(), engine.predict(s).to_bits());
        }
    }

    #[test]
    fn classify_matches_interpreted() {
        let ds = regime_dataset(1200, 3);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let batch = engine.classify_batch(&ds);
        for (i, &lm) in batch.iter().enumerate() {
            let s = ds.sample(i);
            assert_eq!(engine.classify(s), tree.classify(s));
            assert_eq!(lm as usize, tree.classify(s));
        }
    }

    #[test]
    fn batch_matches_per_sample_bitwise() {
        let ds = regime_dataset(999, 4);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let batch = engine.predict_batch(&ds);
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p.to_bits(), engine.predict(ds.sample(i)).to_bits());
        }
    }

    #[test]
    fn batch_bit_identical_across_thread_counts() {
        let ds = regime_dataset(2500, 5);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let serial = tree.compile().with_n_threads(1).predict_batch(&ds);
        for threads in [2, 3, 8] {
            let parallel = tree.compile().with_n_threads(threads).predict_batch(&ds);
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "thread count {threads}, row {i}");
            }
        }
    }

    #[test]
    fn simd_batch_bit_identical_to_scalar_batch() {
        // The tentpole determinism contract: the SIMD kernel is not an
        // approximation — predict, predict_indices, and classify agree
        // with the scalar oracle kernel bit for bit, across awkward
        // lengths that exercise lane tails.
        for n in [1usize, 2, 3, 5, 7, 9, 63, 64, 65, 999, 4097] {
            let ds = regime_dataset(n, 40 + n as u64);
            let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
            let scalar = tree.compile().with_simd(false);
            let simd = tree.compile().with_simd(true);
            let a = scalar.predict_batch(&ds);
            let b = simd.predict_batch(&ds);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n} row {i}");
            }
            assert_eq!(
                scalar.classify_batch(&ds),
                simd.classify_batch(&ds),
                "n={n}"
            );
            let indices: Vec<u32> = (0..ds.len() as u32).rev().step_by(3).collect();
            let ai = scalar.predict_indices(&ds, &indices);
            let bi = simd.predict_indices(&ds, &indices);
            for (i, (x, y)) in ai.iter().zip(&bi).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n} index row {i}");
            }
        }
    }

    #[test]
    fn simd_block_sizes_do_not_change_results() {
        // Tiny, odd, and huge blocks (empty trailing blocks, single-row
        // blocks, one-block batches) all partition identically.
        let ds = regime_dataset(1000, 41);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let baseline = tree.compile().with_simd(true).predict_batch(&ds);
        for rows in [1usize, 3, 8, 10, 100, 999, 1000, 1 << 16] {
            let engine = tree.compile().with_simd(true).with_block_rows(rows);
            let got = engine.predict_batch(&ds);
            for (i, (x, y)) in baseline.iter().zip(&got).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "block_rows={rows} row {i}");
            }
        }
    }

    #[test]
    fn f32_fast_path_predicts_within_published_bound() {
        let ds = regime_dataset(3000, 42);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let exact = tree.compile();
        let fast = tree.compile().with_precision(Precision::F32Fast);
        assert_eq!(fast.precision(), Precision::F32Fast);
        assert_eq!(exact.precision(), Precision::F64);
        let p64 = exact.predict_batch(&ds);
        let p32 = fast.predict_batch(&ds);
        let mut checked = 0usize;
        for i in 0..ds.len() {
            let s = ds.sample(i);
            // The analytic bound covers samples that descend to the
            // same leaf; threshold-proximal rows may legitimately land
            // in an adjacent leaf (none do on this dataset's scale).
            if exact.classify(s) == fast.classify(s) {
                let bound = fast.f32_error_bound(s).unwrap();
                let err = (p64[i] - p32[i]).abs();
                assert!(err <= bound, "row {i}: err {err} > bound {bound}");
                checked += 1;
            }
        }
        assert!(
            checked > ds.len() * 9 / 10,
            "only {checked} rows comparable"
        );
        assert!(exact.f32_error_bound(ds.sample(0)).is_none());
    }

    #[test]
    fn f32_batch_matches_f32_scalar_bitwise() {
        let ds = regime_dataset(777, 43);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let fast = tree.compile().with_precision(Precision::F32Fast);
        let batch = fast.predict_batch(&ds);
        let classes = fast.classify_batch(&ds);
        for i in 0..ds.len() {
            let s = ds.sample(i);
            assert_eq!(batch[i].to_bits(), fast.predict(s).to_bits(), "row {i}");
            assert_eq!(classes[i] as usize, fast.classify(s), "row {i}");
        }
        let indices: Vec<u32> = (0..ds.len() as u32).step_by(5).collect();
        let sel = fast.predict_indices(&ds, &indices);
        for (j, &i) in indices.iter().enumerate() {
            assert_eq!(sel[j].to_bits(), batch[i as usize].to_bits());
        }
        // Round-tripping back to f64 drops the tables again.
        let back = fast.with_precision(Precision::F64);
        assert_eq!(back.precision(), Precision::F64);
        assert_eq!(
            back.predict_batch(&ds)[0].to_bits(),
            tree.compile().predict_batch(&ds)[0].to_bits()
        );
    }

    #[test]
    fn predict_indices_selects_rows() {
        let ds = regime_dataset(500, 6);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let indices: Vec<u32> = (0..ds.len() as u32).rev().step_by(7).collect();
        let subset = engine.predict_indices(&ds, &indices);
        assert_eq!(subset.len(), indices.len());
        for (j, &i) in indices.iter().enumerate() {
            assert_eq!(
                subset[j].to_bits(),
                engine.predict(ds.sample(i as usize)).to_bits()
            );
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let ds = regime_dataset(5, 7);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        let engine = tree.compile();
        assert_eq!(engine.n_nodes(), 1);
        let s = ds.sample(0);
        assert_eq!(engine.predict(s).to_bits(), tree.predict(s).to_bits());
        assert_eq!(engine.classify(s), 1);
        // The SIMD kernels handle a splitless tree (no used columns)
        // and a single-row dataset.
        let simd = tree.compile().with_simd(true);
        assert_eq!(
            simd.predict_batch(&ds)[0].to_bits(),
            engine.with_simd(false).predict_batch(&ds)[0].to_bits()
        );
        let fast = tree.compile().with_precision(Precision::F32Fast);
        assert_eq!(fast.predict_batch(&ds).len(), ds.len());
    }

    #[test]
    fn folded_model_weights_sum_to_one() {
        // On a constant-CPI dataset every node model predicts the same
        // constant, so any convex combination must too: the folded
        // intercepts all equal the constant and the terms vanish.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..400 {
            let mut s = Sample::zeros(1.5);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        for lm in 1..=engine.n_leaves() {
            let model = engine.folded_model(lm).unwrap();
            assert!((model.intercept() - 1.5).abs() < 1e-9, "{model}");
        }
        assert!(engine.folded_model(0).is_none());
        assert!(engine.folded_model(engine.n_leaves() + 1).is_none());
    }

    #[test]
    fn folded_model_matches_predictions() {
        let ds = regime_dataset(1500, 9);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        for i in (0..ds.len()).step_by(97) {
            let s = ds.sample(i);
            let lm = engine.classify(s);
            let model = engine.folded_model(lm).unwrap();
            assert!((model.predict(s) - engine.predict(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let ds = regime_dataset(600, 10);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let json = serde_json::to_string(&engine).unwrap();
        let back: CompiledTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, engine);
        // Execution hints and quantized tables are derived data and do
        // not survive serialization; re-applying with_precision after a
        // load rebuilds identical tables.
        let fast = engine.clone().with_precision(Precision::F32Fast);
        let rebuilt = serde_json::from_str::<CompiledTree>(&serde_json::to_string(&fast).unwrap())
            .unwrap()
            .with_precision(Precision::F32Fast);
        assert_eq!(rebuilt, fast);
    }

    #[test]
    fn f32_cut_matches_narrowed_comparison() {
        let next_up_f64 = |x: f64| f64::from_bits(x.to_bits() + 1);
        // xorshift64 for reproducible probe values without rand setup.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut thresholds = vec![
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            1.5,
            0.1,
            2e-4,
            f32::MAX,
            -f32::MAX,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest subnormal
        ];
        for _ in 0..500 {
            let t = f32::from_bits((next() as u32) & 0x7fff_ffff);
            if t.is_finite() {
                thresholds.push(t);
                thresholds.push(-t);
            }
        }
        for &t in &thresholds {
            let cut = f32_cut_as_f64(t);
            // The boundary itself, its immediate f64 neighbors, the
            // threshold, and random wider probes must all agree:
            // (x as f32) > t  ⟺  x > cut.
            let mut probes = vec![
                cut,
                next_up_f64(cut),
                next_down_f64(cut),
                f64::from(t),
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            for _ in 0..64 {
                let x = f64::from_bits(next());
                if !x.is_nan() {
                    probes.push(x);
                }
            }
            for x in probes {
                assert_eq!(
                    (x as f32) > t,
                    x > cut,
                    "t={t:?} ({:#010x}) cut={cut:?} x={x:?} ({:#018x})",
                    t.to_bits(),
                    x.to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_dataset_batch() {
        let ds = regime_dataset(50, 11);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        assert!(engine.predict_batch(&Dataset::new()).is_empty());
        assert!(engine.predict_indices(&ds, &[]).is_empty());
        assert!(engine.classify_batch(&Dataset::new()).is_empty());
        let fast = tree.compile().with_precision(Precision::F32Fast);
        assert!(fast.predict_batch(&Dataset::new()).is_empty());
        assert!(fast.predict_indices(&ds, &[]).is_empty());
    }

    #[test]
    fn plan_caching_is_bit_identical_and_sticky() {
        let ds = regime_dataset(800, 12);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let cached = tree.compile().with_simd(true);
        let uncached = tree.compile().with_simd(true).with_plan_caching(false);
        assert!(cached.plan_caching());
        assert!(!uncached.plan_caching());

        // Repeated small batches (the serve coalescer's shape) must be
        // bit-identical with the plan cached, uncached, and across
        // repeated calls of the same engine.
        let reference = cached.predict_batch(&ds);
        for _ in 0..3 {
            let a = cached.predict_batch(&ds);
            let b = uncached.predict_batch(&ds);
            for ((r, x), y) in reference.iter().zip(&a).zip(&b) {
                assert_eq!(r.to_bits(), x.to_bits());
                assert_eq!(r.to_bits(), y.to_bits());
            }
            assert_eq!(cached.classify_batch(&ds), uncached.classify_batch(&ds));
        }

        // The cache survives (and is shared by) clones: the clone's
        // cell holds the same Arc the original built.
        let built = cached.kernel_plan();
        let cloned = cached.clone();
        assert!(Arc::ptr_eq(&built, &cloned.kernel_plan()));
        // An uncached engine hands out a fresh plan per call.
        assert!(!Arc::ptr_eq(
            &uncached.kernel_plan(),
            &uncached.kernel_plan()
        ));
    }

    #[test]
    fn plan_survives_serde_round_trip() {
        let ds = regime_dataset(400, 13);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile().with_simd(true);
        let json = serde_json::to_string(&engine).unwrap();
        let back: CompiledTree = serde_json::from_str(&json).unwrap();
        // serde skips the cache cell; the deserialized engine defaults
        // to caching on and rebuilds an equivalent plan lazily.
        assert!(back.plan_caching());
        let expect = engine.predict_batch(&ds);
        let got = back.with_simd(true).predict_batch(&ds);
        for (a, b) in expect.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
