//! Compiled batch inference over fitted model trees.
//!
//! [`ModelTree::predict`] is an interpreter: every prediction chases
//! node pointers through an enum-tagged arena and, when Quinlan
//! smoothing is enabled, re-evaluates the linear model of **every
//! ancestor** on the root-to-leaf path. That is fine for one sample and
//! ruinous for the evaluation loops the paper pipeline runs — 10-fold
//! cross-validation, pruning sweeps, transferability assessments,
//! bootstrap confidence intervals, and the Table II/IV classification
//! passes all predict tens of thousands of samples per call.
//!
//! [`CompiledTree`] removes both costs at compile time:
//!
//! * **Flat structure-of-arrays layout, columnar partition descent.**
//!   Nodes are stored as parallel arrays (`feature`, `threshold`,
//!   `children`, `slot`) in the tree's interning order, so a scalar
//!   descent is a short loop over dense arrays with no enum matching.
//!   The batch kernels never descend per row at all: they recursively
//!   **partition** the chunk's row list through the tree, so each node
//!   is visited once per chunk with its tested column and threshold
//!   held in registers, every sweep streams the columnar cache, rows
//!   leave the recursion the moment they reach their leaf, and each
//!   leaf's folded model is then evaluated term-major over the leaf's
//!   row list — one coefficient against a contiguous run of rows at a
//!   time.
//!
//! * **Smoothing folded into the leaves.** Quinlan smoothing
//!   `p' = (n·p + k·q) / (n + k)` is a fixed convex combination of the
//!   path's linear models — the weights depend only on the per-node
//!   training counts, never on the sample. For the path
//!   `v_0 (root), v_1, …, v_d (leaf)` the smoothed prediction is
//!   `Σ_i w_i · m_i(x)` with
//!
//!   ```text
//!   w_d = Π_{j=1..d} n_j / (n_j + k)
//!   w_i = k / (n_{i+1} + k) · Π_{j=1..i} n_j / (n_j + k)   (i < d)
//!   ```
//!
//!   Because every `m_i` is linear, the whole combination collapses
//!   into **one effective linear model per leaf** whose intercept and
//!   coefficients are precomputed here. A smoothed prediction becomes a
//!   flat-array descent plus a single sparse dot product — identical in
//!   cost to an unsmoothed one.
//!
//! The folded coefficients are mathematically exact; compiled and
//! interpreted predictions differ only by floating-point reassociation
//! and agree within `1e-10` on every sample (pinned by property tests).
//! [`CompiledTree::predict_batch`] is additionally **bit-identical**
//! for every thread count: each output element is a pure function of
//! its sample, so chunking only changes wall clock.

use crate::linreg::LinearModel;
use crate::tree::{ModelTree, NodeKind};
use perfcounters::events::N_EVENTS;
use perfcounters::{ColumnStore, Dataset, EventId, Sample};
use serde::{Deserialize, Serialize};

/// Sentinel in [`CompiledTree::slot`] marking a split node.
const SPLIT: u32 = u32::MAX;

/// Rows per partition descent. Each descent level re-sweeps the
/// block's packed row list, so the list, its partition scratch, the
/// leaf accumulator, and the touched column stretches must stay
/// cache-resident; a few thousand rows keeps that working set around
/// a hundred kilobytes while still amortizing the per-node recursion
/// to nothing.
const BLOCK: usize = 4096;

/// A fitted [`ModelTree`] compiled for batch inference: flat
/// structure-of-arrays nodes plus one smoothing-folded linear model per
/// leaf.
///
/// Build one with [`ModelTree::compile`]. Compilation is cheap (linear
/// in the tree size) and the result is immutable, so it can be reused
/// across every prediction pass over a model.
///
/// # Examples
///
/// ```
/// use modeltree::{M5Config, ModelTree};
/// use perfcounters::{Dataset, EventId, Sample};
///
/// let mut ds = Dataset::new();
/// let b = ds.add_benchmark("toy");
/// for i in 0..200 {
///     let mut s = Sample::zeros(if i % 2 == 0 { 0.6 } else { 1.4 });
///     s.set(EventId::DtlbMiss, if i % 2 == 0 { 1e-4 } else { 3e-4 });
///     ds.push(s, b);
/// }
/// let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
/// let engine = tree.compile();
/// let batch = engine.predict_batch(&ds);
/// for (i, &p) in batch.iter().enumerate() {
///     assert!((p - tree.predict(ds.sample(i))).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTree {
    /// Per node: the tested attribute's [`EventId::index`] (0 for
    /// leaves, whose lookup result never affects the descent).
    feature: Vec<u32>,
    /// Per node: the split threshold (`value <= threshold` goes left);
    /// unused (0) for leaves.
    threshold: Vec<f64>,
    /// Per node: the left and right child slots interleaved
    /// (`children[2·id]` left, `children[2·id + 1]` right). A split's
    /// left child is always `id + 1` because nodes are interned in
    /// pre-order; leaves loop back to themselves. Interleaving lets the
    /// batch descent select the child by *indexing* with the comparison
    /// result — the select cannot compile to a data-dependent branch.
    children: Vec<u32>,
    /// Per node: the leaf's slot in the leaf arrays, or [`SPLIT`].
    slot: Vec<u32>,
    /// Maximum root-to-leaf edge count — also the recursion depth of
    /// the batch partitioner.
    depth: u32,
    /// Per leaf slot: the 1-based linear-model number.
    lm_index: Vec<u32>,
    /// Per leaf slot: the folded model's intercept.
    intercept: Vec<f64>,
    /// All folded-model terms, flattened: leaf `l` owns
    /// `term_start[l] .. term_start[l + 1]`.
    term_feature: Vec<u32>,
    term_coef: Vec<f64>,
    /// Per leaf slot (length `n_leaves + 1`): offsets into the term
    /// arrays.
    term_start: Vec<u32>,
    /// Thread budget for batch entry points (1 = serial). Results are
    /// bit-identical for every value.
    n_threads: usize,
}

impl CompiledTree {
    /// Compiles a fitted tree. Equivalent to [`ModelTree::compile`].
    pub fn new(tree: &ModelTree) -> CompiledTree {
        let _span = obskit::span("engine", "engine.compile");
        obskit::metrics::incr(obskit::metrics::Metric::EngineCompilations);
        let n_nodes = tree.n_nodes();
        let mut compiled = CompiledTree {
            feature: Vec::with_capacity(n_nodes),
            threshold: Vec::with_capacity(n_nodes),
            children: Vec::with_capacity(2 * n_nodes),
            slot: Vec::with_capacity(n_nodes),
            depth: 0,
            lm_index: Vec::new(),
            intercept: Vec::new(),
            term_feature: Vec::new(),
            term_coef: Vec::new(),
            term_start: vec![0],
            n_threads: tree.config().n_threads.max(1),
        };
        let k = if tree.config().smoothing {
            tree.config().smoothing_k
        } else {
            0.0
        };
        // Dense accumulator for one leaf's folded coefficients; the
        // sparse terms are extracted per leaf so a deep path with
        // overlapping ancestor models still folds to few terms.
        let mut dense = [0.0f64; N_EVENTS];
        let mut path: Vec<(f64, &LinearModel)> = Vec::new(); // (weight, model)
        {
            // The flatten pass is where Quinlan smoothing is actually
            // materialized, so it carries the M5' smoothing-stage span.
            let _fold = obskit::span("engine", "m5.smooth_fold");
            compiled.flatten(tree, tree.root(), 1.0, k, 0, &mut path, &mut dense);
        }
        debug_assert_eq!(compiled.feature.len(), n_nodes);
        obskit::metrics::gauge_max(
            obskit::metrics::Metric::EngineMaxDescentDepth,
            compiled.depth as u64,
        );
        compiled
    }

    /// Pre-order flattening. `weight` is the product
    /// `Π n_j / (n_j + k)` accumulated over the path *below the root*
    /// so far; `path` carries each ancestor's `(folded weight, model)`.
    #[allow(clippy::too_many_arguments)]
    fn flatten<'t>(
        &mut self,
        tree: &'t ModelTree,
        id: crate::tree::NodeId,
        weight: f64,
        k: f64,
        level: u32,
        path: &mut Vec<(f64, &'t LinearModel)>,
        dense: &mut [f64; N_EVENTS],
    ) {
        let node = tree.node(id);
        match *node.kind() {
            NodeKind::Split {
                event,
                threshold,
                left,
                right,
            } => {
                let slot = self.feature.len();
                self.feature.push(event.index() as u32);
                self.threshold.push(threshold);
                self.children.push(slot as u32 + 1);
                self.children.push(0); // patched after the left subtree
                self.slot.push(SPLIT);
                for &child in &[left, right] {
                    // Descending from this node to `child` multiplies
                    // every weight above by n_child / (n_child + k) and
                    // gives this node's own model the complementary
                    // k / (n_child + k) share.
                    let n_child = tree.node(child).n_samples() as f64;
                    let keep = n_child / (n_child + k);
                    let blend = k / (n_child + k);
                    path.push((weight * blend, node.model()));
                    if child == right {
                        self.children[2 * slot + 1] = self.feature.len() as u32;
                    }
                    self.flatten(tree, child, weight * keep, k, level + 1, path, dense);
                    path.pop();
                }
            }
            NodeKind::Leaf { lm_index } => {
                let id = self.feature.len() as u32;
                let leaf_slot = self.lm_index.len() as u32;
                self.feature.push(0);
                self.threshold.push(0.0);
                self.children.push(id);
                self.children.push(id);
                self.slot.push(leaf_slot);
                self.depth = self.depth.max(level);
                self.lm_index.push(lm_index as u32);

                // Fold the path: the leaf model carries the remaining
                // weight, each ancestor its recorded share. Weights sum
                // to 1 by construction.
                let mut intercept = weight * node.model().intercept();
                for (e, c) in node.model().terms() {
                    dense[e.index()] += weight * c;
                }
                for &(w, model) in path.iter() {
                    intercept += w * model.intercept();
                    for (e, c) in model.terms() {
                        dense[e.index()] += w * c;
                    }
                }
                self.intercept.push(intercept);
                for (e, slot) in dense.iter_mut().enumerate() {
                    if *slot != 0.0 {
                        self.term_feature.push(e as u32);
                        self.term_coef.push(*slot);
                        *slot = 0.0;
                    }
                }
                self.term_start.push(self.term_feature.len() as u32);
            }
        }
    }

    /// Number of flattened nodes (equal to the source tree's).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of leaves (= folded linear models).
    pub fn n_leaves(&self) -> usize {
        self.lm_index.len()
    }

    /// The thread budget used by the batch entry points.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Returns the engine with a different batch thread budget (at
    /// least 1). Predictions are bit-identical for every value.
    #[must_use]
    pub fn with_n_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads.max(1);
        self
    }

    /// The smoothing-folded effective linear model of one leaf, by its
    /// 1-based linear-model number. With smoothing disabled this equals
    /// the leaf's fitted model; with smoothing enabled it is the full
    /// root-path blend collapsed into a single equation.
    ///
    /// Returns `None` for an out-of-range index.
    pub fn folded_model(&self, lm_index: usize) -> Option<LinearModel> {
        let slot = self.lm_index.iter().position(|&l| l as usize == lm_index)?;
        let range = self.term_start[slot] as usize..self.term_start[slot + 1] as usize;
        let terms = range
            .map(|t| {
                let event = EventId::from_index(self.term_feature[t] as usize)
                    .expect("compiled term features are valid event indices");
                (event, self.term_coef[t])
            })
            .collect();
        Some(LinearModel::new(self.intercept[slot], terms))
    }

    /// Descends the flat arrays for one feature-lookup closure,
    /// returning the reached leaf's slot.
    #[inline]
    fn descend(&self, lookup: impl Fn(usize) -> f64) -> usize {
        let mut id = 0usize;
        loop {
            let s = self.slot[id];
            if s != SPLIT {
                return s as usize;
            }
            let go = usize::from(lookup(self.feature[id] as usize) > self.threshold[id]);
            id = self.children[2 * id + go] as usize;
        }
    }

    /// Branch-free partition of `pairs` by one split test, written into
    /// `scratch`: rows going left end up in `scratch[..nl]` in order,
    /// rows going right in `scratch[nl..]` reversed. Returns `nl`.
    ///
    /// Each row is written to *both* candidate slots and only the
    /// chosen cursor advances, so the loop carries no data-dependent
    /// branch for the predictor to miss. There is no copy-back: the
    /// recursion ping-pongs, descending into `scratch` with the spent
    /// `pairs` buffer as the next level's scratch. The reversed right
    /// half only flips traversal direction — each row's prediction is
    /// independent, so results are unaffected, and hardware prefetchers
    /// stream descending sweeps as well as ascending ones.
    #[inline]
    fn partition(kernel_node: &KernelNode<'_>, pairs: &[u64], scratch: &mut [u64]) -> usize {
        let n = pairs.len();
        let scratch = &mut scratch[..n];
        let mut l = 0usize;
        let mut r = n;
        for &p in pairs {
            let go = usize::from(kernel_node.col[(p >> 32) as usize] > kernel_node.threshold);
            scratch[l] = p;
            scratch[r - 1] = p;
            l += 1 - go;
            r -= go;
        }
        l
    }

    /// Partition-descends `pairs` (packed `row << 32 | out_pos`) from
    /// node `id` and writes each row's prediction to `out[out_pos]`.
    ///
    /// At a leaf the folded model runs **term-major**: each term's
    /// coefficient and column pointer stay in registers while the
    /// leaf's whole row list accumulates, so the per-(row, term) work
    /// is one monotone-order gather and one multiply-add into a
    /// sequential accumulator. Per row the terms still accumulate in
    /// ascending term order with the intercept added last — exactly the
    /// association of [`CompiledTree::dot`] — so batch and scalar
    /// predictions are bit-identical.
    fn predict_node(
        &self,
        kernel: &BatchKernel<'_>,
        id: usize,
        pairs: &mut [u64],
        scratch: &mut [u64],
        acc: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        if pairs.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let slot = s as usize;
            let range = self.term_start[slot] as usize..self.term_start[slot + 1] as usize;
            acc.clear();
            acc.resize(pairs.len(), 0.0);
            for t in &kernel.terms[range] {
                for (a, &p) in acc.iter_mut().zip(pairs.iter()) {
                    *a += t.coef * t.col[(p >> 32) as usize];
                }
            }
            let intercept = self.intercept[slot];
            for (&p, &a) in pairs.iter().zip(acc.iter()) {
                out[p as u32 as usize] = intercept + a;
            }
            return;
        }
        let nl = Self::partition(&kernel.nodes[id], pairs, scratch);
        // The buffers swap roles below, so the new row lists must be
        // sized exactly — scratch can be oversized on a partial block.
        let (sl, sr) = scratch[..pairs.len()].split_at_mut(nl);
        let (pl, pr) = pairs.split_at_mut(nl);
        self.predict_node(kernel, self.children[2 * id] as usize, sl, pl, acc, out);
        self.predict_node(kernel, self.children[2 * id + 1] as usize, sr, pr, acc, out);
    }

    /// Partition-descends `pairs` from node `id` and writes each row's
    /// 1-based linear-model number to `out[out_pos]`.
    fn classify_node(
        &self,
        kernel: &BatchKernel<'_>,
        id: usize,
        pairs: &mut [u64],
        scratch: &mut [u64],
        out: &mut [u32],
    ) {
        if pairs.is_empty() {
            return;
        }
        let s = self.slot[id];
        if s != SPLIT {
            let lm = self.lm_index[s as usize];
            for &p in pairs.iter() {
                out[p as u32 as usize] = lm;
            }
            return;
        }
        let nl = Self::partition(&kernel.nodes[id], pairs, scratch);
        let (sl, sr) = scratch[..pairs.len()].split_at_mut(nl);
        let (pl, pr) = pairs.split_at_mut(nl);
        self.classify_node(kernel, self.children[2 * id] as usize, sl, pl, out);
        self.classify_node(kernel, self.children[2 * id + 1] as usize, sr, pr, out);
    }

    /// Evaluates the folded model of `leaf_slot`. Terms are accumulated
    /// first and the intercept added last — the same association as
    /// [`LinearModel::predict`], so an unsmoothed compiled prediction is
    /// bit-identical to the interpreted leaf-model evaluation.
    #[inline]
    fn dot(&self, leaf_slot: usize, lookup: impl Fn(usize) -> f64) -> f64 {
        let range = self.term_start[leaf_slot] as usize..self.term_start[leaf_slot + 1] as usize;
        let coefs = &self.term_coef[range.clone()];
        let feats = &self.term_feature[range];
        let mut acc = 0.0;
        for (&c, &f) in coefs.iter().zip(feats) {
            acc += c * lookup(f as usize);
        }
        self.intercept[leaf_slot] + acc
    }

    /// Predicts CPI for one sample (smoothing already folded in).
    pub fn predict(&self, sample: &Sample) -> f64 {
        let densities = sample.densities();
        let leaf = self.descend(|f| densities[f]);
        self.dot(leaf, |f| densities[f])
    }

    /// The 1-based linear-model number the sample classifies into.
    pub fn classify(&self, sample: &Sample) -> usize {
        let densities = sample.densities();
        self.lm_index[self.descend(|f| densities[f])] as usize
    }

    /// Predicts CPI for every sample of a dataset by partitioning row
    /// lists through the tree over the dataset's columnar cache.
    ///
    /// With a thread budget above 1 the rows are split into contiguous
    /// chunks processed on scoped worker threads; each element is a
    /// pure function of its sample, so the output is **bit-identical**
    /// for every thread count.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        let _span = obskit::span("engine", "engine.predict_batch");
        self.count_batch(data.len(), obskit::metrics::Metric::EngineRowsPredicted);
        let kernel = BatchKernel::new(self, data.columns());
        let mut out = vec![0.0; data.len()];
        self.for_each_chunk(&mut out, |slice, start| {
            self.predict_chunk(&kernel, slice, |j| start + j);
        });
        out
    }

    /// Predicts CPI for the selected rows of a dataset (`indices` are
    /// row numbers into `data`), in `indices` order. Used by
    /// cross-validation to evaluate folds without materializing fold
    /// datasets.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn predict_indices(&self, data: &Dataset, indices: &[u32]) -> Vec<f64> {
        let _span = obskit::span("engine", "engine.predict_indices");
        self.count_batch(indices.len(), obskit::metrics::Metric::EngineRowsPredicted);
        let kernel = BatchKernel::new(self, data.columns());
        let mut out = vec![0.0; indices.len()];
        self.for_each_chunk(&mut out, |slice, start| {
            self.predict_chunk(&kernel, slice, |j| indices[start + j] as usize);
        });
        out
    }

    /// Classifies every sample of a dataset into its 1-based
    /// linear-model number — the batch form of [`CompiledTree::classify`]
    /// behind the paper's Table II/IV profiles.
    pub fn classify_batch(&self, data: &Dataset) -> Vec<u32> {
        let _span = obskit::span("engine", "engine.classify_batch");
        self.count_batch(data.len(), obskit::metrics::Metric::EngineRowsClassified);
        let kernel = BatchKernel::new(self, data.columns());
        let mut out = vec![0u32; data.len()];
        self.for_each_chunk(&mut out, |slice, start| {
            let mut pairs = Vec::with_capacity(BLOCK.min(slice.len()));
            let mut scratch = vec![0u64; BLOCK.min(slice.len())];
            for (b, block) in slice.chunks_mut(BLOCK).enumerate() {
                Self::pack_rows(&mut pairs, block.len(), |j| start + b * BLOCK + j);
                self.classify_node(&kernel, 0, &mut pairs, &mut scratch, block);
            }
        });
        out
    }

    /// Packed partition entries for one block: the dataset row in the
    /// high half (what the split tests and folded terms gather), the
    /// block-local output position in the low half (where the result
    /// lands, preserving `row_of` order).
    fn pack_rows(pairs: &mut Vec<u64>, len: usize, row_of: impl Fn(usize) -> usize) {
        pairs.clear();
        pairs.extend((0..len).map(|j| (row_of(j) as u64) << 32 | j as u64));
    }

    /// Fills `out` with predictions for the rows `row_of(0..out.len())`,
    /// one partition descent per [`BLOCK`]-sized stretch.
    fn predict_chunk(
        &self,
        kernel: &BatchKernel<'_>,
        out: &mut [f64],
        row_of: impl Fn(usize) -> usize,
    ) {
        let mut pairs = Vec::with_capacity(BLOCK.min(out.len()));
        let mut scratch = vec![0u64; BLOCK.min(out.len())];
        let mut acc = Vec::with_capacity(BLOCK.min(out.len()));
        for (b, block) in out.chunks_mut(BLOCK).enumerate() {
            Self::pack_rows(&mut pairs, block.len(), |j| row_of(b * BLOCK + j));
            self.predict_node(kernel, 0, &mut pairs, &mut scratch, &mut acc, block);
        }
    }

    /// Records one batch entry's telemetry: batch and block counts plus
    /// the row-count distribution and rows under `rows_metric`. Outside
    /// the row loops, so per-row cost is untouched.
    fn count_batch(&self, rows: usize, rows_metric: obskit::metrics::Metric) {
        use obskit::metrics::{add, incr, observe, Hist, Metric};
        incr(Metric::EngineBatches);
        add(Metric::EngineBlocks, rows.div_ceil(BLOCK) as u64);
        add(rows_metric, rows as u64);
        observe(Hist::EngineBatchRows, rows as u64);
    }

    /// Runs `body(chunk, chunk_start)` over `out` split into
    /// `n_threads` near-equal contiguous chunks, on scoped workers when
    /// the budget allows.
    fn for_each_chunk<T: Send>(&self, out: &mut [T], body: impl Fn(&mut [T], usize) + Sync) {
        let threads = self.n_threads.max(1).min(out.len());
        if threads <= 1 {
            body(out, 0);
            return;
        }
        let chunk = out.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in out.chunks_mut(chunk).enumerate() {
                let body = &body;
                scope.spawn(move || body(slice, t * chunk));
            }
        });
    }
}

impl ModelTree {
    /// Compiles this tree into a [`CompiledTree`] batch-inference
    /// engine: flat node arrays plus one smoothing-folded linear model
    /// per leaf. See the [`compiled`](crate::compiled) module docs for
    /// the layout and folding algebra.
    pub fn compile(&self) -> CompiledTree {
        CompiledTree::new(self)
    }
}

/// One node's split data in the shape the kernels want: the tested
/// column already resolved to a slice, plus the threshold. The
/// partitioner hoists both out of its row sweep.
#[derive(Clone, Copy)]
struct KernelNode<'a> {
    /// The tested attribute's column (leaves point at column 0, whose
    /// lookup result never affects the descent).
    col: &'a [f64],
    threshold: f64,
}

/// One folded-model term: coefficient and its resolved column.
#[derive(Clone, Copy)]
struct KernelTerm<'a> {
    col: &'a [f64],
    coef: f64,
}

/// Per-call inference kernel: the tree's nodes and folded terms
/// re-resolved against one dataset's borrowed event columns, so the hot
/// loops index straight into column slices instead of going
/// `feature id → column table → column`. Building it is linear in the
/// tree size — trivial next to any batch — and keeps the serialized
/// [`CompiledTree`] free of borrowed data.
struct BatchKernel<'a> {
    nodes: Vec<KernelNode<'a>>,
    /// Aligned with the tree's flattened term arrays: leaf `l` owns
    /// `term_start[l] .. term_start[l + 1]`.
    terms: Vec<KernelTerm<'a>>,
}

impl<'a> BatchKernel<'a> {
    fn new(tree: &CompiledTree, store: &'a ColumnStore) -> BatchKernel<'a> {
        let events: Vec<&[f64]> = EventId::ALL.iter().map(|&e| store.event(e)).collect();
        BatchKernel {
            nodes: (0..tree.n_nodes())
                .map(|n| KernelNode {
                    col: events[tree.feature[n] as usize],
                    threshold: tree.threshold[n],
                })
                .collect(),
            terms: tree
                .term_feature
                .iter()
                .zip(&tree.term_coef)
                .map(|(&f, &coef)| KernelTerm {
                    col: events[f as usize],
                    coef,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::M5Config;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn regime_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("synth");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let load = rng.gen::<f64>() * 0.4;
            let l2 = rng.gen::<f64>() * 1e-3;
            let cpi = if dtlb <= 2e-4 {
                0.6 + 500.0 * dtlb + 2.0 * load
            } else {
                1.0 + 1200.0 * l2
            };
            let mut s = Sample::zeros(cpi + 0.01 * rng.gen::<f64>());
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, load);
            s.set(EventId::L2Miss, l2);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn compiled_matches_interpreted_smoothed() {
        let ds = regime_dataset(2000, 1);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        assert_eq!(engine.n_nodes(), tree.n_nodes());
        assert_eq!(engine.n_leaves(), tree.n_leaves());
        for i in 0..ds.len() {
            let s = ds.sample(i);
            let a = tree.predict(s);
            let b = engine.predict(s);
            assert!((a - b).abs() < 1e-10, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn compiled_matches_interpreted_unsmoothed() {
        let ds = regime_dataset(1500, 2);
        let tree = ModelTree::fit(&ds, &M5Config::default().with_smoothing(false)).unwrap();
        let engine = tree.compile();
        for i in 0..ds.len() {
            let s = ds.sample(i);
            // Without smoothing the folded model IS the leaf model:
            // identical arithmetic, hence identical bits.
            assert_eq!(tree.predict(s).to_bits(), engine.predict(s).to_bits());
        }
    }

    #[test]
    fn classify_matches_interpreted() {
        let ds = regime_dataset(1200, 3);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let batch = engine.classify_batch(&ds);
        for (i, &lm) in batch.iter().enumerate() {
            let s = ds.sample(i);
            assert_eq!(engine.classify(s), tree.classify(s));
            assert_eq!(lm as usize, tree.classify(s));
        }
    }

    #[test]
    fn batch_matches_per_sample_bitwise() {
        let ds = regime_dataset(999, 4);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let batch = engine.predict_batch(&ds);
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p.to_bits(), engine.predict(ds.sample(i)).to_bits());
        }
    }

    #[test]
    fn batch_bit_identical_across_thread_counts() {
        let ds = regime_dataset(2500, 5);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let serial = tree.compile().with_n_threads(1).predict_batch(&ds);
        for threads in [2, 3, 8] {
            let parallel = tree.compile().with_n_threads(threads).predict_batch(&ds);
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "thread count {threads}, row {i}");
            }
        }
    }

    #[test]
    fn predict_indices_selects_rows() {
        let ds = regime_dataset(500, 6);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let indices: Vec<u32> = (0..ds.len() as u32).rev().step_by(7).collect();
        let subset = engine.predict_indices(&ds, &indices);
        assert_eq!(subset.len(), indices.len());
        for (j, &i) in indices.iter().enumerate() {
            assert_eq!(
                subset[j].to_bits(),
                engine.predict(ds.sample(i as usize)).to_bits()
            );
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let ds = regime_dataset(5, 7);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        let engine = tree.compile();
        assert_eq!(engine.n_nodes(), 1);
        let s = ds.sample(0);
        assert_eq!(engine.predict(s).to_bits(), tree.predict(s).to_bits());
        assert_eq!(engine.classify(s), 1);
    }

    #[test]
    fn folded_model_weights_sum_to_one() {
        // On a constant-CPI dataset every node model predicts the same
        // constant, so any convex combination must too: the folded
        // intercepts all equal the constant and the terms vanish.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..400 {
            let mut s = Sample::zeros(1.5);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        for lm in 1..=engine.n_leaves() {
            let model = engine.folded_model(lm).unwrap();
            assert!((model.intercept() - 1.5).abs() < 1e-9, "{model}");
        }
        assert!(engine.folded_model(0).is_none());
        assert!(engine.folded_model(engine.n_leaves() + 1).is_none());
    }

    #[test]
    fn folded_model_matches_predictions() {
        let ds = regime_dataset(1500, 9);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        for i in (0..ds.len()).step_by(97) {
            let s = ds.sample(i);
            let lm = engine.classify(s);
            let model = engine.folded_model(lm).unwrap();
            assert!((model.predict(s) - engine.predict(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let ds = regime_dataset(600, 10);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        let json = serde_json::to_string(&engine).unwrap();
        let back: CompiledTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, engine);
    }

    #[test]
    fn empty_dataset_batch() {
        let ds = regime_dataset(50, 11);
        let tree = ModelTree::fit(&ds, &M5Config::default()).unwrap();
        let engine = tree.compile();
        assert!(engine.predict_batch(&Dataset::new()).is_empty());
        assert!(engine.predict_indices(&ds, &[]).is_empty());
        assert!(engine.classify_batch(&Dataset::new()).is_empty());
    }
}
