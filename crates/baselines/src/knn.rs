//! k-nearest-neighbor regression baseline.

use crate::{BaselineError, Regressor, Result};
use perfcounters::events::N_EVENTS;
use perfcounters::{Dataset, Sample};
use serde::{Deserialize, Serialize};

/// k-NN regression over per-column standardized Euclidean distance.
///
/// Each feature is scaled by the training column's standard deviation so
/// that rare-event densities (1e-4-scale) and instruction-mix densities
/// (0.3-scale) contribute comparably — without this, distance would be
/// dominated by the mix events and the regressor would ignore the miss
/// events that actually drive CPI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    scales: [f64; N_EVENTS],
    features: Vec<[f64; N_EVENTS]>,
    targets: Vec<f64>,
}

impl KnnRegressor {
    /// Fits (memorizes) the training set.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::InvalidConfig`] if `k == 0`.
    /// * [`BaselineError::InsufficientData`] if the dataset has fewer
    ///   than `k` samples.
    pub fn fit(data: &Dataset, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(BaselineError::InvalidConfig("k must be at least 1".into()));
        }
        if data.len() < k {
            return Err(BaselineError::InsufficientData(format!(
                "need at least k = {k} samples, got {}",
                data.len()
            )));
        }
        let mut scales = [1.0; N_EVENTS];
        for (i, scale) in scales.iter_mut().enumerate() {
            let col: Vec<f64> = (0..data.len())
                .map(|r| data.sample(r).densities()[i])
                .collect();
            let sd = mathkit::describe::std_dev(&col).unwrap_or(0.0);
            *scale = if sd > 0.0 { 1.0 / sd } else { 0.0 };
        }
        let features: Vec<[f64; N_EVENTS]> = (0..data.len())
            .map(|r| {
                let mut f = *data.sample(r).densities();
                for (v, s) in f.iter_mut().zip(&scales) {
                    *v *= s;
                }
                f
            })
            .collect();
        Ok(KnnRegressor {
            k,
            scales,
            features,
            targets: data.cpis(),
        })
    }

    /// The number of neighbors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of memorized training samples.
    pub fn n_training(&self) -> usize {
        self.targets.len()
    }
}

impl Regressor for KnnRegressor {
    fn predict(&self, sample: &Sample) -> f64 {
        let mut q = *sample.densities();
        for (v, s) in q.iter_mut().zip(&self.scales) {
            *v *= s;
        }
        // Track the k smallest distances with a simple bounded insertion —
        // k is small, so this beats sorting the whole distance vector.
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(self.k + 1);
        for (f, &y) in self.features.iter().zip(&self.targets) {
            let dist: f64 = f.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
            if best.len() < self.k || dist < best.last().expect("non-empty").0 {
                let pos = best.partition_point(|&(d, _)| d < dist);
                best.insert(pos, (dist, y));
                if best.len() > self.k {
                    best.pop();
                }
            }
        }
        let n = best.len().max(1);
        best.iter().map(|&(_, y)| y).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcounters::EventId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn step_dataset(n: usize, seed: u64) -> Dataset {
        // CPI = 0.5 for DtlbMiss below 2e-4, 2.0 above: k-NN should nail
        // this after scaling.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("step");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let cpi = if dtlb <= 2e-4 { 0.5 } else { 2.0 };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::DtlbMiss, dtlb);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = step_dataset(10, 0);
        assert!(matches!(
            KnnRegressor::fit(&ds, 0),
            Err(BaselineError::InvalidConfig(_))
        ));
        assert!(matches!(
            KnnRegressor::fit(&ds, 11),
            Err(BaselineError::InsufficientData(_))
        ));
    }

    #[test]
    fn exact_on_training_points_with_k1() {
        let ds = step_dataset(200, 1);
        let knn = KnnRegressor::fit(&ds, 1).unwrap();
        for i in 0..20 {
            let s = ds.sample(i);
            assert_eq!(knn.predict(s), s.cpi());
        }
    }

    #[test]
    fn captures_step_function() {
        let train = step_dataset(2000, 2);
        let test = step_dataset(300, 3);
        let knn = KnnRegressor::fit(&train, 5).unwrap();
        let mae = knn.mean_abs_error(&test);
        assert!(mae < 0.1, "mae {mae}");
    }

    #[test]
    fn constant_feature_ignored() {
        // The Load column dominates raw distance but is uninformative; a
        // constant column must not produce NaN scales.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("x");
        for i in 0..20 {
            let mut s = Sample::zeros(i as f64);
            s.set(EventId::Br, 0.5); // constant column
            s.set(EventId::Div, i as f64 * 1e-3);
            ds.push(s, b);
        }
        let knn = KnnRegressor::fit(&ds, 3).unwrap();
        let mut probe = Sample::zeros(0.0);
        probe.set(EventId::Br, 0.5);
        probe.set(EventId::Div, 0.0);
        let p = knn.predict(&probe);
        assert!(p.is_finite());
        assert!(p <= 3.0, "nearest targets should be small, got {p}");
    }

    #[test]
    fn k_larger_smooths() {
        let ds = step_dataset(500, 4);
        let k1 = KnnRegressor::fit(&ds, 1).unwrap();
        let k50 = KnnRegressor::fit(&ds, 50).unwrap();
        // Probe right at the step: k=50 averages across it, k=1 does not.
        let mut probe = Sample::zeros(0.0);
        probe.set(EventId::DtlbMiss, 2.0e-4);
        probe.set(EventId::Load, 0.5);
        let p1 = k1.predict(&probe);
        let p50 = k50.predict(&probe);
        assert!(p1 == 0.5 || p1 == 2.0);
        assert!(p50 > 0.5 && p50 < 2.0);
    }

    #[test]
    fn accessors() {
        let ds = step_dataset(50, 5);
        let knn = KnnRegressor::fit(&ds, 7).unwrap();
        assert_eq!(knn.k(), 7);
        assert_eq!(knn.n_training(), 50);
    }
}
