//! Baseline regressors for comparison against M5' model trees.
//!
//! The paper's related work (\[15\] in its bibliography) compares model
//! trees against other regression algorithms and finds model trees
//! perform as well as ANNs and SVMs while staying interpretable. This
//! crate provides the comparison points that are implementable without an
//! ML framework, used by the benchmark harness to demonstrate the same
//! ranking on the synthetic suites:
//!
//! * [`OlsRegressor`] — a single global linear model (what a model tree
//!   degenerates to with no splits);
//! * [`KnnRegressor`] — k-nearest-neighbor regression (accurate,
//!   uninterpretable, expensive at query time);
//! * [`RegressionTree`] — a CART-style piecewise-*constant* tree (what a
//!   model tree degenerates to with constant leaves).
//!
//! All three implement [`Regressor`].
//!
//! # Examples
//!
//! ```
//! use baselines::{OlsRegressor, Regressor};
//! use perfcounters::{Dataset, EventId, Sample};
//!
//! let mut ds = Dataset::new();
//! let b = ds.add_benchmark("toy");
//! for i in 0..50 {
//!     let x = i as f64 / 50.0;
//!     let mut s = Sample::zeros(1.0 + 2.0 * x);
//!     s.set(EventId::Load, x);
//!     ds.push(s, b);
//! }
//! let ols = OlsRegressor::fit(&ds).unwrap();
//! let mut probe = Sample::zeros(0.0);
//! probe.set(EventId::Load, 0.5);
//! assert!((ols.predict(&probe) - 2.0).abs() < 1e-6);
//! ```

pub mod cart;
pub mod knn;
pub mod ols;

pub use cart::{CartConfig, RegressionTree};
pub use knn::KnnRegressor;
pub use ols::OlsRegressor;

use perfcounters::{Dataset, Sample};

/// A fitted regressor predicting CPI from a sample's event densities.
pub trait Regressor {
    /// Predicted CPI for one sample.
    fn predict(&self, sample: &Sample) -> f64;

    /// Predictions for every sample of a dataset.
    fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i)))
            .collect()
    }

    /// Mean absolute error over a dataset (0 if empty).
    fn mean_abs_error(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..data.len())
            .map(|i| {
                let s = data.sample(i);
                (self.predict(s) - s.cpi()).abs()
            })
            .sum();
        sum / data.len() as f64
    }
}

/// Errors from baseline fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The training set was empty or too small.
    InsufficientData(String),
    /// A hyper-parameter was invalid (e.g. `k = 0`).
    InvalidConfig(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            BaselineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BaselineError::InsufficientData("x".into())
            .to_string()
            .contains("x"));
        assert!(!BaselineError::InvalidConfig("k".into())
            .to_string()
            .is_empty());
    }
}
