//! CART-style regression tree with constant leaves.
//!
//! Structurally identical to an M5' tree (variance-reduction splits) but
//! with leaf *means* instead of leaf linear models — the classic ablation
//! showing what the linear leaves buy.

use crate::{BaselineError, Regressor, Result};
use perfcounters::events::EventId;
use perfcounters::{Dataset, Sample};
use serde::{Deserialize, Serialize};

/// CART hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartConfig {
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Maximum depth (root = 0).
    pub max_depth: usize,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            min_leaf: 8,
            max_depth: 12,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CartNode {
    Leaf {
        value: f64,
    },
    Split {
        event: EventId,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<CartNode>,
    config: CartConfig,
}

impl RegressionTree {
    /// Fits a piecewise-constant regression tree.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::InvalidConfig`] if `min_leaf == 0`.
    /// * [`BaselineError::InsufficientData`] for an empty dataset.
    pub fn fit(data: &Dataset, config: CartConfig) -> Result<Self> {
        if config.min_leaf == 0 {
            return Err(BaselineError::InvalidConfig(
                "min_leaf must be at least 1".into(),
            ));
        }
        if data.is_empty() {
            return Err(BaselineError::InsufficientData("empty training set".into()));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            config,
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.grow(data, indices, 0);
        Ok(tree)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, CartNode::Leaf { .. }))
            .count()
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn grow(&mut self, data: &Dataset, indices: Vec<usize>, depth: usize) -> usize {
        let mean =
            indices.iter().map(|&i| data.sample(i).cpi()).sum::<f64>() / indices.len() as f64;
        let stop = depth >= self.config.max_depth || indices.len() < 2 * self.config.min_leaf;
        let split = if stop {
            None
        } else {
            best_variance_split(data, &indices, self.config.min_leaf)
        };
        match split {
            None => {
                self.nodes.push(CartNode::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some((event, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.sample(i).get(event) <= threshold);
                let slot = self.nodes.len();
                self.nodes.push(CartNode::Leaf { value: mean }); // placeholder
                let left = self.grow(data, left_idx, depth + 1);
                let right = self.grow(data, right_idx, depth + 1);
                self.nodes[slot] = CartNode::Split {
                    event,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

/// Finds the variance-minimizing `(event, threshold)` split, or `None`
/// when nothing admissible improves.
fn best_variance_split(
    data: &Dataset,
    indices: &[usize],
    min_leaf: usize,
) -> Option<(EventId, f64)> {
    let n = indices.len();
    let total_sum: f64 = indices.iter().map(|&i| data.sample(i).cpi()).sum();
    let total_sum_sq: f64 = indices
        .iter()
        .map(|&i| {
            let y = data.sample(i).cpi();
            y * y
        })
        .sum();
    let base_sse = total_sum_sq - total_sum * total_sum / n as f64;
    if base_sse <= 1e-12 {
        return None;
    }

    let mut best: Option<(EventId, f64, f64)> = None;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    for event in EventId::ALL {
        pairs.clear();
        pairs.extend(indices.iter().map(|&i| {
            let s = data.sample(i);
            (s.get(event), s.cpi())
        }));
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pairs[0].0 == pairs[n - 1].0 {
            continue;
        }
        let mut left_sum = 0.0;
        let mut left_sum_sq = 0.0;
        for i in 0..n - 1 {
            let (value, y) = pairs[i];
            left_sum += y;
            left_sum_sq += y * y;
            if value == pairs[i + 1].0 {
                continue;
            }
            let n_left = (i + 1) as f64;
            let n_right = (n - i - 1) as f64;
            if (i + 1) < min_leaf || (n - i - 1) < min_leaf {
                continue;
            }
            let sse_left = left_sum_sq - left_sum * left_sum / n_left;
            let right_sum = total_sum - left_sum;
            let sse_right = (total_sum_sq - left_sum_sq) - right_sum * right_sum / n_right;
            let sse = sse_left + sse_right;
            if best.as_ref().is_none_or(|&(_, _, b)| sse < b) && sse < base_sse - 1e-12 {
                best = Some((event, 0.5 * (value + pairs[i + 1].0), sse));
            }
        }
    }
    best.map(|(e, t, _)| (e, t))
}

impl Regressor for RegressionTree {
    fn predict(&self, sample: &Sample) -> f64 {
        let mut at = 0;
        loop {
            match self.nodes[at] {
                CartNode::Leaf { value } => return value,
                CartNode::Split {
                    event,
                    threshold,
                    left,
                    right,
                } => {
                    at = if sample.get(event) <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn step_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("step");
        for _ in 0..n {
            let dtlb = rng.gen::<f64>() * 4e-4;
            let cpi = if dtlb <= 2e-4 { 0.5 } else { 2.0 };
            let mut s = Sample::zeros(cpi);
            s.set(EventId::DtlbMiss, dtlb);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            RegressionTree::fit(&Dataset::new(), CartConfig::default()),
            Err(BaselineError::InsufficientData(_))
        ));
        let ds = step_dataset(10, 0);
        assert!(matches!(
            RegressionTree::fit(
                &ds,
                CartConfig {
                    min_leaf: 0,
                    max_depth: 3
                }
            ),
            Err(BaselineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fits_step_function_exactly() {
        let ds = step_dataset(500, 1);
        let tree = RegressionTree::fit(&ds, CartConfig::default()).unwrap();
        let mae = tree.mean_abs_error(&ds);
        assert!(mae < 0.01, "mae {mae}");
    }

    #[test]
    fn respects_max_depth() {
        let ds = step_dataset(500, 2);
        let tree = RegressionTree::fit(
            &ds,
            CartConfig {
                min_leaf: 2,
                max_depth: 1,
            },
        )
        .unwrap();
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("flat");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut s = Sample::zeros(1.0);
            s.set(EventId::Load, rng.gen());
            ds.push(s, b);
        }
        let tree = RegressionTree::fit(&ds, CartConfig::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&Sample::zeros(0.0)), 1.0);
    }

    #[test]
    fn piecewise_linear_needs_more_leaves_than_model_tree_would() {
        // A sloped target forces CART to stair-step: leaf count should
        // clearly exceed the 2 regimes.
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("slope");
        for _ in 0..2000 {
            let load: f64 = rng.gen();
            let mut s = Sample::zeros(0.5 + 2.0 * load);
            s.set(EventId::Load, load);
            ds.push(s, b);
        }
        let tree = RegressionTree::fit(&ds, CartConfig::default()).unwrap();
        assert!(tree.n_leaves() > 4, "leaves {}", tree.n_leaves());
        assert!(tree.mean_abs_error(&ds) < 0.1);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = step_dataset(200, 5);
        let tree = RegressionTree::fit(&ds, CartConfig::default()).unwrap();
        let json = serde_json::to_string(&tree).unwrap();
        let back: RegressionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }
}
