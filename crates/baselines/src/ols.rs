//! Global ordinary-least-squares baseline.

use crate::{BaselineError, Regressor, Result};
use mathkit::matrix::Matrix;
use mathkit::qr::least_squares;
use mathkit::solve::solve_ridge;
use perfcounters::events::{EventId, N_EVENTS};
use perfcounters::{Dataset, Sample};
use serde::{Deserialize, Serialize};

/// A single linear model over all 19 events plus an intercept — the
/// degenerate "zero splits" model tree. The gap between its accuracy and
/// a model tree's quantifies how piecewise the workload's true cost
/// structure is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsRegressor {
    intercept: f64,
    coefficients: [f64; N_EVENTS],
}

impl OlsRegressor {
    /// Fits by QR least squares, falling back to ridge-regularized
    /// normal equations for rank-deficient designs.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InsufficientData`] if the dataset has
    /// fewer than `N_EVENTS + 2` samples.
    pub fn fit(data: &Dataset) -> Result<Self> {
        let n = data.len();
        if n < N_EVENTS + 2 {
            return Err(BaselineError::InsufficientData(format!(
                "need at least {} samples, got {n}",
                N_EVENTS + 2
            )));
        }
        // Constant columns (e.g. events a workload never triggers) make
        // the design rank deficient; drop them up front and give them a
        // zero coefficient.
        let varying: Vec<usize> = (0..N_EVENTS)
            .filter(|&c| {
                let first = data.sample(0).densities()[c];
                (1..n).any(|r| data.sample(r).densities()[c] != first)
            })
            .collect();

        let mut design = Matrix::zeros(n, varying.len() + 1);
        for r in 0..n {
            design[(r, 0)] = 1.0;
            let densities = data.sample(r).densities();
            for (j, &c) in varying.iter().enumerate() {
                design[(r, j + 1)] = densities[c];
            }
        }
        let y = data.cpis();
        let beta = match least_squares(&design, &y) {
            Ok(beta) => beta,
            Err(_) => {
                let gram = design.gram();
                let xty = design.transpose_matvec(&y).expect("length checked");
                solve_ridge(&gram, &xty, 1e-8).map_err(|_| {
                    BaselineError::InsufficientData("degenerate design matrix".into())
                })?
            }
        };
        let mut coefficients = [0.0; N_EVENTS];
        for (j, &c) in varying.iter().enumerate() {
            coefficients[c] = beta[j + 1];
        }
        Ok(OlsRegressor {
            intercept: beta[0],
            coefficients,
        })
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted coefficient for one event.
    pub fn coefficient(&self, event: EventId) -> f64 {
        self.coefficients[event.index()]
    }
}

impl Regressor for OlsRegressor {
    fn predict(&self, sample: &Sample) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(sample.densities())
                .map(|(c, d)| c * d)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("lin");
        for _ in 0..n {
            let load: f64 = rng.gen();
            let l2: f64 = rng.gen::<f64>() * 1e-3;
            let mut s = Sample::zeros(0.5 + 1.5 * load + 400.0 * l2);
            s.set(EventId::Load, load);
            s.set(EventId::L2Miss, l2);
            ds.push(s, b);
        }
        ds
    }

    #[test]
    fn recovers_linear_truth() {
        let ds = linear_dataset(300, 1);
        let ols = OlsRegressor::fit(&ds).unwrap();
        assert!((ols.intercept() - 0.5).abs() < 1e-6);
        assert!((ols.coefficient(EventId::Load) - 1.5).abs() < 1e-6);
        assert!((ols.coefficient(EventId::L2Miss) - 400.0).abs() < 1e-2);
        assert!(ols.mean_abs_error(&ds) < 1e-8);
    }

    #[test]
    fn rejects_tiny_dataset() {
        let ds = linear_dataset(5, 2);
        assert!(matches!(
            OlsRegressor::fit(&ds),
            Err(BaselineError::InsufficientData(_))
        ));
    }

    #[test]
    fn handles_constant_columns_via_ridge() {
        // All densities zero except CPI variation: QR fails (constant
        // columns), ridge must still return something finite.
        let mut ds = Dataset::new();
        let b = ds.add_benchmark("const");
        for i in 0..40 {
            ds.push(Sample::zeros(1.0 + (i % 3) as f64 * 0.1), b);
        }
        let ols = OlsRegressor::fit(&ds).unwrap();
        let pred = ols.predict(&Sample::zeros(0.0));
        assert!(pred.is_finite());
        assert!((pred - 1.1).abs() < 0.1);
    }

    #[test]
    fn predict_all_and_mae() {
        let ds = linear_dataset(100, 3);
        let ols = OlsRegressor::fit(&ds).unwrap();
        let preds = ols.predict_all(&ds);
        assert_eq!(preds.len(), 100);
        assert!(ols.mean_abs_error(&ds) < 1e-8);
        assert_eq!(ols.mean_abs_error(&Dataset::new()), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = linear_dataset(100, 4);
        let ols = OlsRegressor::fit(&ds).unwrap();
        let json = serde_json::to_string(&ols).unwrap();
        let back: OlsRegressor = serde_json::from_str(&json).unwrap();
        // JSON text may perturb the last ULP of a float.
        assert!((back.intercept() - ols.intercept()).abs() < 1e-12);
        for e in EventId::ALL {
            assert!((back.coefficient(e) - ols.coefficient(e)).abs() < 1e-9);
        }
    }
}
