//! Criterion bench: M5' training time vs sample count (the pipeline
//! stage behind experiments E2/E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_m5");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000, 20_000, 50_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default());
        let config = M5Config::default().with_min_leaf((n / 120).max(4));
        group.bench_with_input(BenchmarkId::new("cpu2006", n), &data, |b, data| {
            b.iter(|| ModelTree::fit(data, &config).unwrap())
        });
        let par_config = config.with_n_threads(4);
        group.bench_with_input(BenchmarkId::new("cpu2006_par4", n), &data, |b, data| {
            b.iter(|| ModelTree::fit(data, &par_config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
