//! Criterion bench: Table III similarity matrix and subsetting.

use characterize::{greedy_subset, kmeans_subset, ProfileTable, SimilarityMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_similarity(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let data = Suite::cpu2006().generate(&mut rng, 20_000, &GeneratorConfig::default());
    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(200)).unwrap();
    let table = ProfileTable::build(&tree, &data);

    let mut group = c.benchmark_group("similarity");
    group.bench_function("matrix_29x29", |b| {
        b.iter(|| SimilarityMatrix::from_table(&table))
    });
    group.bench_function("greedy_subset_k6", |b| b.iter(|| greedy_subset(&table, 6)));
    group.bench_function("kmeans_subset_k6", |b| {
        b.iter(|| kmeans_subset(&table, 6, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
