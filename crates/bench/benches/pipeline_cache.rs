//! Criterion bench: cold vs warm pipeline resolution.
//!
//! "Cold" pays the full stage cost (dataset generation + M5' fit);
//! "warm" replays the same artifacts out of a pre-populated
//! content-addressed store (decode + integrity check only). The gap
//! between the two is the pipeline's entire value proposition, so it
//! gets its own benchmark group. Sizes are kept small enough that
//! `cargo bench -- --test` stays a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use pipeline::{ArtifactStore, DatasetSpec, PipelineContext, SuiteKind, TreeSpec};

fn temp_store() -> ArtifactStore {
    let dir = std::env::temp_dir().join(format!("specrepro-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir)
}

fn bench_pipeline_cache(c: &mut Criterion) {
    let spec = DatasetSpec::new(SuiteKind::cpu2006(), 2_000, 17);
    let tree_spec = TreeSpec::suite_tree(spec.clone());

    let mut group = c.benchmark_group("pipeline_cache");
    group.sample_size(10);

    // Cold: a storeless context recomputes everything, every iteration
    // (a fresh context per iteration defeats the in-memory memo).
    group.bench_function("cold_dataset_and_tree", |b| {
        b.iter(|| {
            let ctx = PipelineContext::ephemeral().with_logging(false);
            let data = ctx.dataset(&spec).expect("generates");
            let tree = ctx.tree(&tree_spec).expect("fits");
            (data.len(), tree.n_leaves())
        })
    });

    // Warm: resolve the same specs out of a pre-populated store.
    let store = temp_store();
    {
        let seed_ctx = PipelineContext::with_store(store.clone()).with_logging(false);
        seed_ctx.dataset(&spec).expect("seeds the store");
        seed_ctx.tree(&tree_spec).expect("seeds the store");
    }
    group.bench_function("warm_dataset_and_tree", |b| {
        b.iter(|| {
            let ctx = PipelineContext::with_store(store.clone()).with_logging(false);
            let data = ctx.dataset(&spec).expect("loads");
            let tree = ctx.tree(&tree_spec).expect("loads");
            let counters = ctx.counters();
            assert_eq!(counters.datasets_generated, 0);
            assert_eq!(counters.trees_fitted, 0);
            (data.len(), tree.n_leaves())
        })
    });

    // Warm tree only: the zero-work path never touches training data.
    group.bench_function("warm_tree_only", |b| {
        b.iter(|| {
            let ctx = PipelineContext::with_store(store.clone()).with_logging(false);
            let tree = ctx.tree(&tree_spec).expect("loads");
            assert_eq!(ctx.counters().datasets_loaded, 0);
            tree.n_leaves()
        })
    });

    group.finish();
    let _ = store.clear();
}

criterion_group!(benches, bench_pipeline_cache);
criterion_main!(benches);
