//! Criterion bench: per-call batch setup cost on the serving hot path.
//!
//! The model server's coalescer calls `predict_batch` on *small*
//! batches — often 1–64 rows between flush triggers — where the
//! per-call kernel setup (resolving used columns, node → lane and term
//! → lane slot maps) used to rival the arithmetic itself. The engine
//! now hoists that resolution into a cached `KernelPlan` built once per
//! compiled tree; this bench pins the win by running the same batch
//! sizes with the plan cache on (`plan_cached`, the serving
//! configuration) and off (`plan_rebuilt`, the old per-call behavior).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfcounters::Dataset;
use spec_bench::{cpu2006_dataset, fit_suite_tree};

/// The first `n` rows of `data` as a standalone probe dataset — the
/// same shape the server's coalescer builds per flushed batch.
fn probe(data: &Dataset, n: usize) -> Dataset {
    let mut out = Dataset::new();
    let b = out.add_benchmark("serve");
    for i in 0..n {
        out.push(data.sample(i).clone(), b);
    }
    out
}

fn bench_serve_kernel(c: &mut Criterion) {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let cached = tree.compile().with_n_threads(1);
    let rebuilt = tree.compile().with_n_threads(1).with_plan_caching(false);
    assert!(cached.plan_caching() && !rebuilt.plan_caching());

    let mut group = c.benchmark_group("serve_kernel");
    for &batch in &[1usize, 4, 16, 64] {
        let rows = probe(&data, batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("plan_cached", batch), &rows, |b, rows| {
            b.iter(|| cached.predict_batch(rows));
        });
        group.bench_with_input(BenchmarkId::new("plan_rebuilt", batch), &rows, |b, rows| {
            b.iter(|| rebuilt.predict_batch(rows));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_kernel);
criterion_main!(benches);
