//! Criterion bench: per-node split search.
//!
//! Compares the presorted columnar scan (sort once at the root, maintain
//! sorted order by stable partition, prefix-sum threshold scans) against
//! the naive algorithm it replaced, which re-sorted every attribute at
//! every node. The `presorted` timings measure [`find_best_split`] with
//! the [`NodeSet`] built outside the loop — the true per-node cost during
//! tree growth — while `naive` pays the per-node sort each call, as the
//! old implementation did.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use modeltree::split::{
    find_best_split, find_best_split_with, Columns, SortArena, Split, TargetStats,
};
use perfcounters::{Dataset, EventId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

/// The pre-rewrite algorithm: gather `(value, cpi)` pairs and sort every
/// attribute at every node, then scan thresholds with running sums.
fn naive_best_split(data: &Dataset, min_leaf: usize) -> Option<Split> {
    let n = data.len();
    if n < 2 * min_leaf {
        return None;
    }
    let cpi: Vec<f64> = data.cpis();
    let total_sum: f64 = cpi.iter().sum();
    let total_sum_sq: f64 = cpi.iter().map(|y| y * y).sum();
    let mean = total_sum / n as f64;
    let total_sd = (total_sum_sq / n as f64 - mean * mean).max(0.0).sqrt();
    if total_sd <= 0.0 {
        return None;
    }
    let mut best: Option<Split> = None;
    for event in EventId::ALL {
        let mut pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| (data.sample(i).get(event), cpi[i]))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pairs[0].0 == pairs[n - 1].0 {
            continue;
        }
        let mut left_n = 0.0;
        let mut left_sum = 0.0;
        let mut left_sum_sq = 0.0;
        for i in 0..n - 1 {
            let (value, y) = pairs[i];
            left_n += 1.0;
            left_sum += y;
            left_sum_sq += y * y;
            let next_value = pairs[i + 1].0;
            if value == next_value || i + 1 < min_leaf || n - i - 1 < min_leaf {
                continue;
            }
            let right_n = n as f64 - left_n;
            let sd = |count: f64, sum: f64, sum_sq: f64| -> f64 {
                let m = sum / count;
                (sum_sq / count - m * m).max(0.0).sqrt()
            };
            let left_sd = sd(left_n, left_sum, left_sum_sq);
            let right_sd = sd(right_n, total_sum - left_sum, total_sum_sq - left_sum_sq);
            let sdr = total_sd - (left_n / n as f64) * left_sd - (right_n / n as f64) * right_sd;
            if sdr > best.map_or(1e-12 * total_sd, |b| b.sdr) {
                best = Some(Split {
                    event,
                    threshold: 0.5 * (value + next_value),
                    sdr,
                });
            }
        }
    }
    best
}

fn bench_split_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_search");
    group.sample_size(20);
    for &n in &[5_000usize, 20_000, 50_000] {
        let mut rng = StdRng::seed_from_u64(20_080_403);
        let data = Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default());
        let min_leaf = (n / 120).max(4);

        let cols = Columns::new(&data);
        let mut arena = SortArena::root(&cols);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);

        group.bench_with_input(BenchmarkId::new("presorted", n), &(), |b, ()| {
            b.iter(|| find_best_split(&cols, &set, min_leaf, &stats, 1))
        });
        group.bench_with_input(BenchmarkId::new("presorted_par4", n), &(), |b, ()| {
            b.iter(|| find_best_split(&cols, &set, min_leaf, &stats, 4))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &data, |b, data| {
            b.iter(|| naive_best_split(data, min_leaf))
        });
    }
    group.finish();
}

/// The vectorized threshold scan against the scalar scan it shadows
/// bit-for-bit, at the root node where the scan is longest.
fn bench_split_scan_simd(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_scan_simd");
    group.sample_size(20);
    for &n in &[20_000usize, 50_000] {
        let mut rng = StdRng::seed_from_u64(20_080_403);
        let data = Suite::cpu2006().generate(&mut rng, n, &GeneratorConfig::default());
        let min_leaf = (n / 120).max(4);

        let cols = Columns::new(&data);
        let mut arena = SortArena::root(&cols);
        let set = arena.node_set();
        let stats = TargetStats::compute(cols.cpi, &set.indices);

        group.bench_with_input(BenchmarkId::new("scalar", n), &(), |b, ()| {
            b.iter(|| find_best_split_with(&cols, &set, min_leaf, &stats, 1, false))
        });
        group.bench_with_input(BenchmarkId::new("simd", n), &(), |b, ()| {
            b.iter(|| find_best_split_with(&cols, &set, min_leaf, &stats, 1, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_search, bench_split_scan_simd);
criterion_main!(benches);
