//! Criterion bench: prediction throughput (smoothed vs unsmoothed, and
//! compiled engine vs interpreted tree walk at full experiment scale).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use modeltree::{M5Config, ModelTree, Precision};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{cpu2006_dataset, fit_suite_tree};
use workloads::generator::{GeneratorConfig, Suite};

fn bench_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let data = Suite::cpu2006().generate(&mut rng, 10_000, &GeneratorConfig::default());
    let smoothed = ModelTree::fit(&data, &M5Config::default().with_min_leaf(100)).unwrap();
    let raw = ModelTree::fit(
        &data,
        &M5Config::default().with_min_leaf(100).with_smoothing(false),
    )
    .unwrap();
    let probe = Suite::cpu2006().generate(&mut rng, 1_000, &GeneratorConfig::default());

    let mut group = c.benchmark_group("predict");
    group.throughput(Throughput::Elements(probe.len() as u64));
    group.bench_function("smoothed", |b| b.iter(|| smoothed.predict_all(&probe)));
    group.bench_function("unsmoothed", |b| b.iter(|| raw.predict_all(&probe)));
    group.finish();
}

/// Compiled batch engine vs the interpreted per-sample tree walk on the
/// canonical 60k-sample CPU2006 dataset. The `bench_predict` binary
/// turns the same comparison into the `results/BENCH_predict.json`
/// snapshot.
fn bench_engines(c: &mut Criterion) {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let serial = tree.compile().with_n_threads(1);
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let parallel = tree.compile().with_n_threads(threads);

    let mut group = c.benchmark_group("predict_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("interpreted/60k", |b| {
        b.iter(|| {
            (0..data.len())
                .map(|i| tree.predict(data.sample(i)))
                .collect::<Vec<f64>>()
        })
    });
    group.bench_function("compiled_serial/60k", |b| {
        b.iter(|| serial.predict_batch(&data))
    });
    group.bench_function(&format!("compiled_par{threads}/60k"), |b| {
        b.iter(|| parallel.predict_batch(&data))
    });
    group.finish();
}

/// The three serial engine kernels head-to-head: scalar oracle, SIMD
/// f64 (bit-identical to it), and the quantized f32 fast path. CI's
/// bench-smoke `--test` pass keeps all three paths compiling and
/// running.
fn bench_simd(c: &mut Criterion) {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let scalar = tree.compile().with_n_threads(1).with_simd(false);
    let simd = tree.compile().with_n_threads(1).with_simd(true);
    let fast = tree
        .compile()
        .with_n_threads(1)
        .with_simd(true)
        .with_precision(Precision::F32Fast);

    let mut group = c.benchmark_group("predict_simd");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("scalar/60k", |b| b.iter(|| scalar.predict_batch(&data)));
    group.bench_function("simd_f64/60k", |b| b.iter(|| simd.predict_batch(&data)));
    group.bench_function("f32_fast/60k", |b| b.iter(|| fast.predict_batch(&data)));
    group.finish();
}

criterion_group!(benches, bench_predict, bench_engines, bench_simd);
criterion_main!(benches);
