//! Criterion bench: prediction throughput (smoothed vs unsmoothed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let data = Suite::cpu2006().generate(&mut rng, 10_000, &GeneratorConfig::default());
    let smoothed = ModelTree::fit(&data, &M5Config::default().with_min_leaf(100)).unwrap();
    let raw = ModelTree::fit(
        &data,
        &M5Config::default().with_min_leaf(100).with_smoothing(false),
    )
    .unwrap();
    let probe = Suite::cpu2006().generate(&mut rng, 1_000, &GeneratorConfig::default());

    let mut group = c.benchmark_group("predict");
    group.throughput(Throughput::Elements(probe.len() as u64));
    group.bench_function("smoothed", |b| b.iter(|| smoothed.predict_all(&probe)));
    group.bench_function("unsmoothed", |b| b.iter(|| raw.predict_all(&probe)));
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
