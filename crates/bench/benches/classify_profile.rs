//! Criterion bench: classifying samples through a tree and building the
//! Table II/IV profile tables.

use characterize::ProfileTable;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_classify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let data = Suite::cpu2006().generate(&mut rng, 20_000, &GeneratorConfig::default());
    let tree = ModelTree::fit(&data, &M5Config::default().with_min_leaf(200)).unwrap();

    let mut group = c.benchmark_group("classify_profile");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("classify_20k", |b| {
        b.iter(|| {
            (0..data.len())
                .map(|i| tree.classify(data.sample(i)))
                .sum::<usize>()
        })
    });
    group.bench_function("profile_table_20k", |b| {
        b.iter(|| ProfileTable::build(&tree, &data))
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
