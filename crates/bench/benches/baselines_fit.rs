//! Criterion bench: baseline regressors vs M5' fit cost (experiment
//! E10's training stage).

use baselines::{CartConfig, KnnRegressor, OlsRegressor, RegressionTree};
use criterion::{criterion_group, criterion_main, Criterion};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_baselines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data = Suite::cpu2006().generate(&mut rng, 8_000, &GeneratorConfig::default());

    let mut group = c.benchmark_group("baselines_fit");
    group.sample_size(10);
    group.bench_function("m5_8k", |b| {
        b.iter(|| ModelTree::fit(&data, &M5Config::default().with_min_leaf(80)).unwrap())
    });
    group.bench_function("ols_8k", |b| b.iter(|| OlsRegressor::fit(&data).unwrap()));
    group.bench_function("cart_8k", |b| {
        b.iter(|| RegressionTree::fit(&data, CartConfig::default()).unwrap())
    });
    group.bench_function("knn_fit_8k", |b| {
        b.iter(|| KnnRegressor::fit(&data, 15).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
