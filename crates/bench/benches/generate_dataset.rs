//! Criterion bench: workload + counter-bank dataset generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_dataset");
    group.throughput(Throughput::Elements(10_000));
    for (name, suite) in [("cpu2006", Suite::cpu2006()), ("omp2001", Suite::omp2001())] {
        group.bench_with_input(BenchmarkId::new(name, 10_000), &suite, |b, suite| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                suite.generate(&mut rng, 10_000, &GeneratorConfig::default())
            })
        });
    }
    // Oracle (noise-free) counters for comparison.
    let mut oracle = GeneratorConfig::default();
    oracle.counters.multiplexing_noise = false;
    group.bench_function("cpu2006_oracle_counters", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            Suite::cpu2006().generate(&mut rng, 10_000, &oracle)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
