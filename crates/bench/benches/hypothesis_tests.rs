//! Criterion bench: the Section VI statistical tests at paper-scale
//! sample counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_stats::nonparametric::{levene_test, mann_whitney_u, LeveneCenter};
use spec_stats::ttest::{two_sample_t_test, welch_t_test};

fn bench_tests(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a: Vec<f64> = (0..100_000)
        .map(|_| mathkit::sampling::normal(&mut rng, 0.96, 0.53))
        .collect();
    let b: Vec<f64> = (0..100_000)
        .map(|_| mathkit::sampling::normal(&mut rng, 1.21, 0.60))
        .collect();

    let mut group = c.benchmark_group("hypothesis_tests");
    group.bench_function("welch_t_100k", |bch| {
        bch.iter(|| welch_t_test(&a, &b).unwrap())
    });
    group.bench_function("pooled_t_100k", |bch| {
        bch.iter(|| two_sample_t_test(&a, &b).unwrap())
    });
    group.bench_function("mann_whitney_100k", |bch| {
        bch.iter(|| mann_whitney_u(&a, &b).unwrap())
    });
    group.bench_function("levene_100k", |bch| {
        bch.iter(|| levene_test(&a, &b, LeveneCenter::Median).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
