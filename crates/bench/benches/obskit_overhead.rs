//! Criterion bench: the cost of obskit call sites, disabled vs enabled.
//!
//! The disabled path of every metric/span operation is a single relaxed
//! atomic load — `disabled/*` groups measure that directly and back the
//! "<1% overhead when telemetry is off" claim at the per-operation
//! level. `enabled/*` groups measure the live cost (atomic RMW for
//! counters, clock reads + buffer push for spans). `fit_2k` measures a
//! whole instrumented M5' fit both ways, which is the end-to-end form
//! of the same claim.

use criterion::{criterion_group, criterion_main, Criterion};
use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use workloads::generator::{GeneratorConfig, Suite};

fn bench_ops(c: &mut Criterion) {
    use obskit::metrics::{add, observe, Hist, Metric};
    for (state, metrics, tracing) in [("disabled", false, false), ("enabled", true, true)] {
        obskit::set_enabled(metrics, tracing);
        let mut group = c.benchmark_group(state);
        group.bench_function("counter_add", |b| {
            b.iter(|| add(black_box(Metric::EngineRowsPredicted), black_box(3)))
        });
        group.bench_function("hist_observe", |b| {
            b.iter(|| observe(black_box(Hist::EngineBatchRows), black_box(4096)))
        });
        group.bench_function("span", |b| {
            b.iter(|| {
                obskit::span::reset();
                black_box(obskit::span(black_box("bench"), black_box("bench.span")))
            })
        });
        group.finish();
        obskit::set_enabled(false, false);
        obskit::span::reset();
        obskit::metrics::reset();
    }
}

fn bench_fit(c: &mut Criterion) {
    let data = Suite::cpu2006().generate(
        &mut StdRng::seed_from_u64(1),
        2_000,
        &GeneratorConfig::default(),
    );
    let config = M5Config::default().with_min_leaf(16);
    let mut group = c.benchmark_group("fit_2k");
    group.sample_size(10);
    for (state, metrics, tracing) in [("disabled", false, false), ("enabled", true, true)] {
        obskit::set_enabled(metrics, tracing);
        group.bench_function(state, |b| {
            b.iter(|| {
                obskit::span::reset();
                ModelTree::fit(&data, &config).unwrap()
            })
        });
        obskit::set_enabled(false, false);
    }
    group.finish();
    obskit::span::reset();
    obskit::metrics::reset();
}

criterion_group!(benches, bench_ops, bench_fit);
criterion_main!(benches);
