//! Cross-generation transfer-matrix throughput: warm vs cold.
//!
//! Runs the E8 N×N matrix twice against a fresh private store. The
//! cold pass pays suite generation, splitting, fitting, and member-set
//! generation for every registered suite; the warm pass replays every
//! artifact from disk and must perform **zero** generation and **zero**
//! fitting — asserted both on the context's stage counters and on the
//! global `pipeline.*` obskit counters. The warm store is then used to
//! prove the assembled matrix is bit-identical for 1, 2, and 8 worker
//! threads.
//!
//! `cargo run --release -p spec-bench --bin bench_matrix -- [--smoke] [output.json]`
//! (default output: `results/BENCH_matrix.json`; `--smoke` runs the
//! CI-scale spec).

use std::time::Instant;

use pipeline::{ArtifactStore, PipelineContext, StageCounters};
use serde_json::json;
use spec_bench::artifacts::generation_matrix;
use transfer::{MatrixSpec, TransferMatrix};

fn counters_json(c: &StageCounters) -> serde_json::Value {
    json!({
        "datasets_generated": c.datasets_generated,
        "datasets_loaded": c.datasets_loaded,
        "splits_computed": c.splits_computed,
        "trees_fitted": c.trees_fitted,
        "trees_loaded": c.trees_loaded,
        "corrupt_evicted": c.corrupt_evicted,
    })
}

fn pipeline_metric(name: &str) -> u64 {
    obskit::metrics::snapshot().get(name).unwrap_or(0)
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    obskit::set_enabled(true, false);
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let path = args
        .into_iter()
        .next()
        .unwrap_or_else(|| "results/BENCH_matrix.json".into());
    let spec = if smoke {
        MatrixSpec::smoke()
    } else {
        MatrixSpec::canonical()
    };
    let n = spec.suites.len();
    let n_cells = n * n;
    let threads = 4;

    // A private store keeps the cold pass genuinely cold regardless of
    // what the environment-selected cache already holds.
    let root = std::env::temp_dir().join(format!("specrepro-bench-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::open(&root);

    let cold_ctx = PipelineContext::with_store(store.clone()).with_logging(false);
    let start = Instant::now();
    let cold = TransferMatrix::assess_all(&cold_ctx, &spec, threads).expect("cold matrix");
    let t_cold = start.elapsed().as_secs_f64();
    let cold_counters = cold_ctx.counters();
    assert!(
        cold_counters.datasets_generated > 0,
        "cold pass must generate"
    );
    assert_eq!(
        cold_counters.trees_fitted, n,
        "cold pass fits one tree per suite"
    );

    let fits_before = pipeline_metric("pipeline.tree_misses");
    let gens_before = pipeline_metric("pipeline.dataset_misses");
    let warm_ctx = PipelineContext::with_store(store.clone()).with_logging(false);
    let start = Instant::now();
    let warm = TransferMatrix::assess_all(&warm_ctx, &spec, threads).expect("warm matrix");
    let t_warm = start.elapsed().as_secs_f64();
    let warm_counters = warm_ctx.counters();
    assert_eq!(warm_counters.datasets_generated, 0, "warm pass regenerated");
    assert_eq!(warm_counters.trees_fitted, 0, "warm pass refit");
    assert_eq!(warm_counters.splits_computed, 0, "warm pass resplit");
    let warm_fits = pipeline_metric("pipeline.tree_misses") - fits_before;
    let warm_gens = pipeline_metric("pipeline.dataset_misses") - gens_before;
    assert_eq!(warm_fits, 0, "obskit saw tree misses on the warm pass");
    assert_eq!(warm_gens, 0, "obskit saw dataset misses on the warm pass");

    let rendered = generation_matrix(&warm);
    assert_eq!(
        rendered,
        generation_matrix(&cold),
        "warm matrix is not bit-identical to the cold run"
    );
    for extra_threads in [1, 8] {
        let ctx = PipelineContext::with_store(store.clone()).with_logging(false);
        let again = TransferMatrix::assess_all(&ctx, &spec, extra_threads).expect("rerun matrix");
        assert_eq!(
            rendered,
            generation_matrix(&again),
            "{extra_threads}-thread matrix diverged"
        );
    }

    let report = json!({
        "experiment": "E8 cross-generation transfer matrix: warm vs cold",
        "spec": {
            "mode": if smoke { "smoke" } else { "canonical" },
            "suites": spec.suites.iter().map(|s| s.tag()).collect::<Vec<_>>(),
            "n_cells": n_cells,
            "n_samples": spec.n_samples,
            "train_fraction": spec.train_fraction,
            "member_samples": spec.member_samples,
            "threads": threads,
        },
        "cold": {
            "seconds": t_cold,
            "cells_per_sec": n_cells as f64 / t_cold,
            "counters": counters_json(&cold_counters),
        },
        "warm": {
            "seconds": t_warm,
            "cells_per_sec": n_cells as f64 / t_warm,
            "counters": counters_json(&warm_counters),
        },
        "speedup_warm_vs_cold": t_cold / t_warm,
        // Cells are pure functions of resolved artifacts, striped
        // deterministically across workers and assembled in index
        // order; verified above for 1, 2 (implicit via `threads`=4
        // cold/warm equality), and 8 workers.
        "thread_bit_identity": "identical for 1, 4, and 8 worker threads",
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");
    let _ = store.clear();

    println!(
        "cold  {t_cold:>8.3} s  ({:.1} cells/s: generate + split + fit + assess)",
        n_cells as f64 / t_cold
    );
    println!(
        "warm  {t_warm:>8.3} s  ({:.1} cells/s: replay + assess)",
        n_cells as f64 / t_warm
    );
    println!(
        "speedup {:.1}x; zero warm fits; bit-identical across 1/4/8 threads",
        t_cold / t_warm
    );
    println!("wrote {path}");
}
