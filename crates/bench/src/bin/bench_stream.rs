//! Streaming ingestion and out-of-core refit snapshot.
//!
//! Seals a simulated fleet into a chunked `SPDC` container and
//! measures three things the streaming design claims:
//!
//! 1. **Ingest throughput** — rows/s through the sharded aggregator
//!    into the sealed container, clean and under the standard fault
//!    schedule (drops, duplicates, reorders, host deaths, torn chunk
//!    writes).
//! 2. **Out-of-core overhead** — fitting every sliding window through
//!    `ChunkedReader::window_dataset` (only one window resident at a
//!    time) versus fitting the same windows from a fully materialized
//!    in-memory dataset. The trees must be bit-identical; only the
//!    I/O overhead may differ.
//! 3. **Refit latency** — cold (fit + store) versus warm
//!    (fingerprint-keyed artifact-store replay) window refits.
//!
//! The container deliberately holds at least 4x the rows the refit
//! loop is allowed to hold in memory at once (one window), which is
//! the out-of-core acceptance bar; the run asserts it.
//!
//! `cargo run --release -p spec-bench --bin bench_stream [--smoke] [output.json]`
//! (default output: `results/BENCH_stream.json`).

use std::io::BufReader;
use std::time::Instant;

use modeltree::{M5Config, ModelTree};
use pipeline::{ArtifactStore, ChunkedReader};
use serde_json::json;
use stream::{windowed_refit, FaultConfig, FleetConfig, RefitConfig, StreamConfig, StreamPlan};

struct BenchConfig {
    hosts: u64,
    intervals: u32,
    chunk_rows: usize,
    window_rows: u64,
    shards: usize,
    threads: usize,
    min_leaf: usize,
}

const SEED: u64 = 20_060_828;
const FAULT_SEED: u64 = 7;

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let mut smoke = false;
    let mut path = "results/BENCH_stream.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    let cfg = if smoke {
        BenchConfig {
            hosts: 120,
            intervals: 40,
            chunk_rows: 256,
            window_rows: 1024,
            shards: 4,
            threads: 2,
            min_leaf: 60,
        }
    } else {
        BenchConfig {
            hosts: 2000,
            intervals: 60,
            chunk_rows: 1024,
            window_rows: 16_384,
            shards: 8,
            threads: 4,
            min_leaf: 300,
        }
    };

    let dir = std::env::temp_dir().join(format!("specrepro-bench-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // 1. Ingest throughput, clean and faulted.
    let fleet = FleetConfig::cpu2006(cfg.hosts, cfg.intervals, SEED);
    let clean_cfg = StreamConfig::new(fleet)
        .with_shards(cfg.shards)
        .with_threads(cfg.threads)
        .with_chunk_rows(cfg.chunk_rows);
    let clean_path = dir.join("clean.spdc");
    let start = Instant::now();
    let clean = stream::run_stream(&clean_cfg, &clean_path).expect("clean ingest");
    let t_clean = start.elapsed().as_secs_f64();

    let faulted_cfg = clean_cfg
        .clone()
        .with_faults(FaultConfig::standard(FAULT_SEED));
    let faulted_path = dir.join("faulted.spdc");
    let start = Instant::now();
    let faulted = stream::run_stream(&faulted_cfg, &faulted_path).expect("faulted ingest");
    let t_faulted = start.elapsed().as_secs_f64();
    assert!(faulted.retransmits > 0, "fault schedule injected nothing");

    // Every sealed chunk must pass its integrity hash when read back.
    let mut reader = ChunkedReader::open(BufReader::new(
        std::fs::File::open(&faulted_path).expect("reopen faulted container"),
    ))
    .expect("open faulted container");
    for i in 0..reader.n_chunks() {
        reader.read_chunk(i).expect("faulted chunk verifies");
    }

    // 2. Out-of-core vs in-memory window fits over the clean container.
    let mut reader = ChunkedReader::open(BufReader::new(
        std::fs::File::open(&clean_path).expect("reopen clean container"),
    ))
    .expect("open clean container");
    let total_rows = reader.n_rows();
    assert!(
        total_rows >= 4 * cfg.window_rows,
        "container holds {total_rows} rows, need >= 4x the {}-row in-memory window budget",
        cfg.window_rows
    );
    let m5 = M5Config::default().with_min_leaf(cfg.min_leaf);
    let refit_cfg = RefitConfig::new(cfg.window_rows, m5);
    let windows = refit_cfg.windows(total_rows);

    let start = Instant::now();
    let ooc_trees: Vec<ModelTree> = windows
        .iter()
        .map(|w| {
            let data = reader.window_dataset(w.clone()).expect("window dataset");
            ModelTree::fit(&data, &m5).expect("ooc fit")
        })
        .collect();
    let t_ooc = start.elapsed().as_secs_f64();

    let plan = StreamPlan::new(&clean_cfg);
    let full = plan.naive_dataset();
    assert_eq!(full.len() as u64, total_rows, "oracle row count");
    let start = Instant::now();
    let mem_trees: Vec<ModelTree> = windows
        .iter()
        .map(|w| {
            let rows: Vec<u32> = (w.start as u32..w.end as u32).collect();
            ModelTree::fit_indices(&full, &rows, &m5).expect("in-memory fit")
        })
        .collect();
    let t_mem = start.elapsed().as_secs_f64();
    for (o, m) in ooc_trees.iter().zip(&mem_trees) {
        assert_eq!(
            serde_json::to_string(o).unwrap(),
            serde_json::to_string(m).unwrap(),
            "out-of-core window fit diverged from the in-memory fit"
        );
    }

    // 3. Cold vs warm refit latency through the artifact store.
    let store = ArtifactStore::open(dir.join("store"));
    let start = Instant::now();
    let cold = windowed_refit(&mut reader, &store, &refit_cfg).expect("cold refit");
    let t_cold = start.elapsed().as_secs_f64();
    assert!(cold.iter().all(|f| !f.cached), "cold pass hit the cache");
    let start = Instant::now();
    let warm = windowed_refit(&mut reader, &store, &refit_cfg).expect("warm refit");
    let t_warm = start.elapsed().as_secs_f64();
    assert!(warm.iter().all(|f| f.cached), "warm pass missed the cache");
    let mean_ms = |fits: &[stream::WindowFit]| -> f64 {
        fits.iter().map(|f| f.refit_ns as f64 / 1e6).sum::<f64>() / fits.len().max(1) as f64
    };

    let report = json!({
        "experiment": "fleet streaming: ingest, out-of-core refit, warm-start latency",
        "smoke": smoke,
        "config": {
            "hosts": cfg.hosts,
            "intervals_per_host": cfg.intervals,
            "seed": SEED,
            "fault_seed": FAULT_SEED,
            "shards": cfg.shards,
            "threads": cfg.threads,
            "chunk_rows": cfg.chunk_rows,
            "window_rows": cfg.window_rows,
            "min_leaf": cfg.min_leaf,
        },
        "ingest": {
            "clean": {
                "seconds": t_clean,
                "rows": clean.rows,
                "chunks": clean.chunks,
                "rows_per_sec": clean.rows as f64 / t_clean,
            },
            "faulted": {
                "seconds": t_faulted,
                "rows": faulted.rows,
                "chunks": faulted.chunks,
                "rows_per_sec": faulted.rows as f64 / t_faulted,
                "duplicates_dropped": faulted.duplicates_dropped,
                "retransmits": faulted.retransmits,
                "faults_injected": faulted.faults_injected,
                "torn_writes_repaired": faulted.torn_writes_repaired,
                "all_chunks_verify": true,
            },
        },
        "out_of_core": {
            "total_rows": total_rows,
            "in_memory_budget_rows": cfg.window_rows,
            "budget_ratio": total_rows as f64 / cfg.window_rows as f64,
            "windows": windows.len(),
            "ooc_fit_seconds": t_ooc,
            "in_memory_fit_seconds": t_mem,
            "overhead_ratio": t_ooc / t_mem,
            "trees_bit_identical": true,
        },
        "refit": {
            "windows": cold.len(),
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "cold_mean_ms": mean_ms(&cold),
            "warm_mean_ms": mean_ms(&warm),
            "warm_cache_hits": warm.iter().filter(|f| f.cached).count(),
            "speedup_warm_vs_cold": t_cold / t_warm,
        },
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "ingest  clean {:>9.0} rows/s   faulted {:>9.0} rows/s ({} retransmits, {} torn repairs)",
        clean.rows as f64 / t_clean,
        faulted.rows as f64 / t_faulted,
        faulted.retransmits,
        faulted.torn_writes_repaired,
    );
    println!(
        "ooc     {:.3} s vs in-memory {:.3} s over {} windows ({:.0}% overhead, {:.1}x budget)",
        t_ooc,
        t_mem,
        windows.len(),
        100.0 * (t_ooc / t_mem - 1.0),
        total_rows as f64 / cfg.window_rows as f64,
    );
    println!(
        "refit   cold {:.3} s, warm {:.3} s ({:.1}x, {} cache hits)",
        t_cold,
        t_warm,
        t_cold / t_warm,
        warm.len(),
    );
    println!("wrote {path}");
}
