//! Tail-latency and throughput snapshot for the prediction server.
//!
//! Self-hosts the canonical CPU2006 model behind `serve::Server` twice
//! — once with the coalescing window **disabled** (`window = 0`, every
//! request runs as its own batch: the honest unbatched baseline) and
//! once with the production batching policy (200 µs window, 4096-row
//! batches) — and drives both with the crate's own load generator:
//!
//! * **Saturate** sweeps measure each configuration's sustained
//!   throughput ceiling under an identical drive (closed-loop,
//!   pipelined keep-alive connections).
//! * An **open-loop** run at a fixed 100k req/s arrival rate reports
//!   coordinated-omission-safe p50/p99 latency, measured from each
//!   request's *scheduled* arrival.
//!
//! The JSON snapshot records the acceptance criteria: batched
//! throughput ≥ 100k single-row predict req/s on the 1-vCPU bench
//! container, and the batched/unbatched throughput ratio. The
//! end-to-end ratio on this container is Amdahl-limited: the work
//! batching amortizes (engine dispatch, dataset assembly, batcher
//! wakeups — ~600ns/row unbatched vs ~95ns/row batched, per-row
//! averages from the `serve.*` metrics) is a minority of each
//! request's cost next to the shared HTTP parse/render path and the
//! load generator itself, all of which time-share the single core.
//! `benches/serve_kernel.rs` isolates the kernel-dispatch win
//! (3–4× at batch 1) where the shared path doesn't mask it.
//!
//! `cargo run --release -p spec-bench --bin bench_serve [output.json]`
//! (default output: `results/BENCH_serve.json`).
//!
//! `--smoke [--addr HOST:PORT] [--shutdown]` runs a small mixed
//! predict/classify burst instead — against `--addr` if given (waiting
//! for `/healthz` first), else against a self-hosted throwaway model —
//! asserting every request answers 2xx; `--shutdown` then POSTs
//! `/shutdown` and verifies the drain. CI's serve smoke job uses this
//! against a `specrepro serve` process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use modeltree::{M5Config, ModelTree};
use pipeline::PipelineContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use serve::{
    CoalescerConfig, LoadgenConfig, LoadgenReport, Mode, ModelRegistry, Server, ServerConfig,
};
use spec_bench::{cpu2006_artifacts, N_SAMPLES, SEED_CPU2006};
use workloads::generator::{GeneratorConfig, Suite};

const WINDOW_US: u64 = 200;
const MAX_BATCH_ROWS: usize = 4096;

fn start_server(tree: &ModelTree, window_us: u64) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry.register_tree("cpu2006", tree);
    Server::start(
        registry,
        ServerConfig {
            coalescer: CoalescerConfig {
                window: Duration::from_micros(window_us),
                max_batch_rows: MAX_BATCH_ROWS,
                queue_rows: 1 << 20,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral serve port")
}

fn drive(
    addr: &str,
    rows: &[Vec<f64>],
    total: usize,
    connections: usize,
    mode: Mode,
) -> LoadgenReport {
    let report = serve::loadgen::run(
        &LoadgenConfig {
            addr: addr.to_string(),
            connections,
            total_requests: total,
            classify_fraction: 0.0,
            mode,
        },
        rows,
    )
    .expect("load generator runs");
    assert_eq!(
        report.failed, 0,
        "bench traffic must not fail requests: {report:?}"
    );
    report
}

fn report_json(tag: &str, r: &LoadgenReport) -> serde_json::Value {
    json!({
        "mode": tag,
        "requests": r.sent,
        "ok": r.ok,
        "rejected_429": r.rejected,
        "elapsed_secs": r.elapsed.as_secs_f64(),
        "throughput_rps": r.throughput.round(),
        "p50_us": r.p50_us,
        "p99_us": r.p99_us,
        "max_us": r.max_us,
    })
}

/// One raw HTTP exchange on a fresh connection; returns the status.
fn raw_exchange(addr: &str, request: &[u8]) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request)?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad response: {head:.80}")))
}

/// Probe rows for request payloads: a stride through the dataset so
/// consecutive requests exercise different leaves.
fn payload_rows(data: &perfcounters::Dataset, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| data.sample((i * 7) % data.len()).densities().to_vec())
        .collect()
}

fn smoke(args: &[String]) {
    let mut addr = None;
    let mut shutdown = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => {}
            "--addr" => addr = Some(iter.next().expect("--addr needs HOST:PORT").clone()),
            "--shutdown" => shutdown = true,
            other => panic!("unknown smoke flag {other:?}"),
        }
    }

    // A throwaway workload supplies payloads either way; the target
    // server's own model shapes the predictions, not this dataset.
    let mut rng = StdRng::seed_from_u64(7);
    let data = Suite::cpu2006().generate(&mut rng, 4000, &GeneratorConfig::default());
    let rows = payload_rows(&data, 64);

    let hosted;
    let addr = match addr {
        Some(addr) => {
            // Wait for the external server to answer /healthz.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match raw_exchange(&addr, b"GET /healthz HTTP/1.1\r\n\r\n") {
                    Ok(200) => break,
                    _ if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    other => panic!("server at {addr} never became healthy: {other:?}"),
                }
            }
            addr
        }
        None => {
            let tree = ModelTree::fit(&data, &M5Config::default()).expect("fit smoke model");
            hosted = start_server(&tree, WINDOW_US);
            hosted.addr().to_string()
        }
    };

    let total = 2000;
    let report = serve::loadgen::run(
        &LoadgenConfig {
            addr: addr.clone(),
            connections: 2,
            total_requests: total,
            classify_fraction: 0.25,
            mode: Mode::Saturate { inflight: 16 },
        },
        &rows,
    )
    .expect("smoke load runs");
    assert_eq!(
        report.ok, total,
        "smoke: every request must answer 2xx: {report:?}"
    );
    println!(
        "serve smoke ok: {} mixed predict/classify requests, all 2xx, {:.0} req/s, p99 {:.0} us",
        report.ok, report.throughput, report.p99_us
    );
    if shutdown {
        let status = raw_exchange(
            &addr,
            b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("shutdown exchange");
        assert_eq!(status, 200, "shutdown must be acknowledged");
        println!("serve smoke: shutdown acknowledged");
    }
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke(&args);
        return;
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serve.json".into());

    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    let rows = payload_rows(&data, 512);

    // Both saturate runs use an identical drive: 4 pipelined keep-alive
    // connections, 128 requests in flight each.
    let (conns, inflight) = (4, 128);

    // Unbatched baseline: window = 0, every request is its own batch.
    obskit::set_enabled(true, false);
    let before = obskit::metrics::snapshot();
    let server = start_server(&tree, 0);
    let unbatched = drive(
        &server.addr().to_string(),
        &rows,
        100_000,
        conns,
        Mode::Saturate { inflight },
    );
    server.shutdown();
    let after = obskit::metrics::snapshot();
    let unbatched_batches =
        after.get("serve.batches").unwrap_or(0) - before.get("serve.batches").unwrap_or(0);

    // Production batching policy: saturation ceiling, then open-loop
    // tail latency at the 100k req/s acceptance rate.
    let mid = obskit::metrics::snapshot();
    let server = start_server(&tree, WINDOW_US);
    let addr = server.addr().to_string();
    let batched = drive(&addr, &rows, 200_000, conns, Mode::Saturate { inflight });
    let batched_metrics = obskit::metrics::snapshot();
    let batched_batches =
        batched_metrics.get("serve.batches").unwrap_or(0) - mid.get("serve.batches").unwrap_or(0);
    let batched_rows = (batched_metrics.get("serve.rows_predicted").unwrap_or(0)
        - mid.get("serve.rows_predicted").unwrap_or(0)) as f64;
    let open_loop = drive(&addr, &rows, 150_000, 2, Mode::OpenLoop { rate: 100_000.0 });
    server.shutdown();

    let speedup = batched.throughput / unbatched.throughput.max(1e-9);
    let avg_batch_rows = batched_rows / batched_batches.max(1) as f64;
    let report = json!({
        "experiment": "prediction server throughput and tail latency (batched vs unbatched)",
        "dataset": { "suite": "cpu2006", "seed": SEED_CPU2006, "n_samples": N_SAMPLES },
        "tree": { "n_leaves": tree.n_leaves(), "n_nodes": tree.n_nodes() },
        "server": {
            "window_us": WINDOW_US,
            "max_batch_rows": MAX_BATCH_ROWS,
            "request": "single-row POST /predict, text body, keep-alive",
        },
        "drive": {
            "connections": conns,
            "inflight_per_connection": inflight,
            "note": "identical closed-loop drive for both configurations; loadgen shares the single vCPU with the server",
        },
        "unbatched_saturate": report_json("saturate window=0", &unbatched),
        "batched_saturate": report_json("saturate window=200us", &batched),
        "open_loop_100k": report_json("open-loop 100k req/s", &open_loop),
        "coalescing": {
            "unbatched_engine_calls": unbatched_batches,
            "batched_engine_calls": batched_batches,
            "batched_avg_rows_per_engine_call": avg_batch_rows,
        },
        "acceptance": {
            "batched_throughput_rps": batched.throughput.round(),
            "meets_100k_rps": batched.throughput >= 100_000.0,
            "batching_speedup": speedup,
            "meets_3x_over_unbatched": speedup >= 3.0,
            "note": "End-to-end speedup is Amdahl-limited on one vCPU: HTTP parse/render and the in-process load generator (~3.4us/request) are shared by both configurations and dwarf the batch-amortizable engine path (~600ns/row unbatched vs ~95ns/row batched). The engine-call count above shows the coalescer doing its job; benches/serve_kernel.rs isolates the per-call dispatch win (3-4x at batch=1).",
        },
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");

    println!(
        "unbatched (window=0)   {:>10.0} req/s  p99 {:>8.0} us",
        unbatched.throughput, unbatched.p99_us
    );
    println!(
        "batched   (200us/4096) {:>10.0} req/s  p99 {:>8.0} us  ({speedup:.1}x unbatched)",
        batched.throughput, batched.p99_us
    );
    println!(
        "open loop @100k req/s  {:>10.0} req/s  p50 {:>6.0} us  p99 {:>8.0} us",
        open_loop.throughput, open_loop.p50_us, open_loop.p99_us
    );
    println!("wrote {path}");
}
