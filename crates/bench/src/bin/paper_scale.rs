//! Section VI at the paper's exact scale.
//!
//! The paper's training set held n = 208,373 samples (10% of the SPEC
//! CPU2006 data) and the OMP2001 test set m = 135,582 samples. This
//! binary regenerates the Section VI statistics at those exact counts so
//! the t statistics are directly comparable to the published
//! t = 1.212 (within-suite, accepted) and t = 125.384 (cross-suite,
//! rejected).
//!
//! This is the heavyweight experiment (~3.4M samples end to end);
//! everything else in the workspace uses the 60k-sample configuration.
//! The datasets, splits, and trees resolve through the pipeline's
//! artifact store, so a warm rerun (same divisor) goes straight to the
//! statistics.
//!
//! `cargo run --release -p spec-bench --bin paper_scale [scale_divisor]`
//! — pass e.g. `10` to run at one tenth of the paper's counts.

use std::io::Write;

use pipeline::{
    output, DatasetInput, DatasetSpec, PipelineContext, SuiteKind, TransferPart, TransferSplitSpec,
    TreeSpec,
};
use spec_bench::{suite_tree_config, SEED_CPU2006, SEED_OMP2001, SEED_SPLIT};
use transfer::{TransferConfig, TransferabilityReport};

/// The paper's SPEC CPU2006 sample count (10% of it = its n = 208,373).
const PAPER_CPU_SAMPLES: usize = 2_083_730;
/// The paper's SPEC OMP2001 test-set size (m = 135,582) times ten.
const PAPER_OMP_SAMPLES: usize = 1_355_820;

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let divisor: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1)
        .max(1);
    let n_cpu = PAPER_CPU_SAMPLES / divisor;
    let n_omp = PAPER_OMP_SAMPLES / divisor;
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();

    let spec = TransferSplitSpec {
        cpu: DatasetSpec::new(SuiteKind::cpu2006(), n_cpu, SEED_CPU2006),
        omp: DatasetSpec::new(SuiteKind::omp2001(), n_omp, SEED_OMP2001),
        seed: SEED_SPLIT,
        fraction: 0.10,
    };

    eprintln!("resolving {n_cpu} CPU2006 + {n_omp} OMP2001 samples ...");
    let t0 = std::time::Instant::now();
    let split = ctx.transfer_split(&spec).expect("suites generate");
    eprintln!("datasets + splits resolved in {:.1?}", t0.elapsed());
    // The paper's cross-suite test sets are the other suite's randomly
    // selected 10% sets (m = 135,582 for OMP2001).
    let _ = writeln!(
        out,
        "paper scale: n = {} train samples (paper: 208,373), OMP cross-test m = {} (paper: 135,582)\n",
        split.cpu_train.len(),
        split.omp_train.len()
    );

    let t0 = std::time::Instant::now();
    let cpu_tree = ctx
        .tree(&TreeSpec {
            input: DatasetInput::TransferPart(spec.clone(), TransferPart::CpuTrain),
            config: suite_tree_config(spec.cpu_train_len()),
        })
        .expect("cpu fit");
    eprintln!("CPU2006 10% tree resolved in {:.1?}", t0.elapsed());
    let t0 = std::time::Instant::now();
    let omp_tree = ctx
        .tree(&TreeSpec {
            input: DatasetInput::TransferPart(spec.clone(), TransferPart::OmpTrain),
            config: suite_tree_config(spec.omp_train_len()),
        })
        .expect("omp fit");
    eprintln!("OMP2001 10% tree resolved in {:.1?}", t0.elapsed());

    let tconfig = TransferConfig::default();
    for (tree, train, test, a, b) in [
        (
            &cpu_tree,
            &split.cpu_train,
            &split.cpu_rest,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
        ),
        (
            &cpu_tree,
            &split.cpu_train,
            &split.omp_train,
            "CPU2006 (10%)",
            "OMP2001 (10%)",
        ),
        (
            &omp_tree,
            &split.omp_train,
            &split.omp_rest,
            "OMP2001 (10%)",
            "OMP2001 (rest)",
        ),
        (
            &omp_tree,
            &split.omp_train,
            &split.cpu_train,
            "OMP2001 (10%)",
            "CPU2006 (10%)",
        ),
    ] {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &tconfig)
            .expect("large datasets");
        let _ = writeln!(out, "{}", report.render());
    }
    let _ = writeln!(
        out,
        "paper comparison: within-suite t = 1.212 (accepted); cross-suite t = 125.384"
    );
    let _ = writeln!(
        out,
        "(rejected); C = 0.9214 / MAE = 0.0988 within, C = 0.4337 / MAE = 0.3721 across."
    );
}
