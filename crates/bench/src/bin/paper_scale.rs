//! Section VI at the paper's exact scale.
//!
//! The paper's training set held n = 208,373 samples (10% of the SPEC
//! CPU2006 data) and the OMP2001 test set m = 135,582 samples. This
//! binary regenerates the Section VI statistics at those exact counts so
//! the t statistics are directly comparable to the published
//! t = 1.212 (within-suite, accepted) and t = 125.384 (cross-suite,
//! rejected).
//!
//! This is the heavyweight experiment (~3.4M samples end to end);
//! everything else in the workspace uses the 60k-sample configuration.
//!
//! `cargo run --release -p spec-bench --bin paper_scale [scale_divisor]`
//! — pass e.g. `10` to run at one tenth of the paper's counts.

use modeltree::ModelTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{suite_tree_config, SEED_CPU2006, SEED_OMP2001, SEED_SPLIT};
use transfer::{TransferConfig, TransferabilityReport};
use workloads::generator::{GeneratorConfig, Suite};

/// The paper's SPEC CPU2006 sample count (10% of it = its n = 208,373).
const PAPER_CPU_SAMPLES: usize = 2_083_730;
/// The paper's SPEC OMP2001 test-set size (m = 135,582) times ten.
const PAPER_OMP_SAMPLES: usize = 1_355_820;

fn main() {
    let divisor: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1)
        .max(1);
    let n_cpu = PAPER_CPU_SAMPLES / divisor;
    let n_omp = PAPER_OMP_SAMPLES / divisor;
    let config = GeneratorConfig::default();

    eprintln!("generating {n_cpu} CPU2006 + {n_omp} OMP2001 samples ...");
    let t0 = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006);
    let cpu = Suite::cpu2006().generate(&mut rng, n_cpu, &config);
    let mut rng = StdRng::seed_from_u64(SEED_OMP2001);
    let omp = Suite::omp2001().generate(&mut rng, n_omp, &config);
    eprintln!("generated in {:.1?}", t0.elapsed());

    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.10);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.10);
    // The paper's cross-suite test sets are the other suite's randomly
    // selected 10% sets (m = 135,582 for OMP2001).
    println!(
        "paper scale: n = {} train samples (paper: 208,373), OMP cross-test m = {} (paper: 135,582)\n",
        cpu_train.len(),
        omp_train.len()
    );

    let t0 = std::time::Instant::now();
    let m5 = suite_tree_config(cpu_train.len());
    let cpu_tree = ModelTree::fit(&cpu_train, &m5).expect("cpu fit");
    eprintln!("CPU2006 10% tree fitted in {:.1?}", t0.elapsed());
    let t0 = std::time::Instant::now();
    let omp_tree =
        ModelTree::fit(&omp_train, &suite_tree_config(omp_train.len())).expect("omp fit");
    eprintln!("OMP2001 10% tree fitted in {:.1?}", t0.elapsed());

    let tconfig = TransferConfig::default();
    for (tree, train, test, a, b) in [
        (
            &cpu_tree,
            &cpu_train,
            &cpu_rest,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
        ),
        (
            &cpu_tree,
            &cpu_train,
            &omp_train,
            "CPU2006 (10%)",
            "OMP2001 (10%)",
        ),
        (
            &omp_tree,
            &omp_train,
            &omp_rest,
            "OMP2001 (10%)",
            "OMP2001 (rest)",
        ),
        (
            &omp_tree,
            &omp_train,
            &cpu_train,
            "OMP2001 (10%)",
            "CPU2006 (10%)",
        ),
    ] {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &tconfig)
            .expect("large datasets");
        println!("{}", report.render());
    }
    println!("paper comparison: within-suite t = 1.212 (accepted); cross-suite t = 125.384");
    println!("(rejected); C = 0.9214 / MAE = 0.0988 within, C = 0.4337 / MAE = 0.3721 across.");
}
