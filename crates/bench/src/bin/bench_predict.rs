//! Compiled-vs-interpreted prediction throughput snapshot.
//!
//! Times `predict_all` over the canonical 60k-sample CPU2006 dataset
//! three ways — interpreted per-sample tree walk, compiled engine with
//! a serial budget, compiled engine with one thread per core — verifies
//! the engines agree within 1e-10 on every sample, and writes the
//! evidence backing the ISSUE 2 acceptance criterion (compiled ≥ 5×
//! interpreted) as JSON.
//!
//! `cargo run --release -p spec-bench --bin bench_predict [output.json]`
//! (default output: `results/BENCH_predict.json`).

use std::time::Instant;

use pipeline::PipelineContext;
use serde_json::json;
use spec_bench::{cpu2006_artifacts, N_SAMPLES, SEED_CPU2006};

/// Best-of-`reps` wall-clock time of `routine`, in seconds, after one
/// untimed warm-up run. Returns the last run's output for verification.
fn time_best<O>(reps: usize, mut routine: impl FnMut() -> O) -> (f64, O) {
    let mut out = routine();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        out = routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_predict.json".into());
    let reps = 10;

    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    let serial = tree.compile().with_n_threads(1);
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let parallel = tree.compile().with_n_threads(threads);

    let (t_interp, interpreted) = time_best(reps, || {
        (0..data.len())
            .map(|i| tree.predict(data.sample(i)))
            .collect::<Vec<f64>>()
    });
    let (t_serial, compiled_serial) = time_best(reps, || serial.predict_batch(&data));
    let (t_par, compiled_par) = time_best(reps, || parallel.predict_batch(&data));

    let max_abs_diff = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };
    let diff_serial = max_abs_diff(&interpreted, &compiled_serial);
    let diff_par = max_abs_diff(&interpreted, &compiled_par);
    assert!(
        diff_serial <= 1e-10 && diff_par <= 1e-10,
        "compiled/interpreted disagreement: serial {diff_serial:e}, parallel {diff_par:e}"
    );

    let rate = |secs: f64| (data.len() as f64 / secs).round();
    let report = json!({
        "experiment": "compiled vs interpreted predict_all throughput",
        "dataset": {
            "suite": "cpu2006",
            "seed": SEED_CPU2006,
            "n_samples": N_SAMPLES,
        },
        "tree": { "n_leaves": tree.n_leaves(), "n_nodes": tree.n_nodes() },
        // The parallel figure only exceeds the serial one on multi-core
        // hosts; with n_cpus = 1 both measure the same kernel.
        "n_cpus": threads,
        "timing_best_of": reps,
        "interpreted": { "seconds": t_interp, "samples_per_sec": rate(t_interp) },
        "compiled_serial": {
            "seconds": t_serial,
            "samples_per_sec": rate(t_serial),
            "speedup_vs_interpreted": t_interp / t_serial,
        },
        "compiled_parallel": {
            "n_threads": threads,
            "seconds": t_par,
            "samples_per_sec": rate(t_par),
            "speedup_vs_interpreted": t_interp / t_par,
        },
        "exactness": {
            "tolerance": 1e-10,
            "max_abs_diff_serial": diff_serial,
            "max_abs_diff_parallel": diff_par,
        },
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");

    println!(
        "interpreted      {:>10.0} samples/s",
        data.len() as f64 / t_interp
    );
    println!(
        "compiled(serial) {:>10.0} samples/s  ({:.1}x)",
        data.len() as f64 / t_serial,
        t_interp / t_serial
    );
    println!(
        "compiled(par{threads})   {:>10.0} samples/s  ({:.1}x)",
        data.len() as f64 / t_par,
        t_interp / t_par
    );
    println!("max |diff| serial {diff_serial:e}, parallel {diff_par:e}");
    println!("wrote {path}");
}
