//! Prediction-throughput snapshot across every engine kernel.
//!
//! Times `predict_all` over the canonical 60k-sample CPU2006 dataset
//! five ways — interpreted per-sample tree walk, compiled scalar oracle
//! kernel, compiled SIMD f64 kernel, compiled f32 quantized fast path,
//! and the SIMD kernel under a full thread budget — and verifies the
//! exactness ladder on every sample: the f64 kernels agree with the
//! interpreter within 1e-10, SIMD f64 is **bit-identical** to the
//! scalar kernel, and the f32 fast path stays within its analytically
//! recorded per-leaf error bound. The JSON snapshot backs the ISSUE 6
//! acceptance criterion (SIMD f64 ≥ 2× the scalar serial kernel).
//!
//! `cargo run --release -p spec-bench --bin bench_predict [output.json]`
//! (default output: `results/BENCH_predict.json`).

use std::time::Instant;

use pipeline::PipelineContext;
use serde_json::json;
use spec_bench::{cpu2006_artifacts, N_SAMPLES, SEED_CPU2006};

/// One timed run of `routine`: folds its wall-clock seconds into
/// `best` and returns the output for verification.
fn timed<O>(best: &mut f64, mut routine: impl FnMut() -> O) -> O {
    let start = Instant::now();
    let out = routine();
    *best = best.min(start.elapsed().as_secs_f64());
    out
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_predict.json".into());
    // The per-run kernels finish in about a millisecond, so single
    // timings are dominated by scheduler noise on small hosts; a high
    // best-of count keeps the snapshot stable run to run.
    let reps = 100;

    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    let scalar = tree.compile().with_n_threads(1).with_simd(false);
    let simd = tree.compile().with_n_threads(1).with_simd(true);
    let fast = tree
        .compile()
        .with_n_threads(1)
        .with_simd(true)
        .with_precision(modeltree::Precision::F32Fast);
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let parallel = tree.compile().with_n_threads(threads).with_simd(true);

    // Interleave the engines round-robin and keep each one's best
    // round: on a noisy shared host a contiguous burst per engine
    // hands whichever engine runs during a quiet spell an unearned
    // win, while interleaving exposes every engine to the same noise
    // distribution. The first untimed round is the warm-up.
    let interp_run = || {
        (0..data.len())
            .map(|i| tree.predict(data.sample(i)))
            .collect::<Vec<f64>>()
    };
    let mut interpreted = interp_run();
    let mut p_scalar = scalar.predict_batch(&data);
    let mut p_simd = simd.predict_batch(&data);
    let mut p_f32 = fast.predict_batch(&data);
    let mut p_par = parallel.predict_batch(&data);
    let (mut t_interp, mut t_scalar, mut t_simd, mut t_f32, mut t_par) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    );
    for _ in 0..reps {
        interpreted = timed(&mut t_interp, interp_run);
        p_scalar = timed(&mut t_scalar, || scalar.predict_batch(&data));
        p_simd = timed(&mut t_simd, || simd.predict_batch(&data));
        p_f32 = timed(&mut t_f32, || fast.predict_batch(&data));
        p_par = timed(&mut t_par, || parallel.predict_batch(&data));
    }

    let max_abs_diff = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };
    let diff_scalar = max_abs_diff(&interpreted, &p_scalar);
    let diff_simd = max_abs_diff(&interpreted, &p_simd);
    let diff_par = max_abs_diff(&interpreted, &p_par);
    assert!(
        diff_scalar <= 1e-10 && diff_simd <= 1e-10 && diff_par <= 1e-10,
        "f64 engine/interpreter disagreement: scalar {diff_scalar:e}, \
         simd {diff_simd:e}, parallel {diff_par:e}"
    );
    let simd_bit_identical = p_scalar
        .iter()
        .zip(&p_simd)
        .chain(p_scalar.iter().zip(&p_par))
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        simd_bit_identical,
        "SIMD f64 kernel diverged from the scalar oracle"
    );

    // The f32 fast path: worst observed error against the f64 engine
    // and the worst analytic per-leaf bound, checked sample by sample
    // wherever both precisions classify alike (everywhere, on this
    // dataset's threshold margins).
    let mut f32_max_err = 0.0f64;
    let mut f32_max_bound = 0.0f64;
    let mut f32_comparable = 0usize;
    for i in 0..data.len() {
        let s = data.sample(i);
        if fast.classify(s) == scalar.classify(s) {
            let err = (p_scalar[i] - p_f32[i]).abs();
            let bound = fast
                .f32_error_bound(s)
                .expect("quantized engine has bounds");
            assert!(
                err <= bound,
                "sample {i}: f32 error {err:e} exceeds bound {bound:e}"
            );
            f32_max_err = f32_max_err.max(err);
            f32_max_bound = f32_max_bound.max(bound);
            f32_comparable += 1;
        }
    }

    let rate = |secs: f64| (data.len() as f64 / secs).round();
    let report = json!({
        "experiment": "engine kernel predict_all throughput (scalar / SIMD f64 / f32 fast)",
        "dataset": {
            "suite": "cpu2006",
            "seed": SEED_CPU2006,
            "n_samples": N_SAMPLES,
        },
        "tree": { "n_leaves": tree.n_leaves(), "n_nodes": tree.n_nodes() },
        "n_cpus": threads,
        "timing_best_of": reps,
        "interpreted": { "seconds": t_interp, "samples_per_sec": rate(t_interp) },
        "compiled_scalar": {
            "seconds": t_scalar,
            "samples_per_sec": rate(t_scalar),
            "speedup_vs_interpreted": t_interp / t_scalar,
        },
        "compiled_simd_f64": {
            "seconds": t_simd,
            "samples_per_sec": rate(t_simd),
            "speedup_vs_interpreted": t_interp / t_simd,
            "speedup_vs_scalar": t_scalar / t_simd,
        },
        "compiled_f32_fast": {
            "seconds": t_f32,
            "samples_per_sec": rate(t_f32),
            "speedup_vs_interpreted": t_interp / t_f32,
            "speedup_vs_scalar": t_scalar / t_f32,
        },
        "compiled_parallel": {
            "n_threads": threads,
            "seconds": t_par,
            "samples_per_sec": rate(t_par),
            "speedup_vs_interpreted": t_interp / t_par,
        },
        "exactness": {
            "tolerance": 1e-10,
            "max_abs_diff_scalar": diff_scalar,
            "max_abs_diff_simd": diff_simd,
            "max_abs_diff_parallel": diff_par,
            "simd_bit_identical_to_scalar": simd_bit_identical,
            "f32_max_abs_err": f32_max_err,
            "f32_max_bound": f32_max_bound,
            "f32_rows_compared": f32_comparable,
        },
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");

    let row = |name: &str, secs: f64| {
        println!(
            "{name:<18} {:>11.0} samples/s  ({:.1}x interp)",
            data.len() as f64 / secs,
            t_interp / secs
        );
    };
    row("interpreted", t_interp);
    row("compiled scalar", t_scalar);
    row("compiled simd", t_simd);
    row("compiled f32", t_f32);
    row(&format!("compiled par{threads}"), t_par);
    println!("max |diff| simd {diff_simd:e}; f32 err {f32_max_err:e} <= bound {f32_max_bound:e}");
    println!("wrote {path}");
}
