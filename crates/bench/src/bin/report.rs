//! Machine-readable experiment report: runs the full pipeline on the
//! canonical datasets and writes one JSON document summarizing every
//! headline quantity (tree shapes, similarity pairs, transferability
//! verdicts, baseline comparison) to stdout or a file.
//!
//! Every dataset, split, and M5' tree resolves through the pipeline's
//! artifact store; only the baseline regressors fit directly.
//!
//! `cargo run --release -p spec-bench --bin report [output.json]`

use baselines::{CartConfig, OlsRegressor, RegressionTree, Regressor};
use characterize::{ProfileTable, SimilarityMatrix};
use modeltree::ModelTree;
use pipeline::{
    output, DatasetInput, DatasetSpec, PipelineContext, SplitPart, SplitSpec, TreeSpec,
};
use serde_json::json;
use spec_bench::{
    cpu2006_artifacts, omp2001_artifacts, suite_tree_config, transfer_artifacts, N_SAMPLES,
    SEED_CPU2006, SEED_OMP2001, SEED_SPLIT,
};
use spec_stats::PredictionMetrics;
use transfer::{TransferConfig, TransferabilityReport};

fn tree_summary(tree: &ModelTree, train_mae: f64) -> serde_json::Value {
    json!({
        "root_event": tree.root_split_event().map(|e| e.short_name()),
        "n_leaves": tree.n_leaves(),
        "n_nodes": tree.n_nodes(),
        "depth": tree.depth(),
        "train_mae": train_mae,
        "event_importance": tree
            .event_importance()
            .into_iter()
            .map(|(e, v)| json!({"event": e.short_name(), "importance": v}))
            .collect::<Vec<_>>(),
    })
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (cpu, cpu_tree) = cpu2006_artifacts(&ctx);
    let (omp, omp_tree) = omp2001_artifacts(&ctx);

    // Characterization.
    let cpu_table = ProfileTable::build(&cpu_tree, &cpu);
    let matrix = SimilarityMatrix::from_table(&cpu_table);
    let pair = |a: &str, b: &str| {
        json!({
            "a": a, "b": b,
            "distance": matrix.distance_by_name(a, b).expect("benchmarks present"),
        })
    };

    // Transferability (paper's 10% protocol).
    let (split, cpu_small, omp_small) = transfer_artifacts(&ctx);
    let config = TransferConfig::default();
    let assess = |tree: &ModelTree,
                  train: &perfcounters::Dataset,
                  test: &perfcounters::Dataset,
                  a: &str,
                  b: &str| {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &config)
            .expect("datasets large enough");
        json!({
            "train": a, "test": b,
            "transferable": report.transferable(),
            "hypothesis_transferable": report.hypothesis_transferable(),
            "accuracy_transferable": report.accuracy_transferable(),
            "t_datasets": report.hypothesis.cpi_datasets.statistic,
            "t_predicted": report.hypothesis.cpi_predicted.statistic,
            "correlation": report.metrics.correlation,
            "mae": report.metrics.mae,
        })
    };

    // Baselines on a 50/50 split.
    let bsplit = SplitSpec::new(DatasetSpec::cpu2006(), SEED_SPLIT, 0.5);
    let (btrain, btest) = ctx.split(&bsplit).expect("suite generates");
    let btree = ctx
        .tree(&TreeSpec {
            config: suite_tree_config(bsplit.first_len()),
            input: DatasetInput::SplitPart(bsplit, SplitPart::First),
        })
        .expect("training half fits");
    let ols = OlsRegressor::fit(&btrain).expect("ols");
    let cart = RegressionTree::fit(&btrain, CartConfig::default()).expect("cart");
    let eval = |preds: Vec<f64>| {
        let m = PredictionMetrics::from_predictions(&preds, &btest.cpis()).expect("metrics");
        json!({"correlation": m.correlation, "mae": m.mae, "rmse": m.rmse})
    };

    let report = json!({
        "paper": "Characterization of SPEC CPU2006 and SPEC OMP2001 (ISPASS 2008)",
        "seeds": {"cpu2006": SEED_CPU2006, "omp2001": SEED_OMP2001, "split": SEED_SPLIT},
        "n_samples_per_suite": N_SAMPLES,
        "figure1_cpu2006_tree": tree_summary(&cpu_tree, cpu_tree.mean_abs_error(&cpu)),
        "figure2_omp2001_tree": tree_summary(&omp_tree, omp_tree.mean_abs_error(&omp)),
        "table3_headline_pairs": [
            pair("456.hmmer", "444.namd"),
            pair("435.gromacs", "444.namd"),
            pair("454.calculix", "447.dealII"),
            pair("429.mcf", "444.namd"),
            pair("429.mcf", "459.GemsFDTD"),
            pair("444.namd", "459.GemsFDTD"),
        ],
        "section6_transferability": [
            assess(&cpu_small, &split.cpu_train, &split.cpu_rest, "CPU2006 (10%)", "CPU2006 (rest)"),
            assess(&cpu_small, &split.cpu_train, &split.omp_rest, "CPU2006 (10%)", "OMP2001"),
            assess(&omp_small, &split.omp_train, &split.omp_rest, "OMP2001 (10%)", "OMP2001 (rest)"),
            assess(&omp_small, &split.omp_train, &split.cpu_rest, "OMP2001 (10%)", "CPU2006"),
        ],
        "baselines_cpu2006": {
            "m5_model_tree": eval(btree.predict_all(&btest)),
            "global_ols": eval(ols.predict_all(&btest)),
            "cart": eval(cart.predict_all(&btest)),
        },
    });

    let rendered = serde_json::to_string_pretty(&report).expect("serializable report");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("writable output path");
            eprintln!("report written to {path}");
        }
        None => {
            output::print(&rendered);
            output::print("\n");
        }
    }
}
