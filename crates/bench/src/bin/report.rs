//! Machine-readable experiment report: runs the full pipeline on the
//! canonical datasets and writes one JSON document summarizing every
//! headline quantity (tree shapes, similarity pairs, transferability
//! verdicts, baseline comparison) to stdout or a file.
//!
//! `cargo run --release -p spec-bench --bin report [output.json]`

use baselines::{CartConfig, OlsRegressor, RegressionTree, Regressor};
use characterize::{ProfileTable, SimilarityMatrix};
use modeltree::ModelTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use spec_bench::{
    cpu2006_dataset, fit_suite_tree, omp2001_dataset, suite_tree_config, N_SAMPLES, SEED_CPU2006,
    SEED_OMP2001, SEED_SPLIT,
};
use spec_stats::PredictionMetrics;
use transfer::{TransferConfig, TransferabilityReport};

fn tree_summary(tree: &ModelTree, train_mae: f64) -> serde_json::Value {
    json!({
        "root_event": tree.root_split_event().map(|e| e.short_name()),
        "n_leaves": tree.n_leaves(),
        "n_nodes": tree.n_nodes(),
        "depth": tree.depth(),
        "train_mae": train_mae,
        "event_importance": tree
            .event_importance()
            .into_iter()
            .map(|(e, v)| json!({"event": e.short_name(), "importance": v}))
            .collect::<Vec<_>>(),
    })
}

fn main() {
    let cpu = cpu2006_dataset();
    let omp = omp2001_dataset();
    let cpu_tree = fit_suite_tree(&cpu);
    let omp_tree = fit_suite_tree(&omp);

    // Characterization.
    let cpu_table = ProfileTable::build(&cpu_tree, &cpu);
    let matrix = SimilarityMatrix::from_table(&cpu_table);
    let pair = |a: &str, b: &str| {
        json!({
            "a": a, "b": b,
            "distance": matrix.distance_by_name(a, b).expect("benchmarks present"),
        })
    };

    // Transferability (paper's 10% protocol).
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.10);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.10);
    let m5 = suite_tree_config(cpu_train.len());
    let cpu_small = ModelTree::fit(&cpu_train, &m5).expect("cpu fit");
    let omp_small = ModelTree::fit(&omp_train, &m5).expect("omp fit");
    let config = TransferConfig::default();
    let assess = |tree: &ModelTree,
                  train: &perfcounters::Dataset,
                  test: &perfcounters::Dataset,
                  a: &str,
                  b: &str| {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &config)
            .expect("datasets large enough");
        json!({
            "train": a, "test": b,
            "transferable": report.transferable(),
            "hypothesis_transferable": report.hypothesis_transferable(),
            "accuracy_transferable": report.accuracy_transferable(),
            "t_datasets": report.hypothesis.cpi_datasets.statistic,
            "t_predicted": report.hypothesis.cpi_predicted.statistic,
            "correlation": report.metrics.correlation,
            "mae": report.metrics.mae,
        })
    };

    // Baselines on a 50/50 split.
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (btrain, btest) = cpu.split_random(&mut rng, 0.5);
    let btree = ModelTree::fit(&btrain, &suite_tree_config(btrain.len())).expect("fit");
    let ols = OlsRegressor::fit(&btrain).expect("ols");
    let cart = RegressionTree::fit(&btrain, CartConfig::default()).expect("cart");
    let eval = |preds: Vec<f64>| {
        let m = PredictionMetrics::from_predictions(&preds, &btest.cpis()).expect("metrics");
        json!({"correlation": m.correlation, "mae": m.mae, "rmse": m.rmse})
    };

    let report = json!({
        "paper": "Characterization of SPEC CPU2006 and SPEC OMP2001 (ISPASS 2008)",
        "seeds": {"cpu2006": SEED_CPU2006, "omp2001": SEED_OMP2001, "split": SEED_SPLIT},
        "n_samples_per_suite": N_SAMPLES,
        "figure1_cpu2006_tree": tree_summary(&cpu_tree, cpu_tree.mean_abs_error(&cpu)),
        "figure2_omp2001_tree": tree_summary(&omp_tree, omp_tree.mean_abs_error(&omp)),
        "table3_headline_pairs": [
            pair("456.hmmer", "444.namd"),
            pair("435.gromacs", "444.namd"),
            pair("454.calculix", "447.dealII"),
            pair("429.mcf", "444.namd"),
            pair("429.mcf", "459.GemsFDTD"),
            pair("444.namd", "459.GemsFDTD"),
        ],
        "section6_transferability": [
            assess(&cpu_small, &cpu_train, &cpu_rest, "CPU2006 (10%)", "CPU2006 (rest)"),
            assess(&cpu_small, &cpu_train, &omp_rest, "CPU2006 (10%)", "OMP2001"),
            assess(&omp_small, &omp_train, &omp_rest, "OMP2001 (10%)", "OMP2001 (rest)"),
            assess(&omp_small, &omp_train, &cpu_rest, "OMP2001 (10%)", "CPU2006"),
        ],
        "baselines_cpu2006": {
            "m5_model_tree": eval(btree.predict_all(&btest)),
            "global_ols": eval(ols.predict_all(&btest)),
            "cart": eval(cart.predict_all(&btest)),
        },
    });

    let rendered = serde_json::to_string_pretty(&report).expect("serializable report");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("writable output path");
            eprintln!("report written to {path}");
        }
        None => println!("{rendered}"),
    }
}
