//! Experiment E11 — benchmark subsetting over leaf profiles (the
//! application surveyed in the paper's related work).
//!
//! The canonical dataset and suite tree resolve through the pipeline's
//! artifact store.

use std::io::Write;

use characterize::{greedy_subset, kmeans_subset, ProfileTable};
use pipeline::{output, PipelineContext};
use spec_bench::{cpu2006_artifacts, SEED_CPU2006};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();
    let (data, tree) = cpu2006_artifacts(&ctx);
    let table = ProfileTable::build(&tree, &data);

    let _ = writeln!(
        out,
        "Benchmark subsetting over LM-profile vectors (SPEC CPU2006)\n"
    );
    for k in [4, 6, 8] {
        let g = greedy_subset(&table, k);
        let _ = writeln!(out, "greedy k-center, k = {k}: {:?}", g.selected);
        let _ = writeln!(
            out,
            "  coverage: max {:.1}%, mean {:.1}%",
            100.0 * g.max_distance,
            100.0 * g.mean_distance
        );
        let km = kmeans_subset(&table, k, SEED_CPU2006);
        let _ = writeln!(out, "k-means,        k = {k}: {:?}", km.selected);
        let _ = writeln!(
            out,
            "  coverage: max {:.1}%, mean {:.1}%\n",
            100.0 * km.max_distance,
            100.0 * km.mean_distance
        );
    }
}
