//! Experiment E11 — benchmark subsetting over leaf profiles (the
//! application surveyed in the paper's related work).

use characterize::{greedy_subset, kmeans_subset, ProfileTable};
use spec_bench::{cpu2006_dataset, fit_suite_tree, SEED_CPU2006};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let table = ProfileTable::build(&tree, &data);

    println!("Benchmark subsetting over LM-profile vectors (SPEC CPU2006)\n");
    for k in [4, 6, 8] {
        let g = greedy_subset(&table, k);
        println!("greedy k-center, k = {k}: {:?}", g.selected);
        println!(
            "  coverage: max {:.1}%, mean {:.1}%",
            100.0 * g.max_distance,
            100.0 * g.mean_distance
        );
        let km = kmeans_subset(&table, k, SEED_CPU2006);
        println!("k-means,        k = {k}: {:?}", km.selected);
        println!(
            "  coverage: max {:.1}%, mean {:.1}%\n",
            100.0 * km.max_distance,
            100.0 * km.mean_distance
        );
    }
}
