//! Telemetry overhead snapshot: instrumented hot paths with obskit
//! disabled vs enabled.
//!
//! Times the two instrumented kernels of the reproduction — a 50k-row
//! M5' fit and a 60k-row compiled-engine predict — four ways: with
//! telemetry disabled (the default every experiment runs under), with
//! metrics counters enabled, with metrics + span tracing enabled, and
//! with everything on plus the flight-recorder ring armed. It then
//! proves the determinism contract: the tree fitted and the
//! predictions computed with telemetry fully on are bit-identical to
//! the ones computed with it off. Two observability micro-rows ride
//! along: the per-record cost of the flight ring (enabled seqlock
//! claim vs the disabled-path relaxed load) and the cost of rendering
//! the full registry as the Prometheus/OpenMetrics text exposition.
//! The timings and the enabled-overhead ratios are written as JSON;
//! per-operation disabled-path costs are measured separately by the
//! `obskit_overhead` Criterion bench.
//!
//! `cargo run --release -p spec-bench --bin bench_obskit [--smoke]
//! [output.json]` (default output: `results/BENCH_obskit.json`;
//! `--smoke` shrinks sizes and reps for the CI job, which passes an
//! explicit output path so the committed snapshot stays full-size).

use std::time::Instant;

use modeltree::{M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use workloads::generator::{GeneratorConfig, Suite};

/// Best-of-`reps` wall-clock seconds after one untimed warm-up run;
/// returns the last run's output for verification.
fn time_best<O>(reps: usize, mut routine: impl FnMut() -> O) -> (f64, O) {
    let mut out = routine();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        out = routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    100.0 * (measured - baseline) / baseline
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let mut smoke = false;
    let mut path = "results/BENCH_obskit.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    let reps = if smoke { 2 } else { 5 };

    let n_fit = if smoke { 5_000 } else { 50_000 };
    let n_predict = if smoke { 6_000 } else { 60_000 };
    let n_records = if smoke { 100_000u64 } else { 1_000_000u64 };
    let fit_data = Suite::cpu2006().generate(
        &mut StdRng::seed_from_u64(1),
        n_fit,
        &GeneratorConfig::default(),
    );
    let predict_data = Suite::cpu2006().generate(
        &mut StdRng::seed_from_u64(2),
        n_predict,
        &GeneratorConfig::default(),
    );
    let config = M5Config::default().with_min_leaf((n_fit / 120).max(4));

    // Fit: telemetry disabled, metrics only, metrics + tracing.
    obskit::set_enabled(false, false);
    let (t_fit_off, tree_off) = time_best(reps, || ModelTree::fit(&fit_data, &config).unwrap());
    obskit::set_enabled(true, false);
    let (t_fit_metrics, _) = time_best(reps, || ModelTree::fit(&fit_data, &config).unwrap());
    obskit::set_enabled(true, true);
    let (t_fit_on, tree_on) = time_best(reps, || {
        obskit::span::reset(); // keep the span buffer from saturating across reps
        ModelTree::fit(&fit_data, &config).unwrap()
    });
    // Everything on, flight recorder included — the configuration an
    // incident investigation would run under.
    obskit::set_ring_enabled(true);
    let (t_fit_all, tree_all) = time_best(reps, || {
        obskit::span::reset();
        ModelTree::fit(&fit_data, &config).unwrap()
    });
    obskit::set_ring_enabled(false);
    obskit::set_enabled(false, false);

    // Predict over 60k rows with the telemetry-off tree.
    let engine = tree_off.compile().with_n_threads(1);
    let (t_pred_off, pred_off) = time_best(reps, || engine.predict_batch(&predict_data));
    obskit::set_enabled(true, false);
    let (t_pred_metrics, _) = time_best(reps, || engine.predict_batch(&predict_data));
    obskit::set_enabled(true, true);
    let (t_pred_on, pred_on) = time_best(reps, || {
        obskit::span::reset();
        engine.predict_batch(&predict_data)
    });
    obskit::set_enabled(false, false);

    // Flight-ring record cost: the enabled seqlock claim vs the
    // disabled-path relaxed load (what every record site costs when the
    // recorder is off).
    obskit::set_ring_enabled(true);
    let (t_ring_on, ()) = time_best(reps, || {
        for i in 0..n_records {
            obskit::ring::record(obskit::ring::FlightKind::Probe, i, 0, 0);
        }
    });
    obskit::set_ring_enabled(false);
    let (t_ring_off, ()) = time_best(reps, || {
        for i in 0..n_records {
            obskit::ring::record(obskit::ring::FlightKind::Probe, i, 0, 0);
        }
    });
    obskit::ring::reset();

    // OpenMetrics exposition render over the full (now populated)
    // registry — the marginal cost of a Prometheus scrape.
    let (t_prom, prom_text) = time_best(reps.max(3), obskit::prom::prom_text);
    let prom_bytes = prom_text.len();

    obskit::span::reset();
    obskit::metrics::reset();

    // Determinism contract: telemetry is write-only with respect to the
    // computation. Trees and predictions must be bit-identical.
    assert_eq!(
        serde_json::to_string(&tree_on).unwrap(),
        serde_json::to_string(&tree_off).unwrap(),
        "tree fitted with telemetry on differs from telemetry off"
    );
    assert_eq!(
        serde_json::to_string(&tree_all).unwrap(),
        serde_json::to_string(&tree_off).unwrap(),
        "tree fitted with the flight recorder armed differs from telemetry off"
    );
    assert_eq!(pred_on.len(), pred_off.len());
    assert!(
        pred_on
            .iter()
            .zip(&pred_off)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "predictions with telemetry on differ from telemetry off"
    );

    let report = json!({
        "experiment": "obskit telemetry overhead: disabled vs metrics vs metrics+tracing",
        "fit": {
            "rows": n_fit,
            "leaves": tree_off.n_leaves(),
            "seconds_disabled": t_fit_off,
            "seconds_metrics": t_fit_metrics,
            "seconds_tracing": t_fit_on,
            "seconds_all_plus_ring": t_fit_all,
            "metrics_overhead_pct": overhead_pct(t_fit_off, t_fit_metrics),
            "tracing_overhead_pct": overhead_pct(t_fit_off, t_fit_on),
            "ring_overhead_pct": overhead_pct(t_fit_off, t_fit_all),
        },
        "predict": {
            "rows": n_predict,
            "seconds_disabled": t_pred_off,
            "seconds_metrics": t_pred_metrics,
            "seconds_tracing": t_pred_on,
            "metrics_overhead_pct": overhead_pct(t_pred_off, t_pred_metrics),
            "tracing_overhead_pct": overhead_pct(t_pred_off, t_pred_on),
        },
        "ring_record": {
            "records": n_records,
            "ns_per_record_enabled": t_ring_on * 1e9 / n_records as f64,
            "ns_per_record_disabled": t_ring_off * 1e9 / n_records as f64,
        },
        "prom_render": {
            "seconds_per_render": t_prom,
            "bytes": prom_bytes,
            "renders_per_second": 1.0 / t_prom,
        },
        "bit_identical_with_telemetry": true,
        "disabled_path": "single relaxed atomic load per call site; \
                          per-op cost measured by the obskit_overhead Criterion bench",
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");

    println!("fit {n_fit} rows:      off {t_fit_off:.3} s, metrics {t_fit_metrics:.3} s ({:+.2}%), tracing {t_fit_on:.3} s ({:+.2}%)",
        overhead_pct(t_fit_off, t_fit_metrics), overhead_pct(t_fit_off, t_fit_on));
    println!("predict {n_predict} rows: off {t_pred_off:.4} s, metrics {t_pred_metrics:.4} s ({:+.2}%), tracing {t_pred_on:.4} s ({:+.2}%)",
        overhead_pct(t_pred_off, t_pred_metrics), overhead_pct(t_pred_off, t_pred_on));
    println!(
        "ring record:       {:.1} ns enabled, {:.2} ns disabled path ({n_records} records)",
        t_ring_on * 1e9 / n_records as f64,
        t_ring_off * 1e9 / n_records as f64
    );
    println!(
        "prom render:       {:.1} µs per scrape ({prom_bytes} bytes)",
        t_prom * 1e6
    );
    println!("trees and predictions bit-identical with telemetry on/off (flight ring armed too)");
    println!("wrote {path}");
}
