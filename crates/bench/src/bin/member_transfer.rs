//! Experiment E13 — per-member transferability: is the *suite* model
//! transferable to each *constituent benchmark*?
//!
//! The paper classifies each benchmark through the suite tree (Tables II
//! and IV); this experiment asks the quantitative follow-up: how
//! accurately does the suite model predict each member's CPI, under the
//! same acceptance thresholds as Section VI? Benchmarks whose behavior
//! classes are shared with the rest of the suite should pass easily;
//! benchmarks with private behavior classes (trained on fewer of "their"
//! samples) mark the suite model's weakest coverage.
//!
//! The half-suite training splits, the trees, and every per-member
//! dataset resolve through the pipeline's artifact store; the member
//! evaluation itself is the `transfer::matrix` member-level assessment,
//! so this bin is a thin renderer over the same machinery as E8.

use std::io::Write;

use pipeline::{
    output, DatasetInput, DatasetSpec, PipelineContext, SplitPart, SplitSpec, TreeSpec,
};
use spec_bench::{suite_tree_config, SEED_SPLIT};
use spec_stats::AcceptanceThresholds;
use transfer::matrix::{hardest_member, member_datasets, member_rows};

fn member_table(out: &mut impl Write, ctx: &PipelineContext, base: DatasetSpec, seed: u64) {
    let kind = base.suite;
    let suite = kind.materialize();
    // Train on a random half so member evaluations are out-of-sample.
    let split = SplitSpec::new(base, seed, 0.5);
    let tree = ctx
        .tree(&TreeSpec {
            config: suite_tree_config(split.first_len()),
            input: DatasetInput::SplitPart(split, SplitPart::First),
        })
        .expect("training half fits");

    let members = member_datasets(ctx, kind, 4_000, seed ^ 0xbe9c).expect("members of suite");
    let rows = member_rows(&tree, &members, &AcceptanceThresholds::default())
        .expect("non-empty member sets");

    let _ = writeln!(
        out,
        "{} — suite model ({} leaves) applied to fresh samples of each member:",
        suite.name(),
        tree.n_leaves()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>9} {:>14}",
        "benchmark", "C", "MAE", "mean CPI", "transferable?"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<18} {:>8.4} {:>8.4} {:>9.3} {:>14}",
            row.benchmark,
            row.metrics.correlation,
            row.metrics.mae,
            row.metrics.mean_actual,
            if row.transferable { "yes" } else { "NO" }
        );
    }
    if let Some(worst) = hardest_member(&rows) {
        let _ = writeln!(
            out,
            "  hardest member: {} (MAE {:.4})\n",
            worst.benchmark, worst.metrics.mae
        );
    }
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();
    let _ = writeln!(out, "Per-member transferability of the suite models\n");
    member_table(out, &ctx, DatasetSpec::cpu2006(), SEED_SPLIT);
    member_table(out, &ctx, DatasetSpec::omp2001(), SEED_SPLIT + 1);
}
