//! Experiment E13 — per-member transferability: is the *suite* model
//! transferable to each *constituent benchmark*?
//!
//! The paper classifies each benchmark through the suite tree (Tables II
//! and IV); this experiment asks the quantitative follow-up: how
//! accurately does the suite model predict each member's CPI, under the
//! same acceptance thresholds as Section VI? Benchmarks whose behavior
//! classes are shared with the rest of the suite should pass easily;
//! benchmarks with private behavior classes (trained on fewer of "their"
//! samples) mark the suite model's weakest coverage.

use modeltree::ModelTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{cpu2006_dataset, omp2001_dataset, suite_tree_config, SEED_SPLIT};
use spec_stats::{AcceptanceThresholds, PredictionMetrics};
use workloads::generator::{GeneratorConfig, Suite};

fn member_table(suite: &Suite, data: &perfcounters::Dataset, seed: u64) {
    // Train on a random half so member evaluations are out-of-sample.
    let mut rng = StdRng::seed_from_u64(seed);
    let (train, _) = data.split_random(&mut rng, 0.5);
    let tree = ModelTree::fit(&train, &suite_tree_config(train.len())).expect("fit");
    let thresholds = AcceptanceThresholds::default();

    println!(
        "{} — suite model ({} leaves) applied to fresh samples of each member:",
        suite.name(),
        tree.n_leaves()
    );
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>14}",
        "benchmark", "C", "MAE", "mean CPI", "transferable?"
    );
    let mut worst: Option<(String, f64)> = None;
    for bench in suite.benchmarks() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbe9c);
        let member = suite
            .generate_benchmark(&mut rng, bench.name(), 4_000, &GeneratorConfig::default())
            .expect("member of suite");
        let metrics =
            PredictionMetrics::from_predictions(&tree.predict_all(&member), &member.cpis())
                .expect("non-empty member set");
        let ok = metrics.acceptable(&thresholds);
        println!(
            "{:<18} {:>8.4} {:>8.4} {:>9.3} {:>14}",
            bench.name(),
            metrics.correlation,
            metrics.mae,
            metrics.mean_actual,
            if ok { "yes" } else { "NO" }
        );
        if worst.as_ref().is_none_or(|(_, m)| metrics.mae > *m) {
            worst = Some((bench.name().to_owned(), metrics.mae));
        }
    }
    if let Some((name, mae)) = worst {
        println!("  hardest member: {name} (MAE {mae:.4})\n");
    }
}

fn main() {
    println!("Per-member transferability of the suite models\n");
    member_table(&Suite::cpu2006(), &cpu2006_dataset(), SEED_SPLIT);
    member_table(&Suite::omp2001(), &omp2001_dataset(), SEED_SPLIT + 1);
}
