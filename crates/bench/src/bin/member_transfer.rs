//! Experiment E13 — per-member transferability: is the *suite* model
//! transferable to each *constituent benchmark*?
//!
//! The paper classifies each benchmark through the suite tree (Tables II
//! and IV); this experiment asks the quantitative follow-up: how
//! accurately does the suite model predict each member's CPI, under the
//! same acceptance thresholds as Section VI? Benchmarks whose behavior
//! classes are shared with the rest of the suite should pass easily;
//! benchmarks with private behavior classes (trained on fewer of "their"
//! samples) mark the suite model's weakest coverage.
//!
//! The half-suite training splits, the trees, and every per-member
//! dataset resolve through the pipeline's artifact store.

use std::io::Write;

use pipeline::{
    output, DatasetInput, DatasetSpec, PipelineContext, SplitPart, SplitSpec, TreeSpec,
};
use spec_bench::{suite_tree_config, SEED_SPLIT};
use spec_stats::{AcceptanceThresholds, PredictionMetrics};

fn member_table(out: &mut impl Write, ctx: &PipelineContext, base: DatasetSpec, seed: u64) {
    let kind = base.suite;
    let suite = kind.materialize();
    // Train on a random half so member evaluations are out-of-sample.
    let split = SplitSpec::new(base, seed, 0.5);
    let tree = ctx
        .tree(&TreeSpec {
            config: suite_tree_config(split.first_len()),
            input: DatasetInput::SplitPart(split, SplitPart::First),
        })
        .expect("training half fits");
    let thresholds = AcceptanceThresholds::default();

    let _ = writeln!(
        out,
        "{} — suite model ({} leaves) applied to fresh samples of each member:",
        suite.name(),
        tree.n_leaves()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>9} {:>14}",
        "benchmark", "C", "MAE", "mean CPI", "transferable?"
    );
    let mut worst: Option<(String, f64)> = None;
    for bench in suite.benchmarks() {
        let member_spec = DatasetSpec::new(kind, 4_000, seed ^ 0xbe9c).with_benchmark(bench.name());
        let member = ctx.dataset(&member_spec).expect("member of suite");
        let metrics =
            PredictionMetrics::from_predictions(&tree.predict_all(&member), &member.cpis())
                .expect("non-empty member set");
        let ok = metrics.acceptable(&thresholds);
        let _ = writeln!(
            out,
            "{:<18} {:>8.4} {:>8.4} {:>9.3} {:>14}",
            bench.name(),
            metrics.correlation,
            metrics.mae,
            metrics.mean_actual,
            if ok { "yes" } else { "NO" }
        );
        if worst.as_ref().is_none_or(|(_, m)| metrics.mae > *m) {
            worst = Some((bench.name().to_owned(), metrics.mae));
        }
    }
    if let Some((name, mae)) = worst {
        let _ = writeln!(out, "  hardest member: {name} (MAE {mae:.4})\n");
    }
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();
    let _ = writeln!(out, "Per-member transferability of the suite models\n");
    member_table(out, &ctx, DatasetSpec::cpu2006(), SEED_SPLIT);
    member_table(out, &ctx, DatasetSpec::omp2001(), SEED_SPLIT + 1);
}
