//! Ablation studies over the M5' design choices and the measurement
//! substrate:
//!
//! * smoothing / pruning / attribute-elimination on vs off (5-fold CV);
//! * multiplexed vs oracle counters (does PMU multiplexing noise matter?);
//! * training-fraction sweep backing the paper's "a model trained using
//!   only 10% of the data is transferable to the remaining data".

use modeltree::{k_fold, M5Config, ModelTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{cpu2006_dataset, suite_tree_config, SEED_CPU2006, SEED_SPLIT};
use spec_stats::PredictionMetrics;
use workloads::generator::{GeneratorConfig, Suite};

fn cv_row(name: &str, data: &perfcounters::Dataset, config: &M5Config) {
    let cv = k_fold(data, config, 5, SEED_SPLIT).expect("cv");
    println!(
        "  {name:<28} MAE {:.4}  RMSE {:.4}  C {:.4}  leaves {:.1}",
        cv.mean_mae(),
        cv.mean_rmse(),
        cv.mean_correlation(),
        cv.mean_leaves()
    );
}

fn main() {
    // A 20k subset keeps 5-fold CV fast while staying representative.
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006);
    let data = Suite::cpu2006().generate(&mut rng, 20_000, &GeneratorConfig::default());
    let base = suite_tree_config(data.len());

    println!("Ablation 1: M5' design choices (5-fold CV on 20k CPU2006 samples)");
    cv_row("full M5' (default)", &data, &base);
    cv_row("no smoothing", &data, &base.with_smoothing(false));
    cv_row("no pruning", &data, &base.with_prune(false));
    cv_row(
        "no attribute elimination",
        &data,
        &base.with_attribute_elimination(false),
    );

    println!("\nAblation 2: counter multiplexing noise");
    let mut oracle_cfg = GeneratorConfig::default();
    oracle_cfg.counters.multiplexing_noise = false;
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006);
    let oracle = Suite::cpu2006().generate(&mut rng, 20_000, &oracle_cfg);
    cv_row("multiplexed counters", &data, &base);
    cv_row("oracle counters", &oracle, &base);
    // Cross-substrate: train on oracle data, test on multiplexed data.
    let tree = ModelTree::fit(&oracle, &base).expect("fit");
    let m = PredictionMetrics::from_predictions(&tree.predict_all(&data), &data.cpis())
        .expect("metrics");
    println!("  oracle-trained on multiplexed test: {m}");

    println!("\nAblation 3: training fraction (test = held-out remainder of 60k)");
    let full = cpu2006_dataset();
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (pool, test) = full.split_random(&mut rng, 0.5);
    for fraction in [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00] {
        let (train, _) = pool.split_random(&mut rng, fraction);
        let config = suite_tree_config(train.len());
        let tree = ModelTree::fit(&train, &config).expect("fit");
        let m = PredictionMetrics::from_predictions(&tree.predict_all(&test), &test.cpis())
            .expect("metrics");
        println!(
            "  train {:>6} samples ({:>5.1}% of suite): C {:.4}  MAE {:.4}  leaves {}",
            train.len(),
            100.0 * fraction * 0.5,
            m.correlation,
            m.mae,
            tree.n_leaves()
        );
    }
    println!("\n(the paper's claim: 10% of the data already yields a transferable model)");

    println!("\nAblation 4: platform drift (multi-threaded contention sweep)");
    println!("  train OMP2001 model at contention 1.0; test on other contention levels");
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006 + 1);
    let omp_base = Suite::omp2001().generate(&mut rng, 20_000, &GeneratorConfig::default());
    let omp_tree = ModelTree::fit(&omp_base, &suite_tree_config(omp_base.len())).expect("fit");
    for contention in [0.5, 0.75, 1.0, 1.5, 2.0] {
        let mut cfg = GeneratorConfig::default();
        cfg.cost = cfg.cost.with_contention(contention);
        let mut rng = StdRng::seed_from_u64(SEED_CPU2006 + 2);
        let shifted = Suite::omp2001().generate(&mut rng, 10_000, &cfg);
        let m =
            PredictionMetrics::from_predictions(&omp_tree.predict_all(&shifted), &shifted.cpis())
                .expect("metrics");
        println!(
            "  contention {contention:>4.2}: C {:.4}  MAE {:.4}{}",
            m.correlation,
            m.mae,
            if contention == 1.0 {
                "  <- training platform"
            } else {
                ""
            }
        );
    }
    println!("(the paper: \"the results are specific to the architecture, platform, and");
    println!(" compiler used\" — this quantifies how fast a model decays off-platform)");
}
