//! Ablation studies over the M5' design choices and the measurement
//! substrate:
//!
//! * smoothing / pruning / attribute-elimination on vs off (5-fold CV);
//! * multiplexed vs oracle counters (does PMU multiplexing noise matter?);
//! * training-fraction sweep backing the paper's "a model trained using
//!   only 10% of the data is transferable to the remaining data".
//!
//! Datasets and suite trees resolve through the pipeline's artifact
//! store; the k-fold CV internals and the stream-continuation splits of
//! ablation 3 are inherently uncacheable and stay direct.

use std::io::Write;

use modeltree::{k_fold, M5Config, ModelTree};
use pipeline::{output, DatasetSpec, PipelineContext, SuiteKind, TreeSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{suite_tree_config, SEED_CPU2006, SEED_SPLIT};
use spec_stats::PredictionMetrics;
use workloads::generator::GeneratorConfig;

fn cv_row(out: &mut impl Write, name: &str, data: &perfcounters::Dataset, config: &M5Config) {
    let cv = k_fold(data, config, 5, SEED_SPLIT).expect("cv");
    let _ = writeln!(
        out,
        "  {name:<28} MAE {:.4}  RMSE {:.4}  C {:.4}  leaves {:.1}",
        cv.mean_mae(),
        cv.mean_rmse(),
        cv.mean_correlation(),
        cv.mean_leaves()
    );
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();

    // A 20k subset keeps 5-fold CV fast while staying representative.
    let spec_20k = DatasetSpec::new(SuiteKind::cpu2006(), 20_000, SEED_CPU2006);
    let data = ctx.dataset(&spec_20k).expect("suite generates");
    let base = suite_tree_config(data.len());

    let _ = writeln!(
        out,
        "Ablation 1: M5' design choices (5-fold CV on 20k CPU2006 samples)"
    );
    cv_row(out, "full M5' (default)", &data, &base);
    cv_row(out, "no smoothing", &data, &base.with_smoothing(false));
    cv_row(out, "no pruning", &data, &base.with_prune(false));
    cv_row(
        out,
        "no attribute elimination",
        &data,
        &base.with_attribute_elimination(false),
    );

    let _ = writeln!(out, "\nAblation 2: counter multiplexing noise");
    let mut oracle_cfg = GeneratorConfig::default();
    oracle_cfg.counters.multiplexing_noise = false;
    let oracle_spec = spec_20k.clone().with_config(oracle_cfg);
    let oracle = ctx.dataset(&oracle_spec).expect("suite generates");
    cv_row(out, "multiplexed counters", &data, &base);
    cv_row(out, "oracle counters", &oracle, &base);
    // Cross-substrate: train on oracle data, test on multiplexed data.
    let tree = ctx
        .tree(&TreeSpec::new(oracle_spec, base))
        .expect("oracle dataset fits");
    let m = PredictionMetrics::from_predictions(&tree.predict_all(&data), &data.cpis())
        .expect("metrics");
    let _ = writeln!(out, "  oracle-trained on multiplexed test: {m}");

    let _ = writeln!(
        out,
        "\nAblation 3: training fraction (test = held-out remainder of 60k)"
    );
    let full = ctx
        .dataset(&DatasetSpec::cpu2006())
        .expect("suite generates");
    // The sweep reuses one RNG stream across fractions (each split
    // continues the previous one's stream state), so the intermediate
    // training sets are not independently addressable cache artifacts.
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (pool, test) = full.split_random(&mut rng, 0.5);
    for fraction in [0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00] {
        let (train, _) = pool.split_random(&mut rng, fraction);
        let config = suite_tree_config(train.len());
        let tree = ModelTree::fit(&train, &config).expect("fit");
        let m = PredictionMetrics::from_predictions(&tree.predict_all(&test), &test.cpis())
            .expect("metrics");
        let _ = writeln!(
            out,
            "  train {:>6} samples ({:>5.1}% of suite): C {:.4}  MAE {:.4}  leaves {}",
            train.len(),
            100.0 * fraction * 0.5,
            m.correlation,
            m.mae,
            tree.n_leaves()
        );
    }
    let _ = writeln!(
        out,
        "\n(the paper's claim: 10% of the data already yields a transferable model)"
    );

    let _ = writeln!(
        out,
        "\nAblation 4: platform drift (multi-threaded contention sweep)"
    );
    let _ = writeln!(
        out,
        "  train OMP2001 model at contention 1.0; test on other contention levels"
    );
    let omp_spec = DatasetSpec::new(SuiteKind::omp2001(), 20_000, SEED_CPU2006 + 1);
    let omp_tree = ctx
        .tree(&TreeSpec::suite_tree(omp_spec))
        .expect("omp dataset fits");
    for contention in [0.5, 0.75, 1.0, 1.5, 2.0] {
        let mut cfg = GeneratorConfig::default();
        cfg.cost = cfg.cost.with_contention(contention);
        let shifted_spec =
            DatasetSpec::new(SuiteKind::omp2001(), 10_000, SEED_CPU2006 + 2).with_config(cfg);
        let shifted = ctx.dataset(&shifted_spec).expect("suite generates");
        let m =
            PredictionMetrics::from_predictions(&omp_tree.predict_all(&shifted), &shifted.cpis())
                .expect("metrics");
        let _ = writeln!(
            out,
            "  contention {contention:>4.2}: C {:.4}  MAE {:.4}{}",
            m.correlation,
            m.mae,
            if contention == 1.0 {
                "  <- training platform"
            } else {
                ""
            }
        );
    }
    let _ = writeln!(
        out,
        "(the paper: \"the results are specific to the architecture, platform, and"
    );
    let _ = writeln!(
        out,
        " compiler used\" — this quantifies how fast a model decays off-platform)"
    );
}
