//! Experiment E6 — regenerates Table IV: sample distribution across
//! linear models by SPEC OMP2001 benchmark.
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table4.txt`. The dataset
//! and tree resolve through the pipeline's artifact store.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, omp2001_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (data, tree) = omp2001_artifacts(&ctx);
    output::print(&artifacts::table4(&data, &tree));
}
