//! Experiment E6 — regenerates Table IV: sample distribution across
//! linear models by SPEC OMP2001 benchmark.

use characterize::ProfileTable;
use spec_bench::{fit_suite_tree, omp2001_dataset};

fn main() {
    let data = omp2001_dataset();
    let tree = fit_suite_tree(&data);
    let table = ProfileTable::build(&tree, &data);
    println!("Table IV: sample distribution across linear models by benchmark (percent)\n");
    println!("{}", table.render());
}
