//! Experiment E6 — regenerates Table IV: sample distribution across
//! linear models by SPEC OMP2001 benchmark.
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table4.txt`.

use spec_bench::{artifacts, fit_suite_tree, omp2001_dataset};

fn main() {
    let data = omp2001_dataset();
    let tree = fit_suite_tree(&data);
    print!("{}", artifacts::table4(&data, &tree));
}
