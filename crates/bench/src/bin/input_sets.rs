//! Experiment E14 — input-set sensitivity.
//!
//! The paper collects CPU2006 data "with their reference dataset" and
//! OMP2001 with "the medium input set"; input sets change working-set
//! sizes and therefore memory-hierarchy pressure. This experiment models
//! smaller/larger input sets by scaling the memory-event densities
//! (`Suite::with_memory_pressure`) and asks: does a model trained on the
//! reference inputs transfer to other input sets of the *same* suite?

use modeltree::ModelTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{suite_tree_config, SEED_CPU2006, SEED_SPLIT};
use spec_stats::{AcceptanceThresholds, PredictionMetrics};
use transfer::{TransferConfig, TransferabilityReport};
use workloads::generator::{GeneratorConfig, Suite};

fn main() {
    let config = GeneratorConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006);
    let reference = Suite::cpu2006().generate(&mut rng, 30_000, &config);
    let tree = ModelTree::fit(&reference, &suite_tree_config(reference.len())).expect("fit");
    let thresholds = AcceptanceThresholds::default();

    println!("Input-set sensitivity: CPU2006 model trained on reference inputs,");
    println!("evaluated on scaled-memory-pressure variants of the suite\n");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>14}",
        "input set", "mean CPI", "C", "MAE", "transferable?"
    );
    for factor in [0.4, 0.6, 0.8, 1.0, 1.25, 1.5] {
        let suite = Suite::cpu2006().with_memory_pressure(factor);
        let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
        let data = suite.generate(&mut rng, 10_000, &config);
        let metrics = PredictionMetrics::from_predictions(&tree.predict_all(&data), &data.cpis())
            .expect("non-empty data");
        println!(
            "{:<22} {:>9.3} {:>8.4} {:>8.4} {:>14}",
            format!("memory x{factor}"),
            metrics.mean_actual,
            metrics.correlation,
            metrics.mae,
            if metrics.acceptable(&thresholds) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // Full Section VI treatment of the most-shrunk input set.
    let small_suite = Suite::cpu2006().with_memory_pressure(0.4);
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT + 1);
    let small = small_suite.generate(&mut rng, 10_000, &config);
    let report = TransferabilityReport::assess(
        &tree,
        &reference,
        &small,
        "CPU2006 (reference inputs)",
        "CPU2006 (memory x0.4)",
        &TransferConfig::default(),
    )
    .expect("datasets large enough");
    println!("\n{}", report.render());
    println!("take-away: models transfer across nearby input sets but degrade as the");
    println!("memory-pressure profile leaves the training distribution — input sets are");
    println!("part of the \"platform\" the paper scopes its results to.");
}
