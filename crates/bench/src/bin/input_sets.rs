//! Experiment E14 — input-set sensitivity.
//!
//! The paper collects CPU2006 data "with their reference dataset" and
//! OMP2001 with "the medium input set"; input sets change working-set
//! sizes and therefore memory-hierarchy pressure. This experiment models
//! smaller/larger input sets by scaling the memory-event densities
//! (`Suite::with_memory_pressure`) and asks: does a model trained on the
//! reference inputs transfer to other input sets of the *same* suite?
//!
//! Every dataset and the reference tree resolve through the pipeline's
//! artifact store.

use std::io::Write;

use pipeline::{output, DatasetSpec, PipelineContext, SuiteKind, TreeSpec};
use spec_bench::{SEED_CPU2006, SEED_SPLIT};
use spec_stats::{AcceptanceThresholds, PredictionMetrics};
use transfer::{TransferConfig, TransferabilityReport};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();

    let reference_spec = DatasetSpec::new(SuiteKind::cpu2006(), 30_000, SEED_CPU2006);
    let reference = ctx.dataset(&reference_spec).expect("suite generates");
    let tree = ctx
        .tree(&TreeSpec::suite_tree(reference_spec))
        .expect("reference dataset fits");
    let thresholds = AcceptanceThresholds::default();

    let _ = writeln!(
        out,
        "Input-set sensitivity: CPU2006 model trained on reference inputs,"
    );
    let _ = writeln!(
        out,
        "evaluated on scaled-memory-pressure variants of the suite\n"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>8} {:>8} {:>14}",
        "input set", "mean CPI", "C", "MAE", "transferable?"
    );
    for factor in [0.4, 0.6, 0.8, 1.0, 1.25, 1.5] {
        let variant =
            DatasetSpec::new(SuiteKind::cpu2006(), 10_000, SEED_SPLIT).with_memory_pressure(factor);
        let data = ctx.dataset(&variant).expect("suite generates");
        let metrics = PredictionMetrics::from_predictions(&tree.predict_all(&data), &data.cpis())
            .expect("non-empty data");
        let _ = writeln!(
            out,
            "{:<22} {:>9.3} {:>8.4} {:>8.4} {:>14}",
            format!("memory x{factor}"),
            metrics.mean_actual,
            metrics.correlation,
            metrics.mae,
            if metrics.acceptable(&thresholds) {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // Full Section VI treatment of the most-shrunk input set.
    let small_spec =
        DatasetSpec::new(SuiteKind::cpu2006(), 10_000, SEED_SPLIT + 1).with_memory_pressure(0.4);
    let small = ctx.dataset(&small_spec).expect("suite generates");
    let report = TransferabilityReport::assess(
        &tree,
        &reference,
        &small,
        "CPU2006 (reference inputs)",
        "CPU2006 (memory x0.4)",
        &TransferConfig::default(),
    )
    .expect("datasets large enough");
    let _ = writeln!(out, "\n{}", report.render());
    let _ = writeln!(
        out,
        "take-away: models transfer across nearby input sets but degrade as the"
    );
    let _ = writeln!(
        out,
        "memory-pressure profile leaves the training distribution — input sets are"
    );
    let _ = writeln!(
        out,
        "part of the \"platform\" the paper scopes its results to."
    );
}
