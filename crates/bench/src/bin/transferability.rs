//! Experiments E7–E9 — regenerates Section VI: the two-sample t-tests
//! and prediction-accuracy metrics for all four transfer directions.
//!
//! All rendering (including the train/test splits and tree fits) lives
//! in [`spec_bench::artifacts`] so the testkit golden-snapshot suite
//! can enforce `results/transferability.txt`.

use spec_bench::{artifacts, cpu2006_dataset, omp2001_dataset};

fn main() {
    let cpu = cpu2006_dataset();
    let omp = omp2001_dataset();
    print!("{}", artifacts::transferability(&cpu, &omp));
}
