//! Experiments E7–E9 — regenerates Section VI: the two-sample t-tests
//! and prediction-accuracy metrics for all four transfer directions.

use modeltree::ModelTree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{cpu2006_dataset, omp2001_dataset, suite_tree_config, SEED_SPLIT};
use transfer::{TransferConfig, TransferabilityReport};

fn main() {
    let cpu = cpu2006_dataset();
    let omp = omp2001_dataset();
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    // The paper trains on a random 10% of each suite.
    let (cpu_train, cpu_rest) = cpu.split_random(&mut rng, 0.10);
    let (omp_train, omp_rest) = omp.split_random(&mut rng, 0.10);

    let m5 = suite_tree_config(cpu_train.len());
    let cpu_tree = ModelTree::fit(&cpu_train, &m5).expect("cpu fit");
    let omp_tree = ModelTree::fit(&omp_train, &m5).expect("omp fit");
    let config = TransferConfig::default();

    println!("Section VI: transferability of performance models");
    println!(
        "train sets: 10% of each suite ({} / {} samples)\n",
        cpu_train.len(),
        omp_train.len()
    );
    println!(
        "CPI statistics: CPU2006 train mean {:.4} sd {:.4}; OMP2001 mean {:.4} sd {:.4}",
        cpu_train.cpi_summary().unwrap().mean(),
        cpu_train.cpi_summary().unwrap().std_dev(),
        omp_rest.cpi_summary().unwrap().mean(),
        omp_rest.cpi_summary().unwrap().std_dev(),
    );
    println!("(paper: CPU2006 mean 0.96 sd 0.53; OMP2001 mean 1.21 sd 0.60)\n");

    let cases = [
        (
            &cpu_tree,
            &cpu_train,
            &cpu_rest,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
        ),
        (&cpu_tree, &cpu_train, &omp_rest, "CPU2006 (10%)", "OMP2001"),
        (
            &omp_tree,
            &omp_train,
            &omp_rest,
            "OMP2001 (10%)",
            "OMP2001 (rest)",
        ),
        (&omp_tree, &omp_train, &cpu_rest, "OMP2001 (10%)", "CPU2006"),
    ];
    for (tree, train, test, a, b) in cases {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &config)
            .expect("datasets large enough");
        println!("{}", report.render());
        let (c_ci, mae_ci) =
            transfer::metric_confidence(tree, test, 300, 0.95, SEED_SPLIT).expect("bootstrap");
        println!(
            "  95% bootstrap CIs: C in [{:.4}, {:.4}], MAE in [{:.4}, {:.4}]\n",
            c_ci.lower, c_ci.upper, mae_ci.lower, mae_ci.upper
        );
    }
    println!("paper shape: within-suite C = 0.9214 / MAE = 0.0988 (transferable);");
    println!("cross-suite C = 0.4337 / MAE = 0.3721 (not transferable); symmetric for OMP2001.");
}
