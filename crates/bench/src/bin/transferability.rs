//! Experiment E7 — regenerates Section VI: the two-sample t-tests
//! and prediction-accuracy metrics for all four transfer directions.
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/transferability.txt`.
//! The splits and 10% trees resolve through the pipeline's artifact
//! store, so warm reruns skip generation and fitting entirely.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, transfer_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (split, cpu_tree, omp_tree) = transfer_artifacts(&ctx);
    output::print(&artifacts::transferability(&split, &cpu_tree, &omp_tree));
}
