//! Experiment E3 — regenerates Table II: sample distribution across
//! linear models by SPEC CPU2006 benchmark (entries >= 20% starred).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table2.txt`. The dataset
//! and tree resolve through the pipeline's artifact store.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, cpu2006_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    output::print(&artifacts::table2(&data, &tree));
}
