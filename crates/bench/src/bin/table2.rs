//! Experiment E3 — regenerates Table II: sample distribution across
//! linear models by SPEC CPU2006 benchmark (entries >= 20% starred).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table2.txt`.

use spec_bench::{artifacts, cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    print!("{}", artifacts::table2(&data, &tree));
}
