//! Experiment E3 — regenerates Table II: sample distribution across
//! linear models by SPEC CPU2006 benchmark (entries >= 20% starred).

use characterize::ProfileTable;
use spec_bench::{cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let table = ProfileTable::build(&tree, &data);
    println!("Table II: sample distribution across linear models by benchmark (percent)\n");
    println!("{}", table.render());
}
