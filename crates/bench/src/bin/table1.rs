//! Experiment E1 — regenerates Table I: the CPU performance metrics used
//! in the study.

use perfcounters::events::{EventId, FIXED_COUNTERS, INTERVAL_INSTRUCTIONS};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    println!("Table I: CPU performance metrics used in this study");
    println!("(each PMU event is divided by INST_RETIRED.ANY; values are per-instruction)\n");
    println!("{:<12} {:<28} Description", "Metric", "PMU event");
    println!(
        "{:<12} {:<28} CPU clock cycles per instruction",
        "CPI", "CPU_CLK_UNHALTED.CORE"
    );
    for e in EventId::ALL {
        println!(
            "{:<12} {:<28} {}",
            e.short_name(),
            e.pmu_event_name(),
            e.description()
        );
    }
    println!("\nfixed counters: {}", FIXED_COUNTERS.join(", "));
    println!("multiplexing interval (sample width): {INTERVAL_INSTRUCTIONS} instructions");
}
