//! Experiment E4 — regenerates Table III: pairwise L1 profile distances
//! for the paper's highlighted SPEC CPU2006 subset, plus the headline
//! similar/dissimilar pairs.
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table3.txt`. The dataset
//! and tree resolve through the pipeline's artifact store.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, cpu2006_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    output::print(&artifacts::table3(&data, &tree));
}
