//! Experiment E4 — regenerates Table III: pairwise L1 profile distances
//! for the paper's highlighted SPEC CPU2006 subset, plus the headline
//! similar/dissimilar pairs.

use characterize::{ProfileTable, SimilarityMatrix};
use spec_bench::{cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let table = ProfileTable::build(&tree, &data);
    let matrix = SimilarityMatrix::from_table(&table);

    println!("Table III: benchmark similarity (L1 distance between LM profiles, percent)\n");
    let subset = [
        "456.hmmer",
        "444.namd",
        "435.gromacs",
        "454.calculix",
        "447.dealII",
        "429.mcf",
        "459.GemsFDTD",
        "473.astar",
        "464.h264ref",
        "436.cactusADM",
        "470.lbm",
    ];
    println!("{}", matrix.render_subset(&subset));

    println!("paper's headline pairs:");
    for (a, b) in [
        ("456.hmmer", "444.namd"),
        ("435.gromacs", "444.namd"),
        ("435.gromacs", "456.hmmer"),
        ("454.calculix", "447.dealII"),
        ("429.mcf", "444.namd"),
        ("429.mcf", "459.GemsFDTD"),
        ("444.namd", "459.GemsFDTD"),
    ] {
        let d = matrix.distance_by_name(a, b).expect("benchmarks present");
        println!("  {a:<16} vs {b:<16} {:>6.1}%", 100.0 * d);
    }
    println!("\nmost suite-representative benchmarks:");
    let mut names: Vec<&String> = matrix.names().iter().collect();
    names.sort_by(|a, b| {
        matrix
            .distance_to_suite(a)
            .unwrap()
            .total_cmp(&matrix.distance_to_suite(b).unwrap())
    });
    for name in names.iter().take(5) {
        println!(
            "  {name:<16} {:>6.1}% from suite profile",
            100.0 * matrix.distance_to_suite(name).unwrap()
        );
    }
}
