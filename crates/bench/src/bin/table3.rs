//! Experiment E4 — regenerates Table III: pairwise L1 profile distances
//! for the paper's highlighted SPEC CPU2006 subset, plus the headline
//! similar/dissimilar pairs.
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/table3.txt`.

use spec_bench::{artifacts, cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    print!("{}", artifacts::table3(&data, &tree));
}
