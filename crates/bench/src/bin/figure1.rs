//! Experiment E2 — regenerates Figure 1 (the SPEC CPU2006 model tree)
//! and the leaf equations of Section IV (LM1, LM7, LM8, ...).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/figure1.{txt,dot}`.

use spec_bench::{artifacts, cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    let art = artifacts::figure1(&data, &tree);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/figure1.dot", &art.dot);
    }
    print!("{}", art.text);
}
