//! Experiment E2 — regenerates Figure 1 (the SPEC CPU2006 model tree)
//! and the leaf equations of Section IV (LM1, LM7, LM8, ...).

use modeltree::display;
use spec_bench::{cpu2006_dataset, fit_suite_tree};

fn main() {
    let data = cpu2006_dataset();
    let tree = fit_suite_tree(&data);
    println!(
        "Figure 1: SPEC CPU2006 model tree ({} samples)\n",
        data.len()
    );
    println!("{}", display::render_summary(&tree));
    println!("{}", display::render_tree(&tree));
    println!("Leaf linear models (Section IV equations):\n");
    println!("{}", display::render_models(&tree));
    if std::fs::create_dir_all("results").is_ok() {
        let dot = display::render_dot(&tree);
        if std::fs::write("results/figure1.dot", dot).is_ok() {
            println!("Graphviz source written to results/figure1.dot (dot -Tpdf to render)\n");
        }
    }
    println!("event importance (sample-weighted SDR):");
    println!("{}", display::render_importance(&tree));
    println!("training MAE: {:.4}", tree.mean_abs_error(&data));
}
