//! Experiment E2 — regenerates Figure 1 (the SPEC CPU2006 model tree)
//! and the leaf equations of Section IV (LM1, LM7, LM8, ...).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/figure1.{txt,dot}`. The
//! dataset and tree resolve through the pipeline's artifact store, so
//! warm reruns skip generation and fitting entirely.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, cpu2006_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (data, tree) = cpu2006_artifacts(&ctx);
    let art = artifacts::figure1(&data, &tree);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/figure1.dot", &art.dot);
    }
    output::print(&art.text);
}
