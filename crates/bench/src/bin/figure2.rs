//! Experiment E5 — regenerates Figure 2 (the SPEC OMP2001 model tree)
//! and the leaf equations of Section V (LM17, LM18, LM2/6/15/16).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/figure2.{txt,dot}`. The
//! dataset and tree resolve through the pipeline's artifact store, so
//! warm reruns skip generation and fitting entirely.

use pipeline::{output, PipelineContext};
use spec_bench::{artifacts, omp2001_artifacts};

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let (data, tree) = omp2001_artifacts(&ctx);
    let art = artifacts::figure2(&data, &tree);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/figure2.dot", &art.dot);
    }
    output::print(&art.text);
}
