//! Experiment E5 — regenerates Figure 2 (the SPEC OMP2001 model tree)
//! and the leaf equations of Section V (LM17, LM18, LM2/6/15/16).
//!
//! All rendering lives in [`spec_bench::artifacts`] so the testkit
//! golden-snapshot suite can enforce `results/figure2.{txt,dot}`.

use spec_bench::{artifacts, fit_suite_tree, omp2001_dataset};

fn main() {
    let data = omp2001_dataset();
    let tree = fit_suite_tree(&data);
    let art = artifacts::figure2(&data, &tree);
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/figure2.dot", &art.dot);
    }
    print!("{}", art.text);
}
