//! Experiment E5 — regenerates Figure 2 (the SPEC OMP2001 model tree)
//! and the leaf equations of Section V (LM17, LM18, LM2/6/15/16).

use modeltree::display;
use spec_bench::{fit_suite_tree, omp2001_dataset};

fn main() {
    let data = omp2001_dataset();
    let tree = fit_suite_tree(&data);
    println!(
        "Figure 2: SPEC OMP2001 model tree ({} samples)\n",
        data.len()
    );
    println!("{}", display::render_summary(&tree));
    println!("{}", display::render_tree(&tree));
    println!("Leaf linear models (Section V equations):\n");
    println!("{}", display::render_models(&tree));
    if std::fs::create_dir_all("results").is_ok() {
        let dot = display::render_dot(&tree);
        if std::fs::write("results/figure2.dot", dot).is_ok() {
            println!("Graphviz source written to results/figure2.dot (dot -Tpdf to render)\n");
        }
    }
    println!("event importance (sample-weighted SDR):");
    println!("{}", display::render_importance(&tree));
    println!("training MAE: {:.4}", tree.mean_abs_error(&data));
}
