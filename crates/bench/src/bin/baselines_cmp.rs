//! Experiment E10 — model tree vs baseline regressors (the related-work
//! comparison of the paper's reference \[15\]) on both suites.
//!
//! The 50/50 splits and the M5' trees resolve through the pipeline's
//! artifact store; the baseline regressors (OLS, CART, k-NN) are cheap
//! one-off fits and stay direct.

use std::io::Write;

use baselines::{CartConfig, KnnRegressor, OlsRegressor, RegressionTree, Regressor};
use perfcounters::Dataset;
use pipeline::{
    output, DatasetInput, DatasetSpec, PipelineContext, SplitPart, SplitSpec, TreeSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{suite_tree_config, SEED_SPLIT};
use spec_stats::PredictionMetrics;

fn evaluate(out: &mut impl Write, name: &str, predictions: &[f64], test: &Dataset) {
    let metrics =
        PredictionMetrics::from_predictions(predictions, &test.cpis()).expect("non-empty");
    let _ = writeln!(out, "  {name:<22} {metrics}");
}

fn compare(out: &mut impl Write, ctx: &PipelineContext, suite_name: &str, spec: DatasetSpec) {
    let split = SplitSpec::new(spec, SEED_SPLIT, 0.5);
    let (train, test) = ctx.split(&split).expect("suite generates");
    let _ = writeln!(
        out,
        "{suite_name}: train {} / test {}",
        train.len(),
        test.len()
    );

    let tree = ctx
        .tree(&TreeSpec {
            input: DatasetInput::SplitPart(split, SplitPart::First),
            config: suite_tree_config(train.len()),
        })
        .expect("training half fits");
    evaluate(out, "M5' model tree", &tree.predict_all(&test), &test);

    let ols = OlsRegressor::fit(&train).expect("ols");
    evaluate(out, "global linear (OLS)", &ols.predict_all(&test), &test);

    let cart = RegressionTree::fit(
        &train,
        CartConfig {
            min_leaf: (train.len() / 240).max(4),
            max_depth: 14,
        },
    )
    .expect("cart");
    evaluate(
        out,
        "CART (constant leaves)",
        &cart.predict_all(&test),
        &test,
    );

    let knn = KnnRegressor::fit(&train, 15).expect("knn");
    // k-NN is O(n) per query; evaluate on a subsample for tractability.
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT + 1);
    let (test_small, _) = test.split_random(
        &mut rng,
        2_000.0_f64.min(test.len() as f64) / test.len() as f64,
    );
    evaluate(
        out,
        "k-NN (k=15, subsample)",
        &knn.predict_all(&test_small),
        &test_small,
    );
    let _ = writeln!(out);
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = PipelineContext::from_env();
    let out = &mut output::stdout();
    let _ = writeln!(
        out,
        "Model tree vs baselines (paper ref [15]: model trees match ANN/SVM accuracy"
    );
    let _ = writeln!(
        out,
        "while staying interpretable; a single linear model cannot):\n"
    );
    compare(out, &ctx, "SPEC CPU2006", DatasetSpec::cpu2006());
    compare(out, &ctx, "SPEC OMP2001", DatasetSpec::omp2001());
}
