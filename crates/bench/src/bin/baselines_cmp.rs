//! Experiment E10 — model tree vs baseline regressors (the related-work
//! comparison of the paper's reference \[15\]) on both suites.

use baselines::{CartConfig, KnnRegressor, OlsRegressor, RegressionTree, Regressor};
use modeltree::ModelTree;
use perfcounters::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_bench::{cpu2006_dataset, omp2001_dataset, suite_tree_config, SEED_SPLIT};
use spec_stats::PredictionMetrics;

fn evaluate(name: &str, predictions: &[f64], test: &Dataset) {
    let metrics =
        PredictionMetrics::from_predictions(predictions, &test.cpis()).expect("non-empty");
    println!("  {name:<22} {metrics}");
}

fn compare(suite_name: &str, data: &Dataset) {
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT);
    let (train, test) = data.split_random(&mut rng, 0.5);
    println!("{suite_name}: train {} / test {}", train.len(), test.len());

    let tree = ModelTree::fit(&train, &suite_tree_config(train.len())).expect("fit");
    evaluate("M5' model tree", &tree.predict_all(&test), &test);

    let ols = OlsRegressor::fit(&train).expect("ols");
    evaluate("global linear (OLS)", &ols.predict_all(&test), &test);

    let cart = RegressionTree::fit(
        &train,
        CartConfig {
            min_leaf: (train.len() / 240).max(4),
            max_depth: 14,
        },
    )
    .expect("cart");
    evaluate("CART (constant leaves)", &cart.predict_all(&test), &test);

    let knn = KnnRegressor::fit(&train, 15).expect("knn");
    // k-NN is O(n) per query; evaluate on a subsample for tractability.
    let mut rng = StdRng::seed_from_u64(SEED_SPLIT + 1);
    let (test_small, _) = test.split_random(
        &mut rng,
        2_000.0_f64.min(test.len() as f64) / test.len() as f64,
    );
    evaluate(
        "k-NN (k=15, subsample)",
        &knn.predict_all(&test_small),
        &test_small,
    );
    println!();
}

fn main() {
    println!("Model tree vs baselines (paper ref [15]: model trees match ANN/SVM accuracy");
    println!("while staying interpretable; a single linear model cannot):\n");
    compare("SPEC CPU2006", &cpu2006_dataset());
    compare("SPEC OMP2001", &omp2001_dataset());
}
