//! Warm-vs-cold pipeline resolution snapshot.
//!
//! Resolves the canonical CPU2006 artifacts (60k-sample dataset + suite
//! tree) twice against a fresh private store: the cold pass pays
//! generation, fitting, and encoding; the warm pass replays the same
//! artifacts from disk. Stage counters prove the warm pass did zero
//! dataset generation and zero tree fitting — the ISSUE 4 acceptance
//! criterion — and the timings plus counters are written as JSON.
//!
//! `cargo run --release -p spec-bench --bin bench_pipeline [output.json]`
//! (default output: `results/BENCH_pipeline.json`).

use std::time::Instant;

use pipeline::{ArtifactStore, PipelineContext, StageCounters};
use serde_json::json;
use spec_bench::{cpu2006_artifacts, N_SAMPLES, SEED_CPU2006};

fn counters_json(c: &StageCounters) -> serde_json::Value {
    json!({
        "datasets_generated": c.datasets_generated,
        "datasets_loaded": c.datasets_loaded,
        "splits_computed": c.splits_computed,
        "trees_fitted": c.trees_fitted,
        "trees_loaded": c.trees_loaded,
        "corrupt_evicted": c.corrupt_evicted,
    })
}

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_pipeline.json".into());

    // A private store keeps the cold pass genuinely cold regardless of
    // what the environment-selected cache already holds.
    let root =
        std::env::temp_dir().join(format!("specrepro-bench-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::open(&root);

    let cold_ctx = PipelineContext::with_store(store.clone()).with_logging(false);
    let start = Instant::now();
    let (cold_data, cold_tree) = cpu2006_artifacts(&cold_ctx);
    let t_cold = start.elapsed().as_secs_f64();
    let cold = cold_ctx.counters();
    assert_eq!(cold.datasets_generated, 1, "cold pass must generate");
    assert_eq!(cold.trees_fitted, 1, "cold pass must fit");

    let warm_ctx = PipelineContext::with_store(store.clone()).with_logging(false);
    let start = Instant::now();
    let (warm_data, warm_tree) = cpu2006_artifacts(&warm_ctx);
    let t_warm = start.elapsed().as_secs_f64();
    let warm = warm_ctx.counters();
    assert_eq!(warm.datasets_generated, 0, "warm pass regenerated data");
    assert_eq!(warm.trees_fitted, 0, "warm pass refit the tree");

    // The warm tree resolves without touching training data at all;
    // the dataset load is for the returned artifact itself.
    assert_eq!(warm_data.len(), cold_data.len());
    assert_eq!(
        serde_json::to_string(&*warm_tree).unwrap(),
        serde_json::to_string(&*cold_tree).unwrap(),
        "warm tree is not bit-identical to the cold fit"
    );

    let stats = store.stats();
    let report = json!({
        "experiment": "pipeline artifact store: warm vs cold resolution",
        "artifacts": {
            "suite": "cpu2006",
            "seed": SEED_CPU2006,
            "n_samples": N_SAMPLES,
            "tree_leaves": cold_tree.n_leaves(),
        },
        "cold": { "seconds": t_cold, "counters": counters_json(&cold) },
        "warm": { "seconds": t_warm, "counters": counters_json(&warm) },
        "speedup_warm_vs_cold": t_cold / t_warm,
        "store": {
            "datasets": stats.datasets,
            "dataset_bytes": stats.dataset_bytes,
            "trees": stats.trees,
            "tree_bytes": stats.tree_bytes,
        },
        "bit_identical": true,
    });
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, body + "\n").expect("write snapshot");
    let _ = store.clear();

    println!("cold  {t_cold:>8.3} s  (generate + fit + encode)");
    println!("warm  {t_warm:>8.3} s  (decode + verify)");
    println!("speedup {:.1}x, bit-identical tree", t_cold / t_warm);
    println!("wrote {path}");
}
