//! Experiment E8 — the N×N cross-generation transfer matrix.
//!
//! The paper assesses one ordered pair of 2006-era suites; the suite
//! registry makes the modern form of that question askable: every
//! registered suite's 10% model assessed against every suite's held-out
//! remainder (CPU2006 → CPU2017 → CPU2026 plus the OMP2001 row), with
//! the member-transfer sub-matrix and the transfer-decay-over-
//! generations table. All datasets, splits, and trees resolve through
//! the pipeline's artifact store: a warm rerun performs zero generation
//! and zero fitting, and the matrix is bit-identical for every thread
//! count.

fn main() {
    // SPECREPRO_TRACE_OUT / SPECREPRO_METRICS_OUT capture this run's telemetry.
    let _obs = obskit::ObsSession::from_env();
    let ctx = pipeline::PipelineContext::from_env();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let matrix = spec_bench::matrix_artifacts(&ctx, threads);
    pipeline::output::print(&spec_bench::artifacts::generation_matrix(&matrix));
}
