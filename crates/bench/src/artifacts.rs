//! Pure artifact renderers for the E2–E8 experiments.
//!
//! Each function returns the exact text its experiment binary prints,
//! so the binaries stay thin stdout wrappers and the testkit golden
//! suite can enforce the checked-in `results/` files byte for byte
//! without spawning processes. Anything here that drifts — a numeric
//! change, a formatting tweak, a structural difference in the fitted
//! trees — shows up as a golden-snapshot diff in CI.

use std::fmt::Write;

use characterize::{ProfileTable, SimilarityMatrix};
use modeltree::{display, ModelTree};
use perfcounters::Dataset;
use pipeline::TransferSplit;
use transfer::matrix::hardest_member;
use transfer::{TransferConfig, TransferMatrix, TransferabilityReport};

use crate::SEED_SPLIT;

/// A rendered figure: the stdout report plus the Graphviz source.
pub struct FigureArtifact {
    /// The experiment's stdout text (`results/figureN.txt`).
    pub text: String,
    /// Graphviz source (`results/figureN.dot`).
    pub dot: String,
}

fn render_figure(
    data: &Dataset,
    tree: &ModelTree,
    figure: &str,
    section: &str,
    suite: &str,
    dot_path: &str,
) -> FigureArtifact {
    let mut text = String::new();
    writeln!(
        text,
        "Figure {figure}: {suite} model tree ({} samples)\n",
        data.len()
    )
    .unwrap();
    writeln!(text, "{}", display::render_summary(tree)).unwrap();
    writeln!(text, "{}", display::render_tree(tree)).unwrap();
    writeln!(text, "Leaf linear models (Section {section} equations):\n").unwrap();
    writeln!(text, "{}", display::render_models(tree)).unwrap();
    writeln!(
        text,
        "Graphviz source written to {dot_path} (dot -Tpdf to render)\n"
    )
    .unwrap();
    writeln!(text, "event importance (sample-weighted SDR):").unwrap();
    writeln!(text, "{}", display::render_importance(tree)).unwrap();
    writeln!(text, "training MAE: {:.4}", tree.mean_abs_error(data)).unwrap();
    FigureArtifact {
        text,
        dot: display::render_dot(tree),
    }
}

/// Experiment E2 — Figure 1: the SPEC CPU2006 model tree, its leaf
/// equations, event importance, and training MAE.
pub fn figure1(data: &Dataset, tree: &ModelTree) -> FigureArtifact {
    render_figure(data, tree, "1", "IV", "SPEC CPU2006", "results/figure1.dot")
}

/// Experiment E5 — Figure 2: the SPEC OMP2001 model tree.
pub fn figure2(data: &Dataset, tree: &ModelTree) -> FigureArtifact {
    render_figure(data, tree, "2", "V", "SPEC OMP2001", "results/figure2.dot")
}

/// Experiment E3 — Table II: sample distribution across linear models
/// by SPEC CPU2006 benchmark.
pub fn table2(data: &Dataset, tree: &ModelTree) -> String {
    let table = ProfileTable::build(tree, data);
    format!(
        "Table II: sample distribution across linear models by benchmark (percent)\n\n{}\n",
        table.render()
    )
}

/// Experiment E6 — Table IV: sample distribution across linear models
/// by SPEC OMP2001 benchmark.
pub fn table4(data: &Dataset, tree: &ModelTree) -> String {
    let table = ProfileTable::build(tree, data);
    format!(
        "Table IV: sample distribution across linear models by benchmark (percent)\n\n{}\n",
        table.render()
    )
}

/// Experiment E4 — Table III: pairwise L1 profile distances for the
/// paper's highlighted SPEC CPU2006 subset, the headline pairs, and the
/// most suite-representative benchmarks.
pub fn table3(data: &Dataset, tree: &ModelTree) -> String {
    let table = ProfileTable::build(tree, data);
    let matrix = SimilarityMatrix::from_table(&table);
    let mut text = String::new();

    writeln!(
        text,
        "Table III: benchmark similarity (L1 distance between LM profiles, percent)\n"
    )
    .unwrap();
    let subset = [
        "456.hmmer",
        "444.namd",
        "435.gromacs",
        "454.calculix",
        "447.dealII",
        "429.mcf",
        "459.GemsFDTD",
        "473.astar",
        "464.h264ref",
        "436.cactusADM",
        "470.lbm",
    ];
    writeln!(text, "{}", matrix.render_subset(&subset)).unwrap();

    writeln!(text, "paper's headline pairs:").unwrap();
    for (a, b) in [
        ("456.hmmer", "444.namd"),
        ("435.gromacs", "444.namd"),
        ("435.gromacs", "456.hmmer"),
        ("454.calculix", "447.dealII"),
        ("429.mcf", "444.namd"),
        ("429.mcf", "459.GemsFDTD"),
        ("444.namd", "459.GemsFDTD"),
    ] {
        let d = matrix.distance_by_name(a, b).expect("benchmarks present");
        writeln!(text, "  {a:<16} vs {b:<16} {:>6.1}%", 100.0 * d).unwrap();
    }
    writeln!(text, "\nmost suite-representative benchmarks:").unwrap();
    let mut names: Vec<&String> = matrix.names().iter().collect();
    names.sort_by(|a, b| {
        matrix
            .distance_to_suite(a)
            .unwrap()
            .total_cmp(&matrix.distance_to_suite(b).unwrap())
    });
    for name in names.iter().take(5) {
        writeln!(
            text,
            "  {name:<16} {:>6.1}% from suite profile",
            100.0 * matrix.distance_to_suite(name).unwrap()
        )
        .unwrap();
    }
    text
}

/// Experiment E7 — Section VI: t-tests and prediction-accuracy
/// metrics for all four transfer directions, with bootstrap CIs.
///
/// The split (the paper trains on a random 10% of each suite; CPU
/// first, OMP second, one RNG stream — the order is part of the
/// artifact) and both trees are resolved by the caller through the
/// pipeline, so warm artifact stores rerun this experiment without any
/// generation or fitting. See `spec_bench::transfer_artifacts`.
pub fn transferability(
    split: &TransferSplit,
    cpu_tree: &ModelTree,
    omp_tree: &ModelTree,
) -> String {
    let TransferSplit {
        cpu_train,
        cpu_rest,
        omp_train,
        omp_rest,
    } = split;
    let config = TransferConfig::default();

    let mut text = String::new();
    writeln!(text, "Section VI: transferability of performance models").unwrap();
    writeln!(
        text,
        "train sets: 10% of each suite ({} / {} samples)\n",
        cpu_train.len(),
        omp_train.len()
    )
    .unwrap();
    writeln!(
        text,
        "CPI statistics: CPU2006 train mean {:.4} sd {:.4}; OMP2001 mean {:.4} sd {:.4}",
        cpu_train.cpi_summary().unwrap().mean(),
        cpu_train.cpi_summary().unwrap().std_dev(),
        omp_rest.cpi_summary().unwrap().mean(),
        omp_rest.cpi_summary().unwrap().std_dev(),
    )
    .unwrap();
    writeln!(
        text,
        "(paper: CPU2006 mean 0.96 sd 0.53; OMP2001 mean 1.21 sd 0.60)\n"
    )
    .unwrap();

    let cases = [
        (
            cpu_tree,
            &**cpu_train,
            &**cpu_rest,
            "CPU2006 (10%)",
            "CPU2006 (rest)",
        ),
        (
            cpu_tree,
            &**cpu_train,
            &**omp_rest,
            "CPU2006 (10%)",
            "OMP2001",
        ),
        (
            omp_tree,
            &**omp_train,
            &**omp_rest,
            "OMP2001 (10%)",
            "OMP2001 (rest)",
        ),
        (
            omp_tree,
            &**omp_train,
            &**cpu_rest,
            "OMP2001 (10%)",
            "CPU2006",
        ),
    ];
    for (tree, train, test, a, b) in cases {
        let report = TransferabilityReport::assess(tree, train, test, a, b, &config)
            .expect("datasets large enough");
        writeln!(text, "{}", report.render()).unwrap();
        let (c_ci, mae_ci) =
            transfer::metric_confidence(tree, test, 300, 0.95, SEED_SPLIT).expect("bootstrap");
        writeln!(
            text,
            "  95% bootstrap CIs: C in [{:.4}, {:.4}], MAE in [{:.4}, {:.4}]\n",
            c_ci.lower, c_ci.upper, mae_ci.lower, mae_ci.upper
        )
        .unwrap();
    }
    writeln!(
        text,
        "paper shape: within-suite C = 0.9214 / MAE = 0.0988 (transferable);"
    )
    .unwrap();
    writeln!(
        text,
        "cross-suite C = 0.4337 / MAE = 0.3721 (not transferable); symmetric for OMP2001."
    )
    .unwrap();
    text
}

/// Experiment E8 — the N×N cross-generation transfer matrix: every
/// registered suite's model assessed against every suite's held-out
/// remainder, the per-member sub-matrix, and the transfer-decay table
/// across CPU generations the 2008 paper could not draw.
pub fn generation_matrix(matrix: &TransferMatrix) -> String {
    let spec = &matrix.spec;
    let suites = &spec.suites;
    let mut text = String::new();
    writeln!(
        text,
        "Experiment E8: cross-generation transfer matrix ({} suites)",
        suites.len()
    )
    .unwrap();
    writeln!(
        text,
        "each model trains on {:.0}% of {} samples/suite and is assessed against\n\
         every suite's held-out remainder; member sets: {} fresh samples/benchmark\n",
        spec.train_fraction * 100.0,
        spec.n_samples,
        spec.member_samples
    )
    .unwrap();

    let header = |text: &mut String| {
        write!(text, "{:<12}", "train\\test").unwrap();
        for s in suites {
            write!(text, " {:>9}", s.tag()).unwrap();
        }
        writeln!(text).unwrap();
    };

    writeln!(text, "correlation C (rows train, columns test):").unwrap();
    header(&mut text);
    for &train in suites {
        write!(text, "{:<12}", train.tag()).unwrap();
        for &test in suites {
            let cell = matrix.cell(train, test).expect("complete matrix");
            write!(text, " {:>9.4}", cell.report.metrics.correlation).unwrap();
        }
        writeln!(text).unwrap();
    }

    writeln!(text, "\nmean absolute error (CPI):").unwrap();
    header(&mut text);
    for &train in suites {
        write!(text, "{:<12}", train.tag()).unwrap();
        for &test in suites {
            let cell = matrix.cell(train, test).expect("complete matrix");
            write!(text, " {:>9.4}", cell.report.metrics.mae).unwrap();
        }
        writeln!(text).unwrap();
    }

    writeln!(text, "\nverdict (hypothesis tests + accuracy thresholds):").unwrap();
    header(&mut text);
    for &train in suites {
        write!(text, "{:<12}", train.tag()).unwrap();
        for &test in suites {
            let cell = matrix.cell(train, test).expect("complete matrix");
            write!(
                text,
                " {:>9}",
                if cell.report.transferable() {
                    "yes"
                } else {
                    "NO"
                }
            )
            .unwrap();
        }
        writeln!(text).unwrap();
    }

    writeln!(
        text,
        "\nmember-transfer sub-matrix (test-suite members passing the thresholds):"
    )
    .unwrap();
    header(&mut text);
    for &train in suites {
        write!(text, "{:<12}", train.tag()).unwrap();
        for &test in suites {
            let cell = matrix.cell(train, test).expect("complete matrix");
            let passing = cell.members.iter().filter(|m| m.transferable).count();
            write!(text, " {:>9}", format!("{passing}/{}", cell.members.len())).unwrap();
        }
        writeln!(text).unwrap();
    }

    // The headline table: how the single-threaded CPU line's models
    // decay as the test suite's generation advances.
    let mut cpu_line: Vec<_> = suites
        .iter()
        .copied()
        .filter(|s| s.tag().starts_with("cpu"))
        .collect();
    cpu_line.sort_by_key(|s| s.generation());
    writeln!(text, "\ntransfer decay over CPU generations:").unwrap();
    writeln!(
        text,
        "{:<24} {:>5} {:>9} {:>9} {:>15}",
        "train -> test", "gap", "C", "MAE", "verdict"
    )
    .unwrap();
    for (i, &train) in cpu_line.iter().enumerate() {
        for &test in &cpu_line[i..] {
            let cell = matrix.cell(train, test).expect("complete matrix");
            writeln!(
                text,
                "{:<24} {:>4}y {:>9.4} {:>9.4} {:>15}",
                format!("{} -> {}", train.tag(), test.tag()),
                test.generation() - train.generation(),
                cell.report.metrics.correlation,
                cell.report.metrics.mae,
                if cell.report.transferable() {
                    "TRANSFERABLE"
                } else {
                    "NOT TRANSFERABLE"
                }
            )
            .unwrap();
        }
    }

    writeln!(
        text,
        "\nweakest member coverage (per training suite, against its own members):"
    )
    .unwrap();
    for &train in suites {
        let cell = matrix.cell(train, train).expect("complete matrix");
        let hardest = hardest_member(&cell.members).expect("suites have members");
        writeln!(
            text,
            "  {:<10} hardest member {} (MAE {:.4})",
            train.tag(),
            hardest.benchmark,
            hardest.metrics.mae
        )
        .unwrap();
    }

    writeln!(
        text,
        "\npaper shape, one generation out: within-suite transfer holds (diagonal),\n\
         2006-era models degrade monotonically against 2017- and 2026-era suites."
    )
    .unwrap();
    text
}
