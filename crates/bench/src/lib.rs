//! Shared experiment configuration for the table/figure regeneration
//! binaries and Criterion benchmarks.
//!
//! Every experiment in EXPERIMENTS.md is produced from the fixed seeds
//! and sizes defined here, so `cargo run -p spec-bench --bin <exp>`
//! regenerates each artifact byte-identically.

use modeltree::{M5Config, ModelTree};
use perfcounters::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::generator::{GeneratorConfig, Suite};

pub mod artifacts;

/// Seed for the SPEC CPU2006 dataset used by all experiments.
pub const SEED_CPU2006: u64 = 20_080_401;
/// Seed for the SPEC OMP2001 dataset used by all experiments.
pub const SEED_OMP2001: u64 = 20_080_402;
/// Seed for train/test splitting in the transferability experiments.
pub const SEED_SPLIT: u64 = 20_080_403;
/// Number of interval samples generated per suite.
pub const N_SAMPLES: usize = 60_000;

/// The canonical SPEC CPU2006 experiment dataset.
pub fn cpu2006_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(SEED_CPU2006);
    Suite::cpu2006().generate(&mut rng, N_SAMPLES, &GeneratorConfig::default())
}

/// The canonical SPEC OMP2001 experiment dataset.
pub fn omp2001_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(SEED_OMP2001);
    Suite::omp2001().generate(&mut rng, N_SAMPLES, &GeneratorConfig::default())
}

/// The M5' configuration used for the headline suite trees. The paper
/// "varied M5' algorithm parameters to achieve a balance between
/// tractable model size and good prediction accuracy"; these settings
/// land in the same tens-of-leaves band as Figures 1 and 2.
pub fn suite_tree_config(n_samples: usize) -> M5Config {
    M5Config::default()
        .with_min_leaf((n_samples / 200).max(4))
        .with_sd_fraction(0.05)
}

/// Fits the headline tree for a suite dataset.
pub fn fit_suite_tree(data: &Dataset) -> ModelTree {
    ModelTree::fit(data, &suite_tree_config(data.len())).expect("suite dataset is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_datasets_are_deterministic() {
        let a = cpu2006_dataset();
        let b = cpu2006_dataset();
        assert_eq!(a.len(), N_SAMPLES);
        assert_eq!(a.sample(0), b.sample(0));
        assert_eq!(a.sample(N_SAMPLES - 1), b.sample(N_SAMPLES - 1));
    }

    #[test]
    fn suite_config_scales_with_n() {
        assert_eq!(suite_tree_config(60_000).min_leaf, 300);
        assert_eq!(suite_tree_config(100).min_leaf, 4);
    }
}
